"""Streaming, resumable sweep results.

The PR-3 executors hold every cell's repetitions in memory and assemble
the row list at the end, which caps a study at whatever the driver's heap
tolerates and loses *everything* when the process dies at cell 9,999 of
10,000.  This module gives sweeps the same treatment PR-6 gave queues:
an append-only ledger as the source of truth, incremental aggregation
over it, and resume-by-skipping-completed.

- :class:`ResultRecord` -- one completed (or dead-lettered) repetition of
  one grid cell: the atomic unit of sweep progress.
- :class:`ResultStore` -- the sink interface behind the ``RESULT_STORES``
  registry (``memory`` / ``jsonl`` / ``sqlite``), mirroring the service
  plane's ``QUEUE_STORES``.  JSONL is append-only with torn-tail repair;
  SQLite upserts one row per (cell, repetition).
- :class:`SweepAggregator` -- folds per-repetition records into
  :class:`~repro.sim.sweep.SweepRow` summaries cell by cell, holding only
  in-flight cells' run values; a finished cell collapses to its summary
  statistics immediately, so peak memory tracks the number of
  *incomplete* cells, not the grid.
- :func:`open_result_stream` -- the resume protocol: a fresh store gets a
  header pinning the sweep's identity (grid/config fingerprints, seeds);
  a resumed store must match it, and reports the completed keys so the
  executor schedules only the remainder.  Dead-lettered repetitions are
  recorded as ``failed`` and are *not* in the completed set -- a resume
  retries them instead of silently skipping.

Aggregation is exact, not approximate: a cell's summary is computed by
the same :func:`~repro.analysis.stats.aggregate_runs` call on the same
per-run dicts in the same repetition order as the in-memory path, so a
streamed sweep's report is byte-identical to a monolithic one (the golden
equivalence suite enforces this).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.errors import ConfigurationError, SCANError
from repro.core.plugins import Registry

__all__ = [
    "RESULT_SCHEMA",
    "ResultRecord",
    "SweepMeta",
    "RecoveredResults",
    "ResultStore",
    "MemoryResultStore",
    "JsonlResultStore",
    "SqliteResultStore",
    "RESULT_STORES",
    "make_result_store",
    "grid_fingerprint",
    "sweep_meta",
    "open_result_stream",
    "SweepAggregator",
    "fold_records",
    "records_from_runs",
    "failed_records",
]

#: Ledger schema identifier, bumped on incompatible record changes.
RESULT_SCHEMA = "scan-sim-sweep-results/1"


@dataclass(frozen=True)
class ResultRecord:
    """One repetition's outcome: the unit the sink appends as work lands.

    ``status`` is ``"completed"`` (``metrics`` holds the run's metric
    dict) or ``"failed"`` (a dead-lettered task; ``error`` says why and
    ``metrics`` is empty).  A later completed record for the same
    ``(cell_index, rep_index)`` key supersedes a failed one -- that is
    the retry path writing its success over the post-mortem.
    """

    cell_index: int
    rep_index: int
    seed: int
    status: str
    metrics: Dict[str, float] = field(default_factory=dict)
    error: str = ""

    def __post_init__(self) -> None:
        if self.status not in ("completed", "failed"):
            raise ValueError(f"status must be completed/failed, got {self.status!r}")
        if self.cell_index < 0 or self.rep_index < 0:
            raise ValueError("cell_index and rep_index must be >= 0")

    @property
    def key(self) -> tuple[int, int]:
        return (self.cell_index, self.rep_index)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "cell_index": self.cell_index,
            "rep_index": self.rep_index,
            "seed": self.seed,
            "status": self.status,
            "metrics": dict(self.metrics),
        }
        if self.error:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResultRecord":
        return cls(
            cell_index=int(data["cell_index"]),
            rep_index=int(data["rep_index"]),
            seed=int(data["seed"]),
            status=data["status"],
            metrics=dict(data.get("metrics", {})),
            error=data.get("error", ""),
        )


def _canonical_cell(cell: dict[str, Any]) -> dict[str, Any]:
    """A grid cell's parameters as plain JSON values (enums to strings)."""
    return {k: getattr(v, "value", v) for k, v in cell.items()}


def grid_fingerprint(cells: Sequence[dict[str, Any]]) -> str:
    """SHA-256 over the canonical serialization of the whole grid."""
    text = json.dumps([_canonical_cell(c) for c in cells], sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class SweepMeta:
    """The sweep's identity, pinned in the ledger header.

    A resume must present an *equal* meta: same grid (fingerprinted, so a
    reordered or edited spec is caught), same base config (duration,
    workload, ... -- anything that changes the metrics), same seed
    derivation.  Mixing records from two different sweeps would produce a
    report that is silently wrong, which is worse than refusing.
    """

    cells: int
    repetitions: int
    base_seed: int
    seed_mode: str
    grid_fingerprint: str
    config_fingerprint: str
    schema: str = RESULT_SCHEMA

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "cells": self.cells,
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
            "seed_mode": self.seed_mode,
            "grid_fingerprint": self.grid_fingerprint,
            "config_fingerprint": self.config_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepMeta":
        return cls(
            cells=int(data["cells"]),
            repetitions=int(data["repetitions"]),
            base_seed=int(data["base_seed"]),
            seed_mode=data["seed_mode"],
            grid_fingerprint=data["grid_fingerprint"],
            config_fingerprint=data["config_fingerprint"],
            schema=data.get("schema", RESULT_SCHEMA),
        )


def sweep_meta(
    base: Any,
    cells: Sequence[dict[str, Any]],
    repetitions: int,
    base_seed: int,
    seed_mode: str = "crn",
) -> SweepMeta:
    """The :class:`SweepMeta` of one (config, spec, seeds) sweep."""
    # The `results` section configures the sink, not the simulation --
    # moving the ledger or toggling fsync must not invalidate a resume.
    payload = base.to_dict()
    payload.pop("results", None)
    return SweepMeta(
        cells=len(cells),
        repetitions=repetitions,
        base_seed=base_seed,
        seed_mode=seed_mode,
        grid_fingerprint=grid_fingerprint(cells),
        config_fingerprint=hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest(),
    )


@dataclass
class RecoveredResults:
    """What a store replay yields: which keys resolved, and how."""

    meta: Optional[SweepMeta] = None
    #: (cell, rep) -> first completed record.  The resume skip-set.
    completed: Dict[tuple[int, int], ResultRecord] = field(default_factory=dict)
    #: (cell, rep) -> latest failed record with no completed successor.
    #: NOT skipped on resume: these are the dead-lettered retry candidates.
    failed: Dict[tuple[int, int], ResultRecord] = field(default_factory=dict)
    #: Ledger lines dropped as unreadable (jsonl torn tail).
    corrupt_records: int = 0
    #: Completed records for an already-completed key (ignored, first wins).
    duplicate_records: int = 0

    def completed_keys(self) -> set[tuple[int, int]]:
        return set(self.completed)


class ResultStore:
    """Interface every result-sink backend implements.

    Writers are driver-side only (one process, possibly many threads);
    worker processes return their runs to the driver, which appends.
    """

    def write_meta(self, meta: SweepMeta) -> None:
        raise NotImplementedError

    def record(self, record: ResultRecord) -> None:
        raise NotImplementedError

    def load(self) -> RecoveredResults:
        raise NotImplementedError

    def close(self) -> None:
        """Release file handles; the store must be reopenable."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


#: Registry of result-sink backends, sibling to ``QUEUE_STORES``.
RESULT_STORES: "Registry[ResultStore]" = Registry("result_store")


def _replay(records: Iterable[dict]) -> RecoveredResults:
    """Fold ledger records into live state (memory/jsonl backends)."""
    state = RecoveredResults()
    for raw in records:
        op = raw.get("op")
        if op == "meta":
            meta = SweepMeta.from_dict(raw["meta"])
            if state.meta is not None and state.meta != meta:
                raise SCANError(
                    "result ledger contains two conflicting sweep headers"
                )
            state.meta = meta
        elif op == "result":
            rec = ResultRecord.from_dict(raw["record"])
            if rec.status == "completed":
                if rec.key in state.completed:
                    state.duplicate_records += 1
                else:
                    state.completed[rec.key] = rec
                    state.failed.pop(rec.key, None)
            else:
                if rec.key not in state.completed:
                    state.failed[rec.key] = rec
        else:
            raise SCANError(f"unknown result-ledger op {op!r}")
    return state


@RESULT_STORES.register("memory")
class MemoryResultStore(ResultStore):
    """Ledger in a list; survives nothing (tests, single-run streaming).

    Still replays correctly, which the round-trip property exploits:
    record -> load -> resume-set must behave exactly like the persistent
    backends even though "persist" never touches a disk.
    """

    def __init__(self) -> None:
        self._records: List[dict] = []
        self._lock = threading.Lock()

    def write_meta(self, meta: SweepMeta) -> None:
        with self._lock:
            self._records.append({"op": "meta", "meta": meta.to_dict()})

    def record(self, record: ResultRecord) -> None:
        with self._lock:
            self._records.append({"op": "result", "record": record.to_dict()})

    def load(self) -> RecoveredResults:
        with self._lock:
            records = list(self._records)
        return _replay(records)


@RESULT_STORES.register("jsonl")
class JsonlResultStore(ResultStore):
    """Append-only JSONL ledger: one record per line, flushed per write.

    A crash mid-write leaves a torn final line; :meth:`load` tolerates and
    counts it, and reopening truncates the fragment back to the last
    newline so a post-crash append can never weld onto it (the same
    repair the service plane's queue ledger performs).  Corruption
    *mid-file* raises -- silently skipping acknowledged results would
    fake completed work.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._repair_torn_tail()
        self._fh: Optional[io.TextIOWrapper] = open(  # noqa: SIM115
            path, "a", encoding="utf-8"
        )

    def _repair_torn_tail(self) -> None:
        try:
            fh = open(self.path, "rb+")  # noqa: SIM115
        except FileNotFoundError:
            return
        with fh:
            fh.seek(0, os.SEEK_END)
            pos = fh.tell()
            if pos == 0:
                return
            fh.seek(pos - 1)
            if fh.read(1) == b"\n":
                return
            last_nl = -1
            while pos > 0 and last_nl < 0:
                start = max(0, pos - 4096)
                fh.seek(start)
                idx = fh.read(pos - start).rfind(b"\n")
                if idx >= 0:
                    last_nl = start + idx
                pos = start
            fh.truncate(last_nl + 1)

    def _append(self, raw: dict) -> None:
        line = json.dumps(raw, sort_keys=True)
        with self._lock:
            if self._fh is None:
                raise SCANError(f"result store {self.path!r} is closed")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def write_meta(self, meta: SweepMeta) -> None:
        self._append({"op": "meta", "meta": meta.to_dict()})

    def record(self, record: ResultRecord) -> None:
        self._append({"op": "result", "record": record.to_dict()})

    def load(self) -> RecoveredResults:
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return RecoveredResults()
        records: List[dict] = []
        corrupt = 0
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    corrupt += 1  # torn tail from the crash: tolerated
                    break
                raise SCANError(
                    f"corrupt result ledger {self.path!r} at line {i + 1}: "
                    f"{exc}"
                ) from exc
        state = _replay(records)
        state.corrupt_records = corrupt
        return state

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


@RESULT_STORES.register("sqlite")
class SqliteResultStore(ResultStore):
    """One row per (cell, repetition) in SQLite (WAL, synchronous=NORMAL).

    ``record`` is an upsert that only overwrites a ``failed`` row -- a
    completed result can never be clobbered, so replaying a retry is
    idempotent.  ``load`` is a plain SELECT: no replay cost at boot once
    the ledger has absorbed 10^6 repetitions.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS sweep_meta (
        id      INTEGER PRIMARY KEY CHECK (id = 0),
        payload TEXT NOT NULL
    );
    CREATE TABLE IF NOT EXISTS results (
        cell    INTEGER NOT NULL,
        rep     INTEGER NOT NULL,
        seed    INTEGER NOT NULL,
        status  TEXT NOT NULL,
        error   TEXT NOT NULL DEFAULT '',
        metrics TEXT NOT NULL,
        PRIMARY KEY (cell, rep)
    );
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
            path, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    def _execute(self, sql: str, params: tuple) -> None:
        with self._lock:
            if self._conn is None:
                raise SCANError(f"result store {self.path!r} is closed")
            self._conn.execute(sql, params)
            self._conn.commit()

    def write_meta(self, meta: SweepMeta) -> None:
        self._execute(
            "INSERT OR IGNORE INTO sweep_meta (id, payload) VALUES (0, ?)",
            (json.dumps(meta.to_dict(), sort_keys=True),),
        )

    def record(self, record: ResultRecord) -> None:
        # Completed wins and sticks: only a 'failed' row may be replaced.
        self._execute(
            "INSERT INTO results (cell, rep, seed, status, error, metrics) "
            "VALUES (?, ?, ?, ?, ?, ?) "
            "ON CONFLICT (cell, rep) DO UPDATE SET "
            "seed=excluded.seed, status=excluded.status, "
            "error=excluded.error, metrics=excluded.metrics "
            "WHERE results.status = 'failed'",
            (
                record.cell_index,
                record.rep_index,
                record.seed,
                record.status,
                record.error,
                json.dumps(record.metrics, sort_keys=True),
            ),
        )

    def load(self) -> RecoveredResults:
        with self._lock:
            if self._conn is None:
                raise SCANError(f"result store {self.path!r} is closed")
            meta_rows = self._conn.execute(
                "SELECT payload FROM sweep_meta WHERE id = 0"
            ).fetchall()
            rows = self._conn.execute(
                "SELECT cell, rep, seed, status, error, metrics "
                "FROM results ORDER BY cell, rep"
            ).fetchall()
        state = RecoveredResults()
        if meta_rows:
            state.meta = SweepMeta.from_dict(json.loads(meta_rows[0][0]))
        for cell, rep, seed, status, error, metrics in rows:
            rec = ResultRecord(
                cell_index=cell,
                rep_index=rep,
                seed=seed,
                status=status,
                metrics=json.loads(metrics),
                error=error,
            )
            if status == "completed":
                state.completed[rec.key] = rec
            else:
                state.failed[rec.key] = rec
        return state

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None


def make_result_store(spec: str, fsync: bool = False) -> ResultStore:
    """Build a result sink from a short spec string.

    - ``memory``                                 -> :class:`MemoryResultStore`
    - ``sqlite:PATH`` / ``*.db`` / ``*.sqlite``  -> :class:`SqliteResultStore`
    - ``jsonl:PATH`` / any other path            -> :class:`JsonlResultStore`
    """
    if not spec:
        raise ConfigurationError("result store spec must be non-empty")
    if spec == "memory":
        return RESULT_STORES.create("memory")
    if ":" in spec and spec.split(":", 1)[0] in RESULT_STORES:
        kind, path = spec.split(":", 1)
        if not path:
            raise ConfigurationError(f"store spec {spec!r} needs a path")
        if kind == "jsonl":
            return RESULT_STORES.create(kind, path, fsync)
        return RESULT_STORES.create(kind, path)
    if spec.endswith((".db", ".sqlite", ".sqlite3")):
        return RESULT_STORES.create("sqlite", spec)
    return RESULT_STORES.create("jsonl", spec, fsync)


def open_result_stream(
    store: ResultStore, meta: SweepMeta, resume: bool = False
) -> RecoveredResults:
    """Bind *store* to one sweep and report what is already done.

    Fresh store: the header is written and an empty state returned.
    Non-empty store: ``resume=True`` is required (refusing beats silently
    interleaving two sweeps), and the stored header must equal *meta* --
    same grid, same base config, same seed derivation.
    """
    state = store.load()
    if state.meta is None:
        if state.completed or state.failed:
            raise SCANError(
                "result store holds records but no sweep header; "
                "it is not a scan-sim result ledger"
            )
        store.write_meta(meta)
        state.meta = meta
        return state
    if not resume:
        raise ConfigurationError(
            f"result store already holds a sweep "
            f"({len(state.completed)} completed repetition(s)); "
            f"pass --resume to continue it or use a fresh path"
        )
    if state.meta != meta:
        mismatched = [
            name
            for name in (
                "schema", "cells", "repetitions", "base_seed",
                "seed_mode", "grid_fingerprint", "config_fingerprint",
            )
            if getattr(state.meta, name) != getattr(meta, name)
        ]
        raise ConfigurationError(
            f"result store belongs to a different sweep "
            f"(mismatched: {', '.join(mismatched)}); resuming it with "
            f"this grid/config would corrupt the report"
        )
    return state


# -- incremental aggregation --------------------------------------------------


class SweepAggregator:
    """Fold per-repetition records into per-cell rows, incrementally.

    Holds the raw per-run metric dicts only for *incomplete* cells; the
    moment a cell's last repetition lands it collapses to a
    :class:`~repro.sim.sweep.SweepRow` (summary statistics), optionally
    handed to ``on_cell`` and -- unless ``retain_rows=False`` -- kept for
    :meth:`rows`.  The fold is order-invariant (runs are sorted by
    repetition index before aggregation) and exact: the finalize step is
    the very ``aggregate_runs`` call the in-memory path makes.
    """

    def __init__(
        self,
        cells: Sequence[dict[str, Any]],
        repetitions: int,
        on_cell: Optional[Callable[[int, Any], None]] = None,
        retain_rows: bool = True,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self._cells = [dict(cell) for cell in cells]
        self._reps = repetitions
        self._on_cell = on_cell
        self._retain = retain_rows
        #: cell_index -> {rep_index: per-run metrics} for in-flight cells.
        self._partial: Dict[int, Dict[int, Dict[str, float]]] = {}
        self._rows: Dict[int, Any] = {}
        self._finalized: set[int] = set()
        #: Completed records for an already-folded key (ignored).
        self.duplicates = 0

    @property
    def cells(self) -> int:
        return len(self._cells)

    @property
    def repetitions(self) -> int:
        return self._reps

    @property
    def done_cells(self) -> int:
        return len(self._finalized)

    @property
    def pending_cells(self) -> int:
        """Cells with at least one run folded but not yet complete."""
        return len(self._partial)

    def add(self, record: ResultRecord) -> Optional[Any]:
        """Fold one record; returns the cell's row when it completes."""
        if record.status != "completed":
            return None
        return self._add_run(
            record.cell_index, record.rep_index, dict(record.metrics)
        )

    def add_all(self, records: Iterable[ResultRecord]) -> List[Any]:
        """Fold many records; returns the rows completed by them."""
        rows = []
        for record in records:
            row = self.add(record)
            if row is not None:
                rows.append(row)
        return rows

    def _add_run(
        self, cell_index: int, rep_index: int, metrics: Dict[str, float]
    ) -> Optional[Any]:
        if not 0 <= cell_index < len(self._cells):
            raise SCANError(
                f"record cell_index {cell_index} outside grid of "
                f"{len(self._cells)} cells"
            )
        if not 0 <= rep_index < self._reps:
            raise SCANError(
                f"record rep_index {rep_index} outside {self._reps} "
                f"repetitions"
            )
        if cell_index in self._finalized or rep_index in self._partial.get(
            cell_index, ()
        ):
            self.duplicates += 1
            return None
        slot = self._partial.setdefault(cell_index, {})
        slot[rep_index] = metrics
        if len(slot) < self._reps:
            return None
        del self._partial[cell_index]
        return self._finalize(cell_index, slot)

    def _finalize(
        self, cell_index: int, runs: Dict[int, Dict[str, float]]
    ) -> Any:
        from repro.sim.sweep import row_from_runs

        row = row_from_runs(
            self._cells[cell_index], [runs[k] for k in sorted(runs)]
        )
        self._finalized.add(cell_index)
        if self._retain:
            self._rows[cell_index] = row
        if self._on_cell is not None:
            self._on_cell(cell_index, row)
        return row

    def missing_keys(self) -> List[tuple[int, int]]:
        """The (cell, rep) keys not yet folded, in grid order."""
        out = []
        for cell_index in range(len(self._cells)):
            if cell_index in self._finalized:
                continue
            have = self._partial.get(cell_index, ())
            out.extend(
                (cell_index, k) for k in range(self._reps) if k not in have
            )
        return out

    def rows(self) -> List[Any]:
        """All rows in grid order; every cell must be complete."""
        if not self._retain:
            raise SCANError("aggregator built with retain_rows=False")
        missing = self.missing_keys()
        if missing:
            raise SCANError(
                f"sweep incomplete: {len(missing)} repetition(s) missing "
                f"(first: cell {missing[0][0]} rep {missing[0][1]})"
            )
        return [self._rows[i] for i in range(len(self._cells))]

    def merge(self, other: "SweepAggregator") -> "SweepAggregator":
        """Fold *other*'s state into this aggregator (disjoint records).

        The map-reduce seam for a future multi-machine executor: each
        worker folds its own slice, the driver merges.  Requires the same
        grid/repetitions, both sides retaining rows, and *disjoint*
        record sets -- a cell finalized on both sides (or finalized on
        one and partial on the other) proves an overlap, and merging
        overlapping folds cannot be exact, so it raises.
        """
        if other._cells != self._cells or other._reps != self._reps:
            raise SCANError("cannot merge aggregators of different sweeps")
        if not (self._retain and other._retain):
            raise SCANError("merge requires retain_rows=True on both sides")
        for cell_index in sorted(other._finalized):
            if cell_index in self._finalized or cell_index in self._partial:
                raise SCANError(
                    f"merge overlap: cell {cell_index} present on both sides"
                )
            self._finalized.add(cell_index)
            row = other._rows[cell_index]
            self._rows[cell_index] = row
            if self._on_cell is not None:
                self._on_cell(cell_index, row)
        for cell_index, runs in sorted(other._partial.items()):
            for rep_index in sorted(runs):
                self._add_run(cell_index, rep_index, dict(runs[rep_index]))
        self.duplicates += other.duplicates
        return self


def fold_records(
    cells: Sequence[dict[str, Any]],
    repetitions: int,
    records: Iterable[ResultRecord],
) -> SweepAggregator:
    """Convenience: a fresh aggregator with *records* folded in."""
    agg = SweepAggregator(cells, repetitions)
    agg.add_all(records)
    return agg


def records_from_runs(
    cell_index: int,
    rep_indices: Sequence[int],
    seeds: Sequence[int],
    per_run: Sequence[Dict[str, float]],
) -> List[ResultRecord]:
    """Completed records for one executed slice of a cell."""
    if not len(rep_indices) == len(seeds) == len(per_run):
        raise ValueError("rep_indices, seeds and per_run must align")
    return [
        ResultRecord(
            cell_index=cell_index,
            rep_index=rep_index,
            seed=seed,
            status="completed",
            metrics=dict(metrics),
        )
        for rep_index, seed, metrics in zip(rep_indices, seeds, per_run)
    ]


def failed_records(
    cell_index: int,
    rep_indices: Sequence[int],
    seeds: Sequence[int],
    error: str,
) -> List[ResultRecord]:
    """Failed (dead-letter) records for one exhausted slice of a cell."""
    return [
        ResultRecord(
            cell_index=cell_index,
            rep_index=rep_index,
            seed=seed,
            status="failed",
            error=error,
        )
        for rep_index, seed in zip(rep_indices, seeds)
    ]
