"""Per-session result records."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any

__all__ = ["SessionResult"]


@dataclass(frozen=True)
class SessionResult:
    """Everything one simulation session reports.

    The headline metrics map straight onto the paper's figures:

    - ``mean_profit_per_run`` -- Figure 4's y-axis;
    - ``reward_to_cost`` -- Figure 5's y-axis;
    - ``mean_core_stages`` -- Figure 5's x-axis.
    """

    seed: int
    duration: float
    submitted_runs: int
    completed_runs: int
    total_reward: float
    total_cost: float
    mean_latency: float
    mean_core_stages: float
    private_core_tu: float
    public_core_tu: float
    private_utilization: float
    hires_private: int
    hires_public: int
    repools: int
    reaped: int
    final_queue_depth: int
    worker_failures: int = 0
    task_retries: int = 0
    #: Jobs dead-lettered out of the pipeline (reward forfeited).
    failed_runs: int = 0
    #: Tasks quarantined after exhausting their retry budget.
    dead_lettered: int = 0
    speculative_launched: int = 0
    speculative_won: int = 0
    speculative_lost: int = 0
    #: Transient CELAR deploy bounces absorbed by the scheduler.
    deploy_failures: int = 0
    #: Workers that died during boot (injected boot failures).
    boot_failures: int = 0
    #: Times the public-tier circuit breaker tripped open.
    breaker_opens: int = 0
    #: Straggler slowdowns injected into task executions.
    stragglers: int = 0
    #: Completed stages retroactively invalidated by corruption.
    corruptions: int = 0
    #: Latency percentiles over completed (post-warmup) runs; NaN when no
    #: run completed.  The mean alone hides tail behaviour -- exactly what
    #: stragglers and retries inflate.
    latency_p50: float = float("nan")
    latency_p95: float = float("nan")
    latency_p99: float = float("nan")

    @property
    def profit(self) -> float:
        return self.total_reward - self.total_cost

    @property
    def mean_profit_per_run(self) -> float:
        if self.completed_runs == 0:
            return 0.0
        return self.profit / self.completed_runs

    @property
    def reward_to_cost(self) -> float:
        if self.total_cost <= 0:
            return 0.0
        return self.total_reward / self.total_cost

    @property
    def completion_fraction(self) -> float:
        if self.submitted_runs == 0:
            return 1.0
        return self.completed_runs / self.submitted_runs

    @property
    def failure_fraction(self) -> float:
        """Share of submitted runs that were dead-lettered."""
        if self.submitted_runs == 0:
            return 0.0
        return self.failed_runs / self.submitted_runs

    def metrics(self) -> dict[str, float]:
        """The numeric metrics used by repetition aggregation."""
        return {
            "completed_runs": float(self.completed_runs),
            "total_reward": self.total_reward,
            "total_cost": self.total_cost,
            "profit": self.profit,
            "mean_profit_per_run": self.mean_profit_per_run,
            "reward_to_cost": self.reward_to_cost,
            "mean_latency": self.mean_latency,
            "latency_p95": self.latency_p95,
            "mean_core_stages": self.mean_core_stages,
            "private_utilization": self.private_utilization,
            "public_core_tu": self.public_core_tu,
            "completion_fraction": self.completion_fraction,
            "failed_runs": float(self.failed_runs),
        }

    def as_dict(self) -> dict[str, Any]:
        """All fields plus derived metrics, JSON-friendly."""
        out = asdict(self)
        out["profit"] = self.profit
        out["mean_profit_per_run"] = self.mean_profit_per_run
        out["reward_to_cost"] = self.reward_to_cost
        return out

    def resilience_counters(self) -> dict[str, int]:
        """The fault/resilience counters as a compact dict."""
        return {
            "worker_failures": self.worker_failures,
            "boot_failures": self.boot_failures,
            "deploy_failures": self.deploy_failures,
            "stragglers": self.stragglers,
            "corruptions": self.corruptions,
            "task_retries": self.task_retries,
            "dead_lettered": self.dead_lettered,
            "failed_runs": self.failed_runs,
            "speculative_launched": self.speculative_launched,
            "speculative_won": self.speculative_won,
            "speculative_lost": self.speculative_lost,
            "breaker_opens": self.breaker_opens,
        }
