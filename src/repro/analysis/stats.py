"""Summary statistics and cross-run aggregation.

"All measurements were repeated 10 times, and all error bars represent a
single standard deviation either side of the mean" (paper Section IV-B).
:func:`aggregate_runs` implements exactly that convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "SummaryStats",
    "summarize",
    "aggregate_runs",
    "mean_std",
    "confidence_interval",
    "welford",
]


@dataclass(frozen=True)
class SummaryStats:
    """Mean +/- sample standard deviation over n observations."""

    mean: float
    std: float
    n: int
    minimum: float
    maximum: float

    @property
    def lower(self) -> float:
        """Lower error bar (mean - 1 sigma), the paper's convention."""
        return self.mean - self.std

    @property
    def upper(self) -> float:
        """Upper error bar (mean + 1 sigma)."""
        return self.mean + self.std

    def __str__(self) -> str:
        return f"{self.mean:.3f} +/- {self.std:.3f} (n={self.n})"


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of *values* (sample std, ddof=1)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sequence")
    std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
    return SummaryStats(
        mean=float(arr.mean()),
        std=std,
        n=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Convenience: (mean, sample std) of *values*."""
    s = summarize(values)
    return s.mean, s.std


def aggregate_runs(
    per_run_values: Iterable[Mapping[str, float]],
) -> dict[str, SummaryStats]:
    """Aggregate repeated-run metric dicts into per-metric summaries.

    Each element of *per_run_values* is one run's ``{metric: value}``; all
    runs must report the same metric keys.
    """
    runs = list(per_run_values)
    if not runs:
        raise ValueError("no runs to aggregate")
    keys = set(runs[0])
    for i, run in enumerate(runs[1:], start=2):
        if set(run) != keys:
            raise ValueError(f"run {i} reports different metrics than run 1")
    return {key: summarize([run[key] for run in runs]) for key in sorted(keys)}


def confidence_interval(
    values: Sequence[float], level: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Uses the z quantile (not t): adequate for the n=10 repetition counts used
    here, and keeps the implementation dependency-free.
    """
    if not 0.0 < level < 1.0:
        raise ValueError("level must lie in (0, 1)")
    s = summarize(values)
    if s.n == 1:
        return (s.mean, s.mean)
    z = _normal_quantile(0.5 + level / 2.0)
    half = z * s.std / math.sqrt(s.n)
    return (s.mean - half, s.mean + half)


def welford() -> "RunningStats":
    """A fresh online-statistics accumulator (Welford's algorithm)."""
    return RunningStats()


class RunningStats:
    """Online mean/variance via Welford's algorithm.

    Used by the scheduler's queue-time estimator, where observations arrive
    one at a time during a simulation and storing them all would be wasteful.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else float("nan")

    @property
    def variance(self) -> float:
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Max absolute error ~1.15e-9 over (0, 1); implemented here to avoid a
    hard scipy dependency in the core library.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie in (0, 1)")
    # Coefficients for the rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )
