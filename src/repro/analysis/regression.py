"""Ordinary least squares fitting for profiling data.

The SCAN knowledge base derives each application stage's execution-time
model by linear regression over profiled (input size, runtime) observations
(paper Section III-A.1.i and Section IV: "The values of a_i, b_i and c_i
were determined for each pipeline stage by linear regression of offline
profiling data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LinearFit", "fit_linear", "fit_affine_multi"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a one-dimensional affine fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    n: int
    residual_std: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Predicted y for x (scalar or array)."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept

    def __call__(self, x: float) -> float:
        return float(self.slope * x + self.intercept)


def fit_linear(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares affine fit of *y* on *x*.

    Raises ``ValueError`` for fewer than two points or degenerate x.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be 1-d arrays of the same length")
    n = xa.size
    if n < 2:
        raise ValueError(f"need at least 2 points, got {n}")
    x_mean = xa.mean()
    y_mean = ya.mean()
    sxx = float(np.sum((xa - x_mean) ** 2))
    if sxx == 0.0:
        raise ValueError("all x values are identical; slope is undefined")
    sxy = float(np.sum((xa - x_mean) * (ya - y_mean)))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    residuals = ya - (slope * xa + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ya - y_mean) ** 2))
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    dof = max(n - 2, 1)
    residual_std = float(np.sqrt(ss_res / dof))
    return LinearFit(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        n=n,
        residual_std=residual_std,
    )


def fit_affine_multi(X: np.ndarray, y: Sequence[float]) -> tuple[np.ndarray, float]:
    """Multi-feature affine fit ``y = X @ coef + intercept``.

    Used when profiling models depend on several covariates (e.g. input size
    and record count).  Returns ``(coef, intercept)`` via the normal
    equations solved with :func:`numpy.linalg.lstsq` for numerical safety.
    """
    Xa = np.asarray(X, dtype=float)
    ya = np.asarray(y, dtype=float)
    if Xa.ndim != 2:
        raise ValueError("X must be 2-d (n_samples, n_features)")
    if Xa.shape[0] != ya.shape[0]:
        raise ValueError("X and y disagree on sample count")
    if Xa.shape[0] <= Xa.shape[1]:
        raise ValueError("need more samples than features")
    design = np.hstack([Xa, np.ones((Xa.shape[0], 1))])
    solution, *_ = np.linalg.lstsq(design, ya, rcond=None)
    return solution[:-1].copy(), float(solution[-1])
