"""Statistics and model-fitting substrate.

The paper fits per-stage linear execution-time models ``E_i(d) = a_i d + b_i``
and Amdahl serial fractions ``c_i`` from offline profiling data (Section IV,
Table II), and reports all measurements as mean +/- one standard deviation
over ten repetitions.  This package provides those tools from scratch:

- :mod:`repro.analysis.regression` -- ordinary least squares, fit quality.
- :mod:`repro.analysis.amdahl` -- Amdahl's-law speedup models and fitting.
- :mod:`repro.analysis.stats` -- summary statistics, error bars, confidence
  intervals, cross-run aggregation.
"""

from repro.analysis.regression import LinearFit, fit_linear, fit_affine_multi
from repro.analysis.amdahl import (
    amdahl_speedup,
    amdahl_time,
    fit_parallel_fraction,
    optimal_threads,
)
from repro.analysis.stats import (
    SummaryStats,
    summarize,
    aggregate_runs,
    mean_std,
    confidence_interval,
)

__all__ = [
    "LinearFit",
    "fit_linear",
    "fit_affine_multi",
    "amdahl_speedup",
    "amdahl_time",
    "fit_parallel_fraction",
    "optimal_threads",
    "SummaryStats",
    "summarize",
    "aggregate_runs",
    "mean_std",
    "confidence_interval",
]
