"""Amdahl's-law threading models.

The paper models multi-threaded stage execution as

    T_i(t, d) = c_i * E_i(d) / t + (1 - c_i) * E_i(d)

where ``c_i`` is the perfectly-parallelisable fraction of the stage and
``t`` the thread count (Section IV.1).  This module provides the forward
model, its inverse (fitting ``c`` from measured speedups) and the
reward-aware choice of thread count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "amdahl_time",
    "amdahl_speedup",
    "fit_parallel_fraction",
    "optimal_threads",
    "marginal_speedup_gain",
]


def amdahl_time(base_time: float, threads: int, parallel_fraction: float) -> float:
    """Threaded execution time per the paper's model.

    ``base_time`` is the single-threaded execution time ``E_i(d)``.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError(f"parallel fraction must lie in [0, 1], got {parallel_fraction}")
    if base_time < 0:
        raise ValueError(f"negative base time {base_time}")
    return parallel_fraction * base_time / threads + (1.0 - parallel_fraction) * base_time


def amdahl_speedup(threads: int, parallel_fraction: float) -> float:
    """Speedup ``E / T(t)`` for the paper's threading model."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    denom = parallel_fraction / threads + (1.0 - parallel_fraction)
    return 1.0 / denom


def max_speedup(parallel_fraction: float) -> float:
    """Asymptotic speedup limit ``1 / (1 - c)`` (infinite threads)."""
    if parallel_fraction >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - parallel_fraction)


def fit_parallel_fraction(
    threads: Sequence[int], times: Sequence[float]
) -> float:
    """Least-squares estimate of ``c`` from measured (threads, time) pairs.

    Rearranging the model: ``T(t) = E * (1 - c) + (E * c) / t`` is affine in
    ``1/t``, so an OLS fit of time on ``1/t`` recovers ``E*c`` (slope) and
    ``E*(1-c)`` (intercept); then ``c = slope / (slope + intercept)``.

    The result is clipped to [0, 1]: measurement noise can push the raw
    estimate slightly outside the physical range.
    """
    t = np.asarray(threads, dtype=float)
    y = np.asarray(times, dtype=float)
    if t.shape != y.shape or t.ndim != 1 or t.size < 2:
        raise ValueError("need matching 1-d arrays with at least 2 points")
    if np.any(t < 1):
        raise ValueError("thread counts must be >= 1")
    if np.all(t == t[0]):
        raise ValueError("need at least two distinct thread counts")
    inv_t = 1.0 / t
    x_mean, y_mean = inv_t.mean(), y.mean()
    sxx = float(np.sum((inv_t - x_mean) ** 2))
    sxy = float(np.sum((inv_t - x_mean) * (y - y_mean)))
    slope = sxy / sxx  # = E * c
    intercept = y_mean - slope * x_mean  # = E * (1 - c)
    total = slope + intercept  # = E
    if total <= 0:
        return 0.0
    return float(np.clip(slope / total, 0.0, 1.0))


def marginal_speedup_gain(threads: int, parallel_fraction: float) -> float:
    """Time saved (as a fraction of base time) by going t -> t+1 threads."""
    t1 = amdahl_time(1.0, threads, parallel_fraction)
    t2 = amdahl_time(1.0, threads + 1, parallel_fraction)
    return t1 - t2


def optimal_threads(
    base_time: float,
    parallel_fraction: float,
    core_cost_per_tu: float,
    reward_per_tu_saved: float,
    allowed: Sequence[int] = (1, 2, 4, 8, 16),
) -> int:
    """Pick the thread count maximising (reward for time saved - core cost).

    This is the "parallelism recommendation depending on the reward offered
    by the user" of Section III-A.1.i: each extra thread costs
    ``core_cost_per_tu`` for the (shortened) duration of the stage, while
    each TU of latency saved earns ``reward_per_tu_saved``.
    """
    if not allowed:
        raise ValueError("allowed thread counts must be non-empty")
    best_t, best_profit = None, None
    base = amdahl_time(base_time, 1, parallel_fraction)
    for t in sorted(set(int(x) for x in allowed)):
        duration = amdahl_time(base_time, t, parallel_fraction)
        saved = base - duration
        profit = reward_per_tu_saved * saved - core_cost_per_tu * duration * t
        if best_profit is None or profit > best_profit + 1e-12:
            best_t, best_profit = t, profit
    assert best_t is not None
    return best_t
