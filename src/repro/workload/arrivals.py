"""The batched stochastic arrival process.

Arrival events are a Poisson process (exponential inter-arrival times with
the Table I mean); each event carries a batch of jobs.  Batch counts and
job sizes are truncated normals with Table III's means and variances --
truncation keeps counts >= 1 and sizes > 0, preserving the paper's
"significant short-term workload variation" while staying physical.

Arrival generators are pluggable through :data:`ARRIVAL_PROCESSES`, the
same registry shape as ``RESULT_STORES``/``QUEUE_STORES``: the Poisson
generator is the ``"batch_poisson"`` default, and ``"trace"`` replays a
recorded JSONL arrival log (:mod:`repro.workload.traces`) for
reproducible cross-policy comparisons on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Protocol

import numpy as np

from repro.core.config import WorkloadConfig
from repro.core.errors import WorkloadError
from repro.core.plugins import Registry
from repro.desim.engine import Environment

__all__ = [
    "ArrivalBatch",
    "ArrivalProcess",
    "BatchArrivalProcess",
    "ARRIVAL_PROCESSES",
    "make_arrival_process",
]

#: Smallest job size the generator will emit (GB-units).
MIN_JOB_SIZE = 0.25


class ArrivalProcess(Protocol):
    """What the session loop needs from an arrival generator."""

    def generate(self, duration: float) -> "Iterator[ArrivalBatch]":
        """Yield all batches arriving in [0, duration)."""
        ...

    def run(
        self,
        env: Environment,
        on_batch: "Callable[[ArrivalBatch], None]",
        until: Optional[float] = None,
    ):
        """Simulation process delivering batches as time passes."""
        ...


@dataclass(frozen=True)
class ArrivalBatch:
    """One arrival event: a timestamp and the sizes of its jobs."""

    time: float
    sizes: tuple[float, ...]

    @property
    def n_jobs(self) -> int:
        return len(self.sizes)

    @property
    def total_size(self) -> float:
        return float(sum(self.sizes))


class BatchArrivalProcess:
    """Generates :class:`ArrivalBatch` sequences, standalone or in-sim."""

    def __init__(self, config: WorkloadConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self.rng = rng

    # -- draws ------------------------------------------------------------
    def draw_interval(self) -> float:
        """Next inter-arrival interval (exponential)."""
        return float(self.rng.exponential(self.config.mean_interarrival))

    def draw_batch_count(self) -> int:
        """Jobs in the next batch: truncated normal, >= 1."""
        std = np.sqrt(self.config.jobs_per_arrival_var)
        count = self.rng.normal(self.config.jobs_per_arrival_mean, std)
        return max(int(round(count)), 1)

    def draw_job_size(self) -> float:
        """One job's size: truncated normal, >= MIN_JOB_SIZE."""
        std = np.sqrt(self.config.job_size_var)
        size = self.rng.normal(self.config.job_size_mean, std)
        return float(max(size, MIN_JOB_SIZE))

    def draw_batch(self, time: float) -> ArrivalBatch:
        """One arrival event with drawn job sizes."""
        count = self.draw_batch_count()
        sizes = tuple(self.draw_job_size() for _ in range(count))
        return ArrivalBatch(time=time, sizes=sizes)

    # -- offline generation ------------------------------------------------
    def generate(self, duration: float) -> Iterator[ArrivalBatch]:
        """Yield all batches arriving in [0, duration)."""
        if duration <= 0:
            raise WorkloadError("duration must be positive")
        t = self.draw_interval()
        while t < duration:
            yield self.draw_batch(t)
            t += self.draw_interval()

    # -- in-simulation process ----------------------------------------------
    def run(
        self,
        env: Environment,
        on_batch: Callable[[ArrivalBatch], None],
        until: Optional[float] = None,
    ):
        """Process: deliver batches to *on_batch* as simulated time passes."""
        while True:
            interval = self.draw_interval()
            if until is not None and env.now + interval >= until:
                return
            yield env.timeout(interval)
            on_batch(self.draw_batch(env.now))

    def expected_load_rate(self) -> float:
        """Mean job-size units arriving per TU (offered load)."""
        return (
            self.config.jobs_per_arrival_mean
            * self.config.job_size_mean
            / self.config.mean_interarrival
        )


#: Plugin registry of arrival-process factories.  Factories receive the
#: workload config and an ``np.random.Generator`` keyword; trace-backed
#: processes read their path from ``config.arrival_trace``.
ARRIVAL_PROCESSES: "Registry[ArrivalProcess]" = Registry("arrival")


@ARRIVAL_PROCESSES.register("batch_poisson")
def _make_batch_poisson(
    config: WorkloadConfig, rng: np.random.Generator
) -> ArrivalProcess:
    return BatchArrivalProcess(config, rng)


@ARRIVAL_PROCESSES.register("trace")
def _make_trace(
    config: WorkloadConfig, rng: np.random.Generator
) -> ArrivalProcess:
    # Function-level import: traces.py imports ArrivalBatch from here.
    from repro.workload.traces import TraceArrivalProcess

    if not config.arrival_trace:
        raise WorkloadError(
            "trace arrivals need workload.arrival_trace (a JSONL path "
            "recorded with repro.workload.traces.save_trace_jsonl)"
        )
    return TraceArrivalProcess.from_jsonl(config.arrival_trace)


def make_arrival_process(
    kind: str, config: WorkloadConfig, rng: np.random.Generator
) -> ArrivalProcess:
    """Instantiate the arrival process named by *kind*.

    A thin :data:`ARRIVAL_PROCESSES` lookup; unknown names raise
    :class:`~repro.core.errors.ConfigurationError` listing what is
    registered.
    """
    return ARRIVAL_PROCESSES.create(kind, config=config, rng=rng)
