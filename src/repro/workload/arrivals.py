"""The batched stochastic arrival process.

Arrival events are a Poisson process (exponential inter-arrival times with
the Table I mean); each event carries a batch of jobs.  Batch counts and
job sizes are truncated normals with Table III's means and variances --
truncation keeps counts >= 1 and sizes > 0, preserving the paper's
"significant short-term workload variation" while staying physical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import numpy as np

from repro.core.config import WorkloadConfig
from repro.core.errors import WorkloadError
from repro.desim.engine import Environment

__all__ = ["ArrivalBatch", "BatchArrivalProcess"]

#: Smallest job size the generator will emit (GB-units).
MIN_JOB_SIZE = 0.25


@dataclass(frozen=True)
class ArrivalBatch:
    """One arrival event: a timestamp and the sizes of its jobs."""

    time: float
    sizes: tuple[float, ...]

    @property
    def n_jobs(self) -> int:
        return len(self.sizes)

    @property
    def total_size(self) -> float:
        return float(sum(self.sizes))


class BatchArrivalProcess:
    """Generates :class:`ArrivalBatch` sequences, standalone or in-sim."""

    def __init__(self, config: WorkloadConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self.rng = rng

    # -- draws ------------------------------------------------------------
    def draw_interval(self) -> float:
        """Next inter-arrival interval (exponential)."""
        return float(self.rng.exponential(self.config.mean_interarrival))

    def draw_batch_count(self) -> int:
        """Jobs in the next batch: truncated normal, >= 1."""
        std = np.sqrt(self.config.jobs_per_arrival_var)
        count = self.rng.normal(self.config.jobs_per_arrival_mean, std)
        return max(int(round(count)), 1)

    def draw_job_size(self) -> float:
        """One job's size: truncated normal, >= MIN_JOB_SIZE."""
        std = np.sqrt(self.config.job_size_var)
        size = self.rng.normal(self.config.job_size_mean, std)
        return float(max(size, MIN_JOB_SIZE))

    def draw_batch(self, time: float) -> ArrivalBatch:
        """One arrival event with drawn job sizes."""
        count = self.draw_batch_count()
        sizes = tuple(self.draw_job_size() for _ in range(count))
        return ArrivalBatch(time=time, sizes=sizes)

    # -- offline generation ------------------------------------------------
    def generate(self, duration: float) -> Iterator[ArrivalBatch]:
        """Yield all batches arriving in [0, duration)."""
        if duration <= 0:
            raise WorkloadError("duration must be positive")
        t = self.draw_interval()
        while t < duration:
            yield self.draw_batch(t)
            t += self.draw_interval()

    # -- in-simulation process ----------------------------------------------
    def run(
        self,
        env: Environment,
        on_batch: Callable[[ArrivalBatch], None],
        until: Optional[float] = None,
    ):
        """Process: deliver batches to *on_batch* as simulated time passes."""
        while True:
            interval = self.draw_interval()
            if until is not None and env.now + interval >= until:
                return
            yield env.timeout(interval)
            on_batch(self.draw_batch(env.now))

    def expected_load_rate(self) -> float:
        """Mean job-size units arriving per TU (offered load)."""
        return (
            self.config.jobs_per_arrival_mean
            * self.config.job_size_mean
            / self.config.mean_interarrival
        )
