"""Workload generation (paper Tables I and III).

"the arrival batch size and job size parameters were chosen to produce
significant short-term workload variation, such that the scaling and
resource allocation algorithms would experience a wide range of cluster
utilisation during a given simulation run" (Section IV-B).

- :mod:`repro.workload.arrivals` -- the batched stochastic arrival process:
  exponential inter-arrival intervals (mean 2.0-3.0 TU), batch sizes of
  mean 3 / variance 2 jobs, job sizes of mean 5 / variance 1 units.
- :mod:`repro.workload.jobs` -- job construction for an application.
- :mod:`repro.workload.traces` -- record/replay of arrival traces, for
  common-random-number comparisons and regression fixtures.
"""

from repro.workload.arrivals import ArrivalBatch, BatchArrivalProcess
from repro.workload.jobs import JobFactory
from repro.workload.traces import ArrivalTrace, record_trace, replay_trace

__all__ = [
    "ArrivalBatch",
    "BatchArrivalProcess",
    "JobFactory",
    "ArrivalTrace",
    "record_trace",
    "replay_trace",
]
