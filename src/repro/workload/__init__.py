"""Workload generation (paper Tables I and III).

"the arrival batch size and job size parameters were chosen to produce
significant short-term workload variation, such that the scaling and
resource allocation algorithms would experience a wide range of cluster
utilisation during a given simulation run" (Section IV-B).

- :mod:`repro.workload.arrivals` -- the batched stochastic arrival process:
  exponential inter-arrival intervals (mean 2.0-3.0 TU), batch sizes of
  mean 3 / variance 2 jobs, job sizes of mean 5 / variance 1 units; plus
  the :data:`~repro.workload.arrivals.ARRIVAL_PROCESSES` plugin registry
  (``"batch_poisson"`` default, ``"trace"`` replay).
- :mod:`repro.workload.jobs` -- job construction for an application or a
  compiled workflow.
- :mod:`repro.workload.traces` -- record/replay of arrival traces (JSONL
  on disk), for common-random-number comparisons and regression fixtures.
"""

from repro.workload.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalBatch,
    BatchArrivalProcess,
    make_arrival_process,
)
from repro.workload.jobs import JobFactory
from repro.workload.traces import (
    ArrivalTrace,
    TraceArrivalProcess,
    load_trace_jsonl,
    record_trace,
    replay_trace,
    save_trace_jsonl,
)

__all__ = [
    "ArrivalBatch",
    "BatchArrivalProcess",
    "ARRIVAL_PROCESSES",
    "make_arrival_process",
    "JobFactory",
    "ArrivalTrace",
    "TraceArrivalProcess",
    "record_trace",
    "replay_trace",
    "save_trace_jsonl",
    "load_trace_jsonl",
]
