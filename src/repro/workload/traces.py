"""Arrival-trace record and replay.

Recording a trace and replaying it against different scheduler policies
gives a *paired* comparison (identical arrivals), tightening the error
bars beyond the common-random-number effect the seeded streams already
provide.  Traces serialize to plain dicts for JSON fixtures, and to JSONL
files (one batch object per line) for the ``"trace"`` entry in
:data:`~repro.workload.arrivals.ARRIVAL_PROCESSES`:
:class:`TraceArrivalProcess` makes a recorded trace a drop-in arrival
generator, selected with ``workload.arrival_process = "trace"`` plus
``workload.arrival_trace = <path>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from repro.core.errors import WorkloadError
from repro.desim.engine import Environment
from repro.workload.arrivals import ArrivalBatch, BatchArrivalProcess

__all__ = [
    "ArrivalTrace",
    "TraceArrivalProcess",
    "record_trace",
    "replay_trace",
    "save_trace_jsonl",
    "load_trace_jsonl",
]


@dataclass(frozen=True)
class ArrivalTrace:
    """An immutable, time-ordered sequence of arrival batches."""

    batches: tuple[ArrivalBatch, ...]

    def __post_init__(self) -> None:
        last = -1.0
        for batch in self.batches:
            if batch.time < last:
                raise WorkloadError("trace batches are not time-ordered")
            last = batch.time

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self):
        return iter(self.batches)

    @property
    def n_jobs(self) -> int:
        return sum(b.n_jobs for b in self.batches)

    @property
    def duration(self) -> float:
        return self.batches[-1].time if self.batches else 0.0

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-friendly batch dicts."""
        return [
            {"time": b.time, "sizes": list(b.sizes)} for b in self.batches
        ]

    @classmethod
    def from_dicts(cls, rows: Iterable[dict[str, Any]]) -> "ArrivalTrace":
        return cls(
            tuple(
                ArrivalBatch(time=float(r["time"]), sizes=tuple(float(s) for s in r["sizes"]))
                for r in rows
            )
        )


class TraceArrivalProcess:
    """A recorded trace as a drop-in arrival process.

    Satisfies :class:`~repro.workload.arrivals.ArrivalProcess`, so the
    session builder can swap it for the Poisson generator: ``generate``
    filters the recording by horizon, ``run`` delivers each batch at its
    recorded timestamp.  The replay is exact -- the batches are not drawn
    from a shared seed, they *are* the recorded batches.
    """

    def __init__(self, trace: ArrivalTrace) -> None:
        self.trace = trace

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "TraceArrivalProcess":
        """Load a replayable process from a JSONL trace file."""
        return cls(load_trace_jsonl(path))

    def generate(self, duration: float):
        """Yield the recorded batches arriving in [0, duration)."""
        if duration <= 0:
            raise WorkloadError("duration must be positive")
        for batch in self.trace:
            if batch.time >= duration:
                return
            yield batch

    def run(
        self,
        env: Environment,
        on_batch: Callable[[ArrivalBatch], None],
        until: Optional[float] = None,
    ):
        """Process: deliver recorded batches at their recorded times."""
        for batch in self.trace:
            if until is not None and batch.time >= until:
                return
            delay = batch.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            on_batch(batch)

    def expected_load_rate(self) -> float:
        """Mean job-size units per TU over the recorded span."""
        span = self.trace.duration
        if span <= 0:
            return 0.0
        total = sum(b.total_size for b in self.trace)
        return total / span


def record_trace(process: BatchArrivalProcess, duration: float) -> ArrivalTrace:
    """Generate and freeze all arrivals in [0, duration)."""
    return ArrivalTrace(tuple(process.generate(duration)))


def save_trace_jsonl(
    path: Union[str, Path], trace: "ArrivalTrace | Iterable[ArrivalBatch]"
) -> int:
    """Write a trace as JSONL (one batch object per line); returns rows."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for batch in trace:
            fh.write(
                json.dumps({"time": batch.time, "sizes": list(batch.sizes)})
                + "\n"
            )
            count += 1
    return count


def load_trace_jsonl(path: Union[str, Path]) -> ArrivalTrace:
    """Read a JSONL trace file, validating every line.

    Malformed lines raise :class:`WorkloadError` naming the file and line
    number; ordering is validated by :class:`ArrivalTrace` itself.
    """
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"arrival trace not found: {path}")
    batches: list[ArrivalBatch] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if (
                not isinstance(obj, dict)
                or "time" not in obj
                or "sizes" not in obj
            ):
                raise WorkloadError(
                    f"{path}:{lineno}: expected an object with "
                    f"'time' and 'sizes'"
                )
            try:
                time = float(obj["time"])
                sizes = tuple(float(s) for s in obj["sizes"])
            except (TypeError, ValueError) as exc:
                raise WorkloadError(
                    f"{path}:{lineno}: non-numeric time or sizes"
                ) from exc
            if not sizes or any(s <= 0 for s in sizes):
                raise WorkloadError(
                    f"{path}:{lineno}: batches need >= 1 positive size"
                )
            batches.append(ArrivalBatch(time=time, sizes=sizes))
    return ArrivalTrace(tuple(batches))


def replay_trace(
    env: Environment,
    trace: ArrivalTrace,
    on_batch: Callable[[ArrivalBatch], None],
):
    """Process: deliver a recorded trace at its original timestamps."""
    for batch in trace:
        delay = batch.time - env.now
        if delay < 0:
            raise WorkloadError(
                f"batch at t={batch.time} is in the past (now={env.now})"
            )
        if delay > 0:
            yield env.timeout(delay)
        on_batch(batch)
