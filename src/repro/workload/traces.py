"""Arrival-trace record and replay.

Recording a trace and replaying it against different scheduler policies
gives a *paired* comparison (identical arrivals), tightening the error
bars beyond the common-random-number effect the seeded streams already
provide.  Traces serialize to plain dicts for JSON fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import WorkloadError
from repro.desim.engine import Environment
from repro.workload.arrivals import ArrivalBatch, BatchArrivalProcess

__all__ = ["ArrivalTrace", "record_trace", "replay_trace"]


@dataclass(frozen=True)
class ArrivalTrace:
    """An immutable, time-ordered sequence of arrival batches."""

    batches: tuple[ArrivalBatch, ...]

    def __post_init__(self) -> None:
        last = -1.0
        for batch in self.batches:
            if batch.time < last:
                raise WorkloadError("trace batches are not time-ordered")
            last = batch.time

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self):
        return iter(self.batches)

    @property
    def n_jobs(self) -> int:
        return sum(b.n_jobs for b in self.batches)

    @property
    def duration(self) -> float:
        return self.batches[-1].time if self.batches else 0.0

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-friendly batch dicts."""
        return [
            {"time": b.time, "sizes": list(b.sizes)} for b in self.batches
        ]

    @classmethod
    def from_dicts(cls, rows: Iterable[dict[str, Any]]) -> "ArrivalTrace":
        return cls(
            tuple(
                ArrivalBatch(time=float(r["time"]), sizes=tuple(float(s) for s in r["sizes"]))
                for r in rows
            )
        )


def record_trace(process: BatchArrivalProcess, duration: float) -> ArrivalTrace:
    """Generate and freeze all arrivals in [0, duration)."""
    return ArrivalTrace(tuple(process.generate(duration)))


def replay_trace(
    env: Environment,
    trace: ArrivalTrace,
    on_batch: Callable[[ArrivalBatch], None],
):
    """Process: deliver a recorded trace at its original timestamps."""
    for batch in trace:
        delay = batch.time - env.now
        if delay < 0:
            raise WorkloadError(
                f"batch at t={batch.time} is in the past (now={env.now})"
            )
        if delay > 0:
            yield env.timeout(delay)
        on_batch(batch)
