"""Job construction for arrival batches."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.apps.base import ApplicationModel
from repro.scheduler.tasks import Job
from repro.workflows.compiled import CompiledWorkflow
from repro.workload.arrivals import ArrivalBatch

__all__ = ["JobFactory"]


class JobFactory:
    """Builds :class:`~repro.scheduler.tasks.Job` objects for one app.

    When a compiled *workflow* is supplied every job carries it, so the
    scheduler runs the DAG natively; without one, jobs keep the legacy
    app-chain shape.
    """

    def __init__(
        self,
        app: ApplicationModel,
        name_prefix: str = "",
        size_unit_gb: float = 1.0,
        workflow: Optional[CompiledWorkflow] = None,
    ) -> None:
        if size_unit_gb <= 0:
            raise ValueError("size_unit_gb must be positive")
        self.app = app
        self.name_prefix = name_prefix or app.name
        self.size_unit_gb = size_unit_gb
        self.workflow = workflow
        self._counter = 0

    @property
    def created(self) -> int:
        return self._counter

    def make_job(self, size: float, submit_time: float) -> Job:
        """One job of *size* units submitted at *submit_time*."""
        self._counter += 1
        return Job(
            app=self.app,
            size=size,
            submit_time=submit_time,
            name=f"{self.name_prefix}-{self._counter:05d}",
            input_gb=size * self.size_unit_gb,
            workflow=self.workflow,
        )

    def from_batch(self, batch: ArrivalBatch) -> list[Job]:
        """One job per size in the batch, submitted at the batch time."""
        return [self.make_job(size, batch.time) for size in batch.sizes]

    def from_sizes(
        self, sizes: Iterable[float], submit_time: float
    ) -> list[Job]:
        """One job per size, all at *submit_time*."""
        return [self.make_job(s, submit_time) for s in sizes]
