"""``repro.service``: the multi-tenant service plane.

The paper's prototype is a long-running CherryPy service that many users
submit analyses to over HTTP RPC (Section III-B); the in-process
:class:`~repro.core.platform.SCANPlatform` facade reproduces the verbs but
not the *service*.  This package adds the missing front door, following
the nl-kat-mula scheduler blueprint (SNIPPETS.md snippets 2-3): bounded
per-tenant priority queues maintained in memory with a thread-safe
push/pop API, pluggable priority-calculation strategies, admission control
at capacity, and an append-friendly persistent store from which the
in-memory queues are rebuilt after a restart -- no accepted job is ever
lost.

Layers
------
:mod:`repro.service.queue`
    ``JobQueue`` -- per-tenant bounded priority queues, the
    ``PRIORITY_STRATEGIES`` registry, admission control.
:mod:`repro.service.store`
    ``QueueStore`` backends (``memory``, ``jsonl``, ``sqlite``) in the
    ``QUEUE_STORES`` registry; write-ahead records, crash-tolerant replay.
:mod:`repro.service.plane`
    ``ServicePlane`` -- pumps popped jobs into a ``SCANPlatform``, makes
    the circuit breaker and dead-letter queue per-tenant, publishes
    lifecycle events on the bus, labels every metric with its tenant.
:mod:`repro.service.config`
    ``ServiceConfig`` -- the deployment knobs, JSON round-trippable.

The HTTP surface lives in :mod:`repro.core.rpc` (tenant-scoped endpoints)
and the CLI entry point is ``scan-sim serve --service``.
"""

from repro.service.config import ServiceConfig
from repro.service.queue import (
    PRIORITY_STRATEGIES,
    AdmissionDecision,
    JobQueue,
    QueuedJob,
    ServiceJobState,
)
from repro.service.store import QUEUE_STORES, QueueStore, make_store
from repro.service.plane import ServicePlane

__all__ = [
    "ServiceConfig",
    "PRIORITY_STRATEGIES",
    "AdmissionDecision",
    "JobQueue",
    "QueuedJob",
    "ServiceJobState",
    "QUEUE_STORES",
    "QueueStore",
    "make_store",
    "ServicePlane",
]
