"""The ServicePlane: queue + store + platform, wired into one service.

This is the orchestrator of the persistent scheduler service:

- **ingest**: :meth:`submit` runs admission control (per-tenant breaker,
  then the bounded priority queue) and write-aheads every accepted job to
  the :class:`~repro.service.store.QueueStore`;
- **pump**: :meth:`pump` pops jobs in priority order and submits them to
  the wrapped :class:`~repro.core.platform.SCANPlatform` as analysis
  requests; :meth:`drain` pumps, advances the simulation, and
  :meth:`reconcile`\\ s completions back into the ledger;
- **recovery**: construction replays the store -- every job the lost
  process accepted is either remembered as finished or re-queued at its
  original priority (leased-at-crash jobs included), mula-style;
- **isolation**: the PR-1 circuit breaker and dead-letter queue become
  *per-tenant* here -- one tenant's failing jobs open that tenant's
  breaker (503 on submit) and quarantine in that tenant's dead-letter
  queue without touching anyone else's traffic;
- **observability**: every queue metric carries a ``tenant`` label on the
  PR-2 registry, and lifecycle transitions republish on the PR-4 bus
  (``ServiceJobAccepted`` / ``Rejected`` / ``Popped`` / ``Finished``).
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.bus import (
    EventBus,
    ServiceJobAccepted,
    ServiceJobFinished,
    ServiceJobPopped,
    ServiceJobRejected,
)
from repro.core.errors import SCANError
from repro.scheduler.resilience import CircuitBreaker, DeadLetterQueue
from repro.service.config import ServiceConfig
from repro.service.queue import AdmissionDecision, JobQueue, QueuedJob
from repro.service.store import QueueStore, RecoveredState, make_store
from repro.telemetry.metrics import (
    POP_LATENCY_BUCKETS_S,
    MetricsRegistry,
)

__all__ = ["ServicePlane", "PumpedJob"]


class PumpedJob:
    """One popped job bound to its live analysis request."""

    __slots__ = ("job", "request")

    def __init__(self, job: QueuedJob, request: Any) -> None:
        self.job = job
        self.request = request


class ServicePlane:
    """A persistent, multi-tenant scheduler service over one platform.

    ``platform`` may be ``None`` for queue-only deployments (pure-ingest
    benchmarks, store soak tests); :meth:`pump`/:meth:`drain` then raise.

    The wall clock is injectable so recovery tests can freeze time; the
    simulation clock (bus-event timestamps) always comes from the
    platform's environment, or 0.0 without a platform.
    """

    def __init__(
        self,
        platform: Optional[Any] = None,
        config: Optional[ServiceConfig] = None,
        store: "QueueStore | str | None" = None,
        metrics: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = (config or ServiceConfig()).validate()
        self.platform = platform
        self._clock = clock if clock is not None else time.monotonic
        if store is None:
            store = self.config.store
        self.store: QueueStore = (
            make_store(store) if isinstance(store, str) else store
        )
        self.bus = bus if bus is not None else (
            platform.bus if platform is not None else EventBus()
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue = JobQueue(
            capacity=self.config.tenant_capacity,
            strategy=self.config.priority_strategy,
            admission=self.config.admission,
            clock=self._clock,
        )
        # Per-tenant resilience: the PR-1 machinery, one instance each.
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._dead_letters: Dict[str, DeadLetterQueue] = {}
        self._uid_counter = itertools.count(1)
        #: Leased jobs currently bound to live analysis requests.
        self._in_flight: Dict[str, PumpedJob] = {}
        #: uid -> outcome, local view of the resolved ledger.
        self.finished: Dict[str, str] = {}

        # Metric families (tenant-labelled from day one).
        self._m_depth = self.metrics.gauge(
            "service_queue_depth", "queued jobs per tenant",
            labelnames=("tenant",),
        )
        self._m_accepted = self.metrics.counter(
            "service_jobs_accepted_total", "jobs admitted per tenant",
            labelnames=("tenant",),
        )
        self._m_rejected = self.metrics.counter(
            "service_admission_rejected_total",
            "admission rejections per tenant and reason",
            labelnames=("tenant", "reason"),
        )
        self._m_pop_latency = self.metrics.histogram(
            "service_pop_latency_seconds",
            "wall time a job waited in its queue before being popped",
            buckets=POP_LATENCY_BUCKETS_S,
            labelnames=("tenant",),
        )
        self._m_finished = self.metrics.counter(
            "service_jobs_finished_total",
            "jobs resolved per tenant and outcome",
            labelnames=("tenant", "outcome"),
        )
        self.recovered: RecoveredState = self._recover()

    # -- recovery ------------------------------------------------------------
    def _recover(self) -> RecoveredState:
        """Rebuild the in-memory queues from the persistent store."""
        state = self.store.load()
        # Advance the auto-uid counter past every recovered uid's numeric
        # suffix: a fresh boot restarts the counter at 1, and without this
        # a post-restart submit() without an explicit uid would mint a uid
        # the ledger already knows and bounce as a spurious duplicate.
        max_suffix = 0
        for uid in itertools.chain(
            (job.uid for job in state.queued), state.finished, state.shed
        ):
            head, _, tail = uid.rpartition("-")
            if head and tail.isdigit():
                max_suffix = max(max_suffix, int(tail))
        self._uid_counter = itertools.count(max_suffix + 1)
        for job in state.queued:
            decision = self.queue.push(job, preserve_seq=True)
            if not decision.accepted:
                # A replayed job can only bounce as a duplicate of another
                # replayed record; losing it silently would violate the
                # no-accepted-job-lost contract.
                raise SCANError(
                    f"recovery could not re-queue job {job.uid!r}: "
                    f"{decision.reason}"
                )
            self._m_accepted.inc(tenant=job.tenant)
            self._m_depth.set(
                self.queue.depth(job.tenant), tenant=job.tenant
            )
        for uid, outcome in state.finished.items():
            self.queue.remember_finished(uid, outcome)
        self.finished.update(state.finished)
        return state

    # -- clocks --------------------------------------------------------------
    @property
    def _sim_now(self) -> float:
        return self.platform.env.now if self.platform is not None else 0.0

    # -- per-tenant resilience ----------------------------------------------
    def breaker(self, tenant: str) -> CircuitBreaker:
        """The tenant's circuit breaker (created on first use)."""
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = self._breakers[tenant] = CircuitBreaker(
                threshold=self.config.breaker_threshold,
                cooldown_tu=self.config.breaker_cooldown_s,
            )
        return breaker

    def dead_letters(self, tenant: str) -> DeadLetterQueue:
        """The tenant's dead-letter queue (created on first use)."""
        dlq = self._dead_letters.get(tenant)
        if dlq is None:
            dlq = self._dead_letters[tenant] = DeadLetterQueue()
        return dlq

    # -- ingest --------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        name: str,
        size_gb: float,
        data_format: str = "fastq",
        weight: float = 1.0,
        deadline: Optional[float] = None,
        uid: Optional[str] = None,
    ) -> Tuple[AdmissionDecision, Optional[QueuedJob]]:
        """Admit one job for *tenant*; returns (decision, queued job).

        The write-ahead ordering is deliberate: the push (and any shed
        victim's exit) is persisted under the queue lock *before* the job
        becomes visible to poppers, so a worker's pop/finish ledger
        record can never precede the push record it resolves -- replay
        would otherwise resurrect finished work.  The newcomer's push is
        written before the victim's shed, so a crash between the two
        leaves both in the ledger (replay tolerates the overflow) rather
        than dropping an acknowledged job for a never-persisted newcomer.
        """
        if not tenant or "/" in tenant:
            raise SCANError(f"bad tenant id {tenant!r}")
        if size_gb <= 0:
            raise SCANError(f"size_gb must be positive, got {size_gb}")
        if not self.breaker(tenant).allow(self._clock()):
            decision = AdmissionDecision(False, AdmissionDecision.SUSPENDED)
            self._note_rejection(tenant, uid or name, decision.reason)
            return decision, None
        job = QueuedJob(
            uid=uid if uid is not None else
            f"{tenant}-{next(self._uid_counter):08d}",
            tenant=tenant,
            name=name,
            size_gb=size_gb,
            data_format=data_format,
            weight=weight,
            deadline=deadline,
        )
        def write_ahead(admitted: AdmissionDecision) -> None:
            # Runs under the queue lock, before the job is poppable; the
            # queue stamped seq/submitted_at, persist that exact record.
            self.store.record_push(admitted.job)
            if admitted.shed is not None:
                # The victim of a shed-lowest admission leaves the ledger.
                self.store.record_shed(admitted.shed)

        decision = self.queue.push(job, on_admit=write_ahead)
        if not decision.accepted:
            self._note_rejection(tenant, job.uid, decision.reason)
            return decision, None
        if decision.shed is not None:
            self._note_rejection(
                decision.shed.tenant,
                decision.shed.uid,
                AdmissionDecision.SHED,
            )
        stamped = decision.job if decision.job is not None else job
        depth = self.queue.depth(tenant)
        self._m_accepted.inc(tenant=tenant)
        self._m_depth.set(depth, tenant=tenant)
        if ServiceJobAccepted in self.bus:
            self.bus.publish(ServiceJobAccepted(
                time=self._sim_now, tenant=tenant, uid=stamped.uid,
                size_gb=size_gb, depth=depth,
            ))
        return decision, stamped

    def _note_rejection(self, tenant: str, uid: str, reason: str) -> None:
        self._m_rejected.inc(tenant=tenant, reason=reason)
        self._m_depth.set(self.queue.depth(tenant), tenant=tenant)
        if ServiceJobRejected in self.bus:
            self.bus.publish(ServiceJobRejected(
                time=self._sim_now, tenant=tenant, uid=uid, reason=reason,
            ))

    # -- pop / pump ----------------------------------------------------------
    def pop(
        self,
        tenant: Optional[str] = None,
        timeout: Optional[float] = 0.0,
    ) -> Optional[QueuedJob]:
        """Lease the next job (external-worker API; also used by pump)."""
        job = self.queue.pop(tenant=tenant, timeout=timeout)
        if job is None:
            return None
        self.store.record_pop(job)
        wait_s = max(self._clock() - job.submitted_at, 0.0)
        self._m_pop_latency.observe(wait_s, tenant=job.tenant)
        self._m_depth.set(self.queue.depth(job.tenant), tenant=job.tenant)
        if ServiceJobPopped in self.bus:
            self.bus.publish(ServiceJobPopped(
                time=self._sim_now, tenant=job.tenant, uid=job.uid,
                wait_s=wait_s,
            ))
        return job

    def finish(self, uid: str, outcome: str = "completed") -> QueuedJob:
        """Resolve a leased job (external-worker API)."""
        job = self.queue.finish(uid, outcome)
        self.store.record_finish(job, outcome)
        self.finished[uid] = outcome
        self._in_flight.pop(uid, None)
        self._m_finished.inc(tenant=job.tenant, outcome=outcome)
        now = self._clock()
        if outcome == "completed":
            self.breaker(job.tenant).record_success(now)
        else:
            self.breaker(job.tenant).record_failure(now)
        if ServiceJobFinished in self.bus:
            self.bus.publish(ServiceJobFinished(
                time=self._sim_now, tenant=job.tenant, uid=uid,
                outcome=outcome,
            ))
        return job

    def pump(
        self, max_jobs: Optional[int] = None, tenant: Optional[str] = None
    ) -> List[PumpedJob]:
        """Pop queued jobs in priority order into the platform scheduler.

        Submission order is exactly pop order, so a single-tenant FIFO
        deployment replays the in-process ``submit_analysis`` call
        sequence verbatim -- the golden equivalence test rides on this.
        """
        if self.platform is None:
            raise SCANError("this service plane has no platform to pump into")
        from repro.genomics.datasets import DataFormat, DatasetDescriptor

        pumped: List[PumpedJob] = []
        while max_jobs is None or len(pumped) < max_jobs:
            job = self.pop(tenant=tenant)
            if job is None:
                break
            try:
                fmt = DataFormat(job.data_format)
            except ValueError:
                self.dead_letters(job.tenant).push(
                    job, f"unknown format {job.data_format!r}", self._sim_now
                )
                self.finish(job.uid, "failed")
                continue
            dataset = DatasetDescriptor.from_size(job.name, fmt, job.size_gb)
            request = self.platform.submit_analysis(dataset)
            entry = PumpedJob(job, request)
            self._in_flight[job.uid] = entry
            pumped.append(entry)
        return pumped

    def reconcile(self) -> Dict[str, str]:
        """Fold completed/failed analysis requests back into the ledger.

        Call after advancing the simulation.  A completed request
        resolves its job as ``completed``; a request whose pipeline
        dead-lettered resolves as ``failed``: the job lands in its
        tenant's dead-letter queue (or re-queues while it has service
        attempts left) and the tenant's breaker records the failure.
        Requests still making progress stay leased.
        """
        outcomes: Dict[str, str] = {}
        for uid, entry in list(self._in_flight.items()):
            request = entry.request
            if request.is_complete:
                self.finish(uid, "completed")
                outcomes[uid] = "completed"
            elif any(j.is_failed for j in request.jobs):
                job = entry.job
                if job.attempts < self.config.max_job_attempts:
                    self._in_flight.pop(uid, None)
                    self.store.record_finish(job, "requeued")
                    # Write-ahead like submit(): the re-push record lands
                    # before the job is poppable again.
                    requeued = self.queue.requeue(
                        uid,
                        on_admit=lambda d: self.store.record_push(d.job),
                    )
                    self._m_depth.set(
                        self.queue.depth(job.tenant), tenant=job.tenant
                    )
                    self._m_finished.inc(
                        tenant=job.tenant, outcome="requeued"
                    )
                    self.breaker(job.tenant).record_failure(self._clock())
                    if ServiceJobFinished in self.bus:
                        self.bus.publish(ServiceJobFinished(
                            time=self._sim_now, tenant=job.tenant,
                            uid=uid, outcome="requeued",
                        ))
                    outcomes[uid] = "requeued"
                else:
                    self.dead_letters(job.tenant).push(
                        job, "pipeline dead-lettered", self._sim_now
                    )
                    self.finish(uid, "failed")
                    outcomes[uid] = "failed"
        return outcomes

    def drain(
        self,
        max_jobs: Optional[int] = None,
        tenant: Optional[str] = None,
        until: Optional[float] = None,
        limit_tu: float = 1e7,
    ) -> Dict[str, str]:
        """Pump, advance the simulation, reconcile; returns uid->outcome.

        With an explicit *until* the simulation advances to that time;
        otherwise it steps only until every pumped request has settled
        (completed or dead-lettered), bounded by *limit_tu* simulated
        time units -- the platform's calendar never fully quiesces
        (scaling/monitoring processes run forever), so an unbounded run
        would not return.
        """
        if self.platform is None:
            raise SCANError("this service plane has no platform to drain into")
        self.pump(max_jobs=max_jobs, tenant=tenant)
        if until is not None:
            self.platform.run(until=until)
        else:
            self._settle(limit_tu)
        return self.reconcile()

    def _settle(self, limit_tu: float) -> None:
        """Step the simulation until every in-flight request resolves."""
        env = self.platform.env
        deadline = env.now + limit_tu

        def pending() -> bool:
            return any(
                not e.request.is_complete
                and not any(j.is_failed for j in e.request.jobs)
                for e in self._in_flight.values()
            )

        while pending():
            nxt = env.peek()
            if nxt == float("inf") or nxt > deadline:
                break
            # Settlement only changes at event boundaries; checking the
            # in-flight set every event would be quadratic, so burst.
            for _ in range(32):
                if env.peek() == float("inf"):
                    break
                env.step()
        # Zero-width advance: finalizes completed requests' bookkeeping
        # (completed_at stamps, merged outputs) without moving the clock.
        self.platform.run(until=env.now)

    # -- introspection -------------------------------------------------------
    def tenants(self) -> List[str]:
        """Every tenant seen by queue, breakers, or dead letters."""
        names = set(self.queue.tenants())
        names.update(self._breakers)
        names.update(self._dead_letters)
        return sorted(names)

    def tenant_status(self, tenant: str) -> Dict[str, Any]:
        """One tenant's live queue/breaker/dead-letter picture."""
        now = self._clock()
        return {
            "tenant": tenant,
            "depth": self.queue.depth(tenant),
            "capacity": self.config.tenant_capacity,
            "breaker": self.breaker(tenant).state(now).value,
            "dead_letters": len(self.dead_letters(tenant)),
        }

    def state_summary(self) -> Dict[str, Any]:
        """Global accounting: the recovery invariant's observable."""
        stats = self.queue.stats()
        outcome_counts: Dict[str, int] = {}
        for outcome in self.finished.values():
            outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1
        return {
            "tenants": self.tenants(),
            "queued": stats["queued"],
            "leased": stats["leased"],
            "in_flight": len(self._in_flight),
            "finished": outcome_counts,
            "accepted": stats["accepted"],
            "rejected": stats["rejected"],
            "shed": stats["shed"],
            "dead_letters": {
                tenant: len(dlq)
                for tenant, dlq in sorted(self._dead_letters.items())
                if len(dlq)
            },
            "recovered_queued": len(self.recovered.queued),
            "recovered_interrupted": len(self.recovered.interrupted),
        }

    def metrics_text(self) -> str:
        """The tenant-labelled Prometheus exposition."""
        return self.metrics.expose()

    def close(self) -> None:
        self.store.close()
