"""Per-tenant bounded priority queues with pluggable priority strategies.

The mula proposal's core requirements, transplanted onto SCAN:

- a *finite (configurable) number of items* per tenant queue;
- *different calculation strategies* for determining a job's priority,
  easily extended -- here a :class:`~repro.core.plugins.Registry` exactly
  like the allocation/scaling policy registries;
- a thread-safe push/pop API many HTTP handler threads and worker pumps
  can hit concurrently;
- state that can be *recreated from persistent storage* -- every queued
  job round-trips through :meth:`QueuedJob.to_dict`, and pushes accept a
  pre-assigned sequence number so a rebuilt queue pops in the exact order
  the lost process would have.

Priorities are *scores*: totally ordered tuples where **smaller pops
first**.  Every built-in strategy ends its tuple with the job's global
submission sequence number, so ties break FIFO and the order is total --
the Hypothesis property suite holds any strategy to that contract.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, replace
from heapq import heappop, heappush
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ConfigurationError, SCANError
from repro.core.plugins import Registry

__all__ = [
    "ServiceJobState",
    "QueuedJob",
    "PriorityStrategy",
    "PRIORITY_STRATEGIES",
    "AdmissionDecision",
    "TenantQueue",
    "JobQueue",
]


class ServiceJobState(str, enum.Enum):
    """Service-level lifecycle of one accepted job."""

    #: Accepted and waiting in its tenant's queue.
    QUEUED = "queued"
    #: Popped by a worker/pump; execution in flight.
    LEASED = "leased"
    #: Finished successfully (simulation request completed).
    COMPLETED = "completed"
    #: Finished unsuccessfully (dead-lettered at the service level).
    FAILED = "failed"


@dataclass(frozen=True)
class QueuedJob:
    """One tenant-submitted analysis job, as the queue sees it.

    ``seq`` is the global admission sequence number: strategies use it as
    the final tie-break, and the store persists it so a rebuilt queue
    reproduces the lost process's pop order exactly.  ``submitted_at`` is
    a wall-clock reading from the queue's injectable clock (pop latency =
    pop time - submitted_at).
    """

    uid: str
    tenant: str
    name: str
    size_gb: float
    data_format: str = "fastq"
    #: User-supplied precedence weight (bigger = sooner under ``weighted``).
    weight: float = 1.0
    #: Optional wall-clock deadline (smaller = sooner under ``deadline``).
    deadline: Optional[float] = None
    submitted_at: float = 0.0
    seq: int = 0
    #: Service-level execution attempts already consumed.
    attempts: int = 0

    def to_dict(self) -> dict[str, Any]:
        """A plain JSON-serializable record (store wire format)."""
        return {
            "uid": self.uid,
            "tenant": self.tenant,
            "name": self.name,
            "size_gb": self.size_gb,
            "data_format": self.data_format,
            "weight": self.weight,
            "deadline": self.deadline,
            "submitted_at": self.submitted_at,
            "seq": self.seq,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueuedJob":
        """Rebuild a job from :meth:`to_dict` output."""
        try:
            return cls(
                uid=str(data["uid"]),
                tenant=str(data["tenant"]),
                name=str(data["name"]),
                size_gb=float(data["size_gb"]),
                data_format=str(data.get("data_format", "fastq")),
                weight=float(data.get("weight", 1.0)),
                deadline=(
                    None if data.get("deadline") is None
                    else float(data["deadline"])
                ),
                submitted_at=float(data.get("submitted_at", 0.0)),
                seq=int(data.get("seq", 0)),
                attempts=int(data.get("attempts", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SCANError(f"malformed queued-job record: {exc}") from exc


# -- priority strategies ------------------------------------------------------
#: Score tuples; smaller pops first.
Score = Tuple[Any, ...]


class PriorityStrategy:
    """Base priority calculation: score a job; smaller scores pop first.

    Subclasses override :meth:`score` and MUST return tuples that are
    mutually comparable for any pair of jobs, with a strict total order
    (the built-ins guarantee this by ending every tuple with ``job.seq``,
    which is unique).
    """

    name = "base"

    def score(self, job: QueuedJob) -> Score:
        raise NotImplementedError


#: Registry of priority-calculation strategies (mula: "should be able to
#: implement different calculation strategies ... easily extended").
PRIORITY_STRATEGIES: "Registry[PriorityStrategy]" = Registry("priority")


@PRIORITY_STRATEGIES.register("fifo")
class FifoStrategy(PriorityStrategy):
    """Strict admission order (the seed's implicit behaviour)."""

    name = "fifo"

    def score(self, job: QueuedJob) -> Score:
        return (job.seq,)


@PRIORITY_STRATEGIES.register("smallest_first")
class SmallestFirstStrategy(PriorityStrategy):
    """Shortest-job-first on input size; FIFO among equals."""

    name = "smallest_first"

    def score(self, job: QueuedJob) -> Score:
        return (job.size_gb, job.seq)


@PRIORITY_STRATEGIES.register("largest_first")
class LargestFirstStrategy(PriorityStrategy):
    """Biggest input first (drain the heavy tail while the tier is cold)."""

    name = "largest_first"

    def score(self, job: QueuedJob) -> Score:
        return (-job.size_gb, job.seq)


@PRIORITY_STRATEGIES.register("weighted")
class WeightedStrategy(PriorityStrategy):
    """User-supplied precedence: higher weight pops sooner.

    The mula proposal's motivating case -- "job's created by the user get
    precedence over jobs that are created by the internal rescheduling
    processes" -- maps onto weights (e.g. interactive 10, batch 1).
    """

    name = "weighted"

    def score(self, job: QueuedJob) -> Score:
        return (-job.weight, job.seq)


@PRIORITY_STRATEGIES.register("deadline")
class DeadlineStrategy(PriorityStrategy):
    """Earliest deadline first; deadline-less jobs queue behind, FIFO."""

    name = "deadline"

    def score(self, job: QueuedJob) -> Score:
        deadline = job.deadline if job.deadline is not None else float("inf")
        return (deadline, job.seq)


def make_strategy(name: "str | PriorityStrategy") -> PriorityStrategy:
    """Resolve a strategy by registry name (instances pass through)."""
    if isinstance(name, PriorityStrategy):
        return name
    return PRIORITY_STRATEGIES.create(name)


# -- admission ----------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one push: accepted, or rejected with a stable reason.

    Reasons are part of the RPC error contract:

    - ``queue_full``       -> 429 (tenant at capacity, nothing sheddable)
    - ``shed``             -> the *victim* of a shed-lowest admission
    - ``duplicate``        -> 409 (uid already known to this queue)
    - ``tenant_suspended`` -> 503 (the tenant's circuit breaker is open)
    """

    accepted: bool
    reason: str = "accepted"
    #: On a shed-mode admission, the job evicted to make room.
    shed: Optional[QueuedJob] = None
    #: On acceptance, the job as queued (seq/submitted_at stamped).
    job: Optional[QueuedJob] = None

    ACCEPTED = "accepted"
    QUEUE_FULL = "queue_full"
    SHED = "shed"
    DUPLICATE = "duplicate"
    SUSPENDED = "tenant_suspended"


class TenantQueue:
    """One tenant's bounded in-memory priority heap (not thread-safe;
    :class:`JobQueue` holds the lock)."""

    __slots__ = ("tenant", "capacity", "_heap", "_uids")

    def __init__(self, tenant: str, capacity: int) -> None:
        self.tenant = tenant
        self.capacity = capacity
        self._heap: List[Tuple[Score, QueuedJob]] = []
        self._uids: Dict[str, QueuedJob] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, uid: str) -> bool:
        return uid in self._uids

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def push(self, score: Score, job: QueuedJob) -> None:
        heappush(self._heap, (score, job))
        self._uids[job.uid] = job

    def pop(self) -> QueuedJob:
        _score, job = heappop(self._heap)
        del self._uids[job.uid]
        return job

    def peek_score(self) -> Optional[Score]:
        return self._heap[0][0] if self._heap else None

    def evict_worst(self) -> Tuple[Score, QueuedJob]:
        """Remove and return the entry that would pop LAST."""
        worst_i = max(range(len(self._heap)), key=lambda i: self._heap[i][0])
        score, job = self._heap.pop(worst_i)
        if self._heap and worst_i < len(self._heap):
            # Restore the heap invariant after the positional removal.
            self._heap.sort()
        del self._uids[job.uid]
        return score, job

    def jobs_in_order(self) -> List[QueuedJob]:
        """Queued jobs in pop order (snapshot; does not drain)."""
        return [job for _score, job in sorted(self._heap)]


class JobQueue:
    """The multi-tenant front queue: thread-safe push/pop + admission.

    One lock (a :class:`threading.Condition`) guards every tenant heap --
    handler threads push, pump threads pop (optionally blocking), and the
    accounting invariant

        ``accepted == queued + leased + finished``

    holds at every quiescent point, which is exactly what the crash
    recovery test asserts across a kill/rebuild cycle.
    """

    def __init__(
        self,
        capacity: int = 1024,
        strategy: "str | PriorityStrategy" = "fifo",
        admission: str = "reject",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if admission not in ("reject", "shed_lowest"):
            raise ConfigurationError(
                f"unknown admission policy {admission!r}; "
                "known: reject, shed_lowest"
            )
        self.capacity = capacity
        self.strategy = make_strategy(strategy)
        self.admission = admission
        self._clock = clock if clock is not None else _default_clock
        self._cond = threading.Condition()
        self._tenants: Dict[str, TenantQueue] = {}
        #: uid -> tenant for every *queued* job: uids key the persistent
        #: ledger, so they must be unique across ALL tenants, not just
        #: within one tenant's queue.
        self._queued_uids: Dict[str, str] = {}
        self._leased: Dict[str, QueuedJob] = {}
        self._finished: Dict[str, str] = {}
        self._seq = itertools.count(1)
        # Counters (read under the lock via stats()).
        self.accepted_count = 0
        self.rejected_count = 0
        self.shed_count = 0

    # -- push ----------------------------------------------------------------
    def push(
        self,
        job: QueuedJob,
        *,
        preserve_seq: bool = False,
        on_admit: Optional[Callable[[AdmissionDecision], None]] = None,
    ) -> AdmissionDecision:
        """Admit *job* into its tenant's queue (or reject/shed).

        ``preserve_seq`` is the store-replay / requeue path: the job
        keeps its persisted sequence number (and ``submitted_at``) so the
        rebuilt heap pops in the original order.  Replayed jobs also
        bypass the capacity bound -- they were already admitted once, and
        a crash that left ``capacity`` queued plus more leased must not
        lose the overflow (the queue drains back under the bound; only
        fresh submissions are capacity-checked).  Fresh submissions get
        the next global sequence number and the current clock reading.

        ``on_admit`` is the write-ahead hook: it runs under the queue
        lock with the final (seq-stamped) decision *before* the job is
        inserted, so a popper can never lease the job before the hook's
        ledger write lands -- a pop/finish record cannot precede its push
        record.  If the hook raises, the push is rolled back (the shed
        victim stays queued, the newcomer never becomes visible) and the
        exception propagates.
        """
        with self._cond:
            if not preserve_seq:
                job = replace(
                    job, seq=next(self._seq), submitted_at=self._clock()
                )
            else:
                # Keep the fresh-push counter ahead of every replayed seq.
                self._bump_seq_past(job.seq)
            tq = self._tenants.get(job.tenant)
            if tq is None:
                tq = self._tenants[job.tenant] = TenantQueue(
                    job.tenant, self.capacity
                )
            if (
                job.uid in self._queued_uids
                or job.uid in self._leased
                or job.uid in self._finished
            ):
                self.rejected_count += 1
                return AdmissionDecision(False, AdmissionDecision.DUPLICATE)
            score = self.strategy.score(job)
            shed_job: Optional[QueuedJob] = None
            shed_score: Optional[Score] = None
            if tq.full and not preserve_seq:
                if self.admission == "reject":
                    self.rejected_count += 1
                    return AdmissionDecision(
                        False, AdmissionDecision.QUEUE_FULL
                    )
                worst_score, worst = tq.evict_worst()
                if score >= worst_score:
                    # The newcomer would itself be the worst: put the
                    # victim back and reject the newcomer instead.
                    tq.push(worst_score, worst)
                    self.rejected_count += 1
                    return AdmissionDecision(
                        False, AdmissionDecision.QUEUE_FULL
                    )
                shed_job, shed_score = worst, worst_score
            decision = AdmissionDecision(
                True, AdmissionDecision.ACCEPTED, shed_job, job
            )
            if on_admit is not None:
                try:
                    on_admit(decision)
                except BaseException:
                    if shed_job is not None:
                        tq.push(shed_score, shed_job)
                    raise
            if shed_job is not None:
                self.shed_count += 1
                del self._queued_uids[shed_job.uid]
            tq.push(score, job)
            self._queued_uids[job.uid] = job.tenant
            self.accepted_count += 1
            self._cond.notify()
            return decision

    def _bump_seq_past(self, seq: int) -> None:
        current = next(self._seq)
        self._seq = itertools.count(max(current, seq + 1))

    # -- pop -----------------------------------------------------------------
    def pop(
        self,
        tenant: Optional[str] = None,
        timeout: Optional[float] = 0.0,
    ) -> Optional[QueuedJob]:
        """Lease the best-scoring queued job (of *tenant*, or globally).

        ``timeout=0`` polls; ``timeout=None`` blocks until a job arrives;
        a positive timeout blocks at most that long.  Returns ``None``
        when nothing is available.  The popped job is *leased*, not gone:
        :meth:`finish` (or a crash-recovery replay) decides its fate.

        The blocking deadline is measured on the *real* clock, not the
        injectable one: :meth:`threading.Condition.wait` sleeps in real
        time, so a frozen/simulated clock (the recovery-test use) would
        otherwise make a positive timeout never expire.
        """
        with self._cond:
            if timeout == 0.0:
                return self._pop_locked(tenant)
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                job = self._pop_locked(tenant)
                if job is not None:
                    return job
                wait = None
                if deadline is not None:
                    wait = deadline - time.monotonic()
                    if wait <= 0:
                        return None
                self._cond.wait(wait)

    def _pop_locked(self, tenant: Optional[str]) -> Optional[QueuedJob]:
        if tenant is not None:
            tq = self._tenants.get(tenant)
            if tq is None or not len(tq):
                return None
        else:
            best: Optional[TenantQueue] = None
            best_score: Optional[Score] = None
            for name in sorted(self._tenants):
                candidate = self._tenants[name]
                score = candidate.peek_score()
                if score is None:
                    continue
                if best_score is None or score < best_score:
                    best, best_score = candidate, score
            if best is None:
                return None
            tq = best
        job = tq.pop()
        del self._queued_uids[job.uid]
        job = replace(job, attempts=job.attempts + 1)
        self._leased[job.uid] = job
        return job

    # -- lease resolution ----------------------------------------------------
    def finish(self, uid: str, outcome: str = "completed") -> QueuedJob:
        """Resolve a leased job (``completed`` / ``failed``)."""
        with self._cond:
            job = self._leased.pop(uid, None)
            if job is None:
                raise SCANError(f"no leased job with uid {uid!r}")
            self._finished[uid] = outcome
            return job

    def remember_finished(self, uid: str, outcome: str) -> None:
        """Seed the dedup set with an already-resolved uid (recovery path).

        A rebuilt queue must keep rejecting re-submissions of jobs the
        lost process completed, or a crash-replay client would duplicate
        work the ledger already acknowledged.
        """
        with self._cond:
            if uid not in self._finished:
                # Carry the lost process's accounting so the conservation
                # invariant (accepted == queued + leased + finished) holds
                # across the rebuild.
                self.accepted_count += 1
            self._finished[uid] = outcome

    def requeue(
        self,
        uid: str,
        on_admit: Optional[Callable[[AdmissionDecision], None]] = None,
    ) -> QueuedJob:
        """Return a leased job to its queue (retry path); keeps its seq."""
        with self._cond:
            job = self._leased.pop(uid, None)
            if job is None:
                raise SCANError(f"no leased job with uid {uid!r}")
        # push() re-takes the lock; accepted_count deliberately counts the
        # re-admission so accepted == pushes, matching the store's ledger.
        try:
            decision = self.push(job, preserve_seq=True, on_admit=on_admit)
        except BaseException:
            with self._cond:
                self._leased[uid] = job
            raise
        if not decision.accepted:  # pragma: no cover - capacity race only
            raise SCANError(
                f"cannot requeue {uid!r}: {decision.reason}"
            )
        return job

    # -- introspection -------------------------------------------------------
    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued jobs for one tenant (or all tenants)."""
        with self._cond:
            if tenant is not None:
                tq = self._tenants.get(tenant)
                return len(tq) if tq is not None else 0
            return sum(len(tq) for tq in self._tenants.values())

    def depths(self) -> Dict[str, int]:
        """Per-tenant queue depths (sorted by tenant)."""
        with self._cond:
            return {
                name: len(self._tenants[name])
                for name in sorted(self._tenants)
            }

    def tenants(self) -> List[str]:
        with self._cond:
            return sorted(self._tenants)

    def leased(self) -> List[QueuedJob]:
        """Currently-leased jobs (pop order not guaranteed)."""
        with self._cond:
            return sorted(self._leased.values(), key=lambda j: j.seq)

    def snapshot(
        self, tenant: str, limit: Optional[int] = None
    ) -> List[QueuedJob]:
        """One tenant's queued jobs in pop order (head of queue first)."""
        with self._cond:
            tq = self._tenants.get(tenant)
            if tq is None:
                return []
            jobs = tq.jobs_in_order()
        return jobs if limit is None else jobs[:limit]

    def stats(self) -> Dict[str, Any]:
        """Accounting snapshot; the conservation invariant lives here."""
        with self._cond:
            queued = sum(len(tq) for tq in self._tenants.values())
            return {
                "accepted": self.accepted_count,
                "rejected": self.rejected_count,
                "shed": self.shed_count,
                "queued": queued,
                "leased": len(self._leased),
                "finished": len(self._finished),
                "tenants": len(self._tenants),
            }

    def __iter__(self) -> Iterator[QueuedJob]:
        """Every queued job, tenants sorted, each in pop order."""
        with self._cond:
            snapshot = [
                job
                for name in sorted(self._tenants)
                for job in self._tenants[name].jobs_in_order()
            ]
        return iter(snapshot)


def _default_clock() -> float:
    return time.monotonic()
