"""Queue persistence: append-friendly stores the in-memory queues rebuild
from after a restart.

The mula requirement verbatim: "Recreate state of priority queue from
persistent storage, priority queue is maintained in memory."  Each store
is a write-ahead ledger of queue operations:

``push``    a job was accepted (full job record)
``pop``     a job was leased by a worker/pump
``finish``  a leased job resolved (``completed`` / ``failed``)
``shed``    an admission evicted a queued job to make room

:meth:`QueueStore.load` replays the ledger into a :class:`RecoveredState`:
jobs pushed-but-not-finished come back as *queued* -- including jobs that
were leased at the moment of the crash, which re-queue at their original
priority (pop without finish proves the work's fate is unknown, so it
must run again; at-least-once semantics, never lost).  Finished jobs are
remembered by uid so a replayed push cannot duplicate them.

Backends (``QUEUE_STORES`` registry):

``memory``  no persistence (tests, benchmarks).
``jsonl``   one JSON object per line, append-only; a torn final line
            (crash mid-write) is tolerated and dropped.
``sqlite``  one row per job, WAL journal; state transitions are updates.
"""

from __future__ import annotations

import io
import json
import os
import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.errors import ConfigurationError, SCANError
from repro.core.plugins import Registry
from repro.service.queue import QueuedJob

__all__ = [
    "RecoveredState",
    "QueueStore",
    "MemoryQueueStore",
    "JsonlQueueStore",
    "SqliteQueueStore",
    "QUEUE_STORES",
    "make_store",
]


@dataclass
class RecoveredState:
    """What a store replay yields: who is queued, who already finished."""

    #: Jobs to re-queue, in original admission (seq) order.  Includes jobs
    #: leased at crash time (popped, never finished).
    queued: List[QueuedJob] = field(default_factory=list)
    #: uid -> outcome for jobs that resolved before the crash.
    finished: Dict[str, str] = field(default_factory=dict)
    #: uids shed by admission control before the crash.
    shed: List[str] = field(default_factory=list)
    #: Of the re-queued jobs, the uids that were in flight at the crash.
    interrupted: List[str] = field(default_factory=list)
    #: Ledger lines dropped as unreadable (jsonl torn tail).
    corrupt_records: int = 0

    @property
    def accepted(self) -> int:
        """Every job the lost process ever admitted."""
        return len(self.queued) + len(self.finished) + len(self.shed)


class QueueStore:
    """Interface every queue-persistence backend implements."""

    def record_push(self, job: QueuedJob) -> None:
        raise NotImplementedError

    def record_pop(self, job: QueuedJob) -> None:
        raise NotImplementedError

    def record_finish(self, job: QueuedJob, outcome: str) -> None:
        raise NotImplementedError

    def record_shed(self, job: QueuedJob) -> None:
        raise NotImplementedError

    def load(self) -> RecoveredState:
        raise NotImplementedError

    def compact(self) -> None:
        """Drop resolved history, keeping only live state (optional)."""

    def close(self) -> None:
        """Release file handles; the store must be reopenable."""

    def __enter__(self) -> "QueueStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


#: Registry of persistence backends, sibling to ``PRIORITY_STRATEGIES``.
QUEUE_STORES: "Registry[QueueStore]" = Registry("queue_store")


@QUEUE_STORES.register("memory")
class MemoryQueueStore(QueueStore):
    """Ledger in a list; survives nothing (tests, pure-ingest benchmarks).

    It still *replays* correctly, which is what the equivalence property
    test exploits: push -> persist -> restore -> pop must equal
    push -> pop even when "persist" never touches a disk.
    """

    def __init__(self) -> None:
        self._records: List[dict] = []
        self._lock = threading.Lock()

    def record_push(self, job: QueuedJob) -> None:
        with self._lock:
            self._records.append({"op": "push", "job": job.to_dict()})

    def record_pop(self, job: QueuedJob) -> None:
        with self._lock:
            self._records.append({"op": "pop", "uid": job.uid})

    def record_finish(self, job: QueuedJob, outcome: str) -> None:
        with self._lock:
            self._records.append(
                {"op": "finish", "uid": job.uid, "outcome": outcome}
            )

    def record_shed(self, job: QueuedJob) -> None:
        with self._lock:
            self._records.append({"op": "shed", "uid": job.uid})

    def load(self) -> RecoveredState:
        with self._lock:
            records = list(self._records)
        return _replay(records)

    def compact(self) -> None:
        state = self.load()
        with self._lock:
            self._records = [
                {"op": "push", "job": job.to_dict()} for job in state.queued
            ]


@QUEUE_STORES.register("jsonl")
class JsonlQueueStore(QueueStore):
    """Append-only JSONL ledger; the crash-friendliest format there is.

    Every record is one line, flushed on write (``fsync`` optional for
    the paranoid).  Replay stops at the first unparseable line *only if*
    it is the last one (a torn write); corruption mid-file raises, since
    silently skipping acknowledged records would fake job loss.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._repair_torn_tail()
        self._fh: Optional[io.TextIOWrapper] = open(  # noqa: SIM115
            path, "a", encoding="utf-8"
        )

    def _repair_torn_tail(self) -> None:
        """Truncate a partial final line left by a crash mid-write.

        :meth:`load` tolerates a torn tail by dropping it, but appending
        onto one would weld the next record to the fragment -- corrupting
        the ledger *mid-file*, where replay refuses to skip.  Cutting the
        file back to the last newline restores the invariant that the
        ledger always ends at a record boundary before any append.
        """
        try:
            fh = open(self.path, "rb+")  # noqa: SIM115
        except FileNotFoundError:
            return
        with fh:
            fh.seek(0, os.SEEK_END)
            pos = fh.tell()
            if pos == 0:
                return
            fh.seek(pos - 1)
            if fh.read(1) == b"\n":
                return
            last_nl = -1
            while pos > 0 and last_nl < 0:
                start = max(0, pos - 4096)
                fh.seek(start)
                idx = fh.read(pos - start).rfind(b"\n")
                if idx >= 0:
                    last_nl = start + idx
                pos = start
            fh.truncate(last_nl + 1)

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._fh is None:
                raise SCANError(f"queue store {self.path!r} is closed")
            self._fh.write(line + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())

    def record_push(self, job: QueuedJob) -> None:
        self._append({"op": "push", "job": job.to_dict()})

    def record_pop(self, job: QueuedJob) -> None:
        self._append({"op": "pop", "uid": job.uid})

    def record_finish(self, job: QueuedJob, outcome: str) -> None:
        self._append({"op": "finish", "uid": job.uid, "outcome": outcome})

    def record_shed(self, job: QueuedJob) -> None:
        self._append({"op": "shed", "uid": job.uid})

    def load(self) -> RecoveredState:
        records: List[dict] = []
        corrupt = 0
        try:
            with open(self.path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return RecoveredState()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    corrupt += 1  # torn tail from the crash: tolerated
                    break
                raise SCANError(
                    f"corrupt queue ledger {self.path!r} at line {i + 1}: "
                    f"{exc}"
                ) from exc
        state = _replay(records)
        state.corrupt_records = corrupt
        return state

    def compact(self) -> None:
        """Rewrite the ledger as just the live pushes (atomic replace)."""
        state = self.load()
        tmp = f"{self.path}.compact"
        with self._lock:
            with open(tmp, "w", encoding="utf-8") as fh:
                for job in state.queued:
                    fh.write(
                        json.dumps(
                            {"op": "push", "job": job.to_dict()},
                            sort_keys=True,
                        )
                        + "\n"
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            if self._fh is not None:
                self._fh.close()
                self._fh = open(self.path, "a", encoding="utf-8")  # noqa: SIM115

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


@QUEUE_STORES.register("sqlite")
class SqliteQueueStore(QueueStore):
    """One row per job in SQLite (WAL journal, synchronous=NORMAL).

    State transitions are row updates, so ``load`` is a plain SELECT --
    no replay cost at boot, which is what you want once the ledger has
    absorbed 10^5+ jobs.  ``leased`` rows (popped, unresolved) recover as
    queued, exactly like the JSONL replay.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS jobs (
        uid      TEXT PRIMARY KEY,
        tenant   TEXT NOT NULL,
        seq      INTEGER NOT NULL,
        state    TEXT NOT NULL,
        outcome  TEXT,
        payload  TEXT NOT NULL
    );
    CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state);
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        if path != ":memory:":
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
            path, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()

    def _execute(self, sql: str, params: tuple) -> None:
        with self._lock:
            if self._conn is None:
                raise SCANError(f"queue store {self.path!r} is closed")
            self._conn.execute(sql, params)
            self._conn.commit()

    def record_push(self, job: QueuedJob) -> None:
        self._execute(
            "INSERT OR REPLACE INTO jobs (uid, tenant, seq, state, outcome, "
            "payload) VALUES (?, ?, ?, 'queued', NULL, ?)",
            (job.uid, job.tenant, job.seq, json.dumps(job.to_dict())),
        )

    def record_pop(self, job: QueuedJob) -> None:
        self._execute(
            "UPDATE jobs SET state='leased' WHERE uid=?", (job.uid,)
        )

    def record_finish(self, job: QueuedJob, outcome: str) -> None:
        self._execute(
            "UPDATE jobs SET state='finished', outcome=? WHERE uid=?",
            (outcome, job.uid),
        )

    def record_shed(self, job: QueuedJob) -> None:
        self._execute(
            "UPDATE jobs SET state='shed' WHERE uid=?", (job.uid,)
        )

    def load(self) -> RecoveredState:
        with self._lock:
            if self._conn is None:
                raise SCANError(f"queue store {self.path!r} is closed")
            rows = self._conn.execute(
                "SELECT state, outcome, payload FROM jobs ORDER BY seq"
            ).fetchall()
        state = RecoveredState()
        for row_state, outcome, payload in rows:
            job = QueuedJob.from_dict(json.loads(payload))
            if row_state in ("queued", "leased"):
                state.queued.append(job)
                if row_state == "leased":
                    state.interrupted.append(job.uid)
            elif row_state == "finished":
                state.finished[job.uid] = outcome or "completed"
            elif row_state == "shed":
                state.shed.append(job.uid)
        return state

    def compact(self) -> None:
        self._execute(
            "DELETE FROM jobs WHERE state IN ('finished', 'shed')", ()
        )

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None


def _replay(records: List[dict]) -> RecoveredState:
    """Fold a ledger into live state (shared by memory/jsonl backends)."""
    jobs: Dict[str, QueuedJob] = {}
    queued: Dict[str, QueuedJob] = {}
    leased: Dict[str, QueuedJob] = {}
    state = RecoveredState()
    for record in records:
        op = record.get("op")
        if op == "push":
            job = QueuedJob.from_dict(record["job"])
            jobs[job.uid] = job
            queued[job.uid] = job
            # A re-push supersedes an earlier resolution (requeue path).
            state.finished.pop(job.uid, None)
        elif op == "pop":
            job = queued.pop(record["uid"], None)  # type: ignore[arg-type]
            if job is not None:
                leased[job.uid] = job
        elif op == "finish":
            uid = record["uid"]
            leased.pop(uid, None)
            queued.pop(uid, None)
            state.finished[uid] = record.get("outcome", "completed")
        elif op == "shed":
            uid = record["uid"]
            if queued.pop(uid, None) is not None:
                state.shed.append(uid)
        else:
            raise SCANError(f"unknown queue-ledger op {op!r}")
    # Leased-at-crash jobs re-queue at their original priority: popped but
    # never resolved means their fate is unknown, so they must run again.
    live = list(queued.values()) + list(leased.values())
    live.sort(key=lambda job: job.seq)
    state.queued = live
    state.interrupted = sorted(leased, key=lambda uid: leased[uid].seq)
    return state


def make_store(spec: str) -> QueueStore:
    """Build a store from a short spec string.

    - ``memory``                    -> :class:`MemoryQueueStore`
    - ``sqlite:PATH`` / ``*.db`` / ``*.sqlite`` -> :class:`SqliteQueueStore`
    - ``jsonl:PATH`` / any other path            -> :class:`JsonlQueueStore`
    """
    if not spec:
        raise ConfigurationError("queue store spec must be non-empty")
    if spec == "memory":
        return QUEUE_STORES.create("memory")
    if ":" in spec and spec.split(":", 1)[0] in QUEUE_STORES:
        kind, path = spec.split(":", 1)
        if not path:
            raise ConfigurationError(f"store spec {spec!r} needs a path")
        return QUEUE_STORES.create(kind, path)
    if spec.endswith((".db", ".sqlite", ".sqlite3")):
        return QUEUE_STORES.create("sqlite", spec)
    return QUEUE_STORES.create("jsonl", spec)
