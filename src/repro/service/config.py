"""Service-plane deployment configuration.

Deliberately *not* a section of :class:`~repro.core.config.PlatformConfig`:
the platform config describes one simulated deployment (and its default
serialized form is pinned by a golden fixture); the service config
describes the long-running process *around* it -- queue capacity,
admission policy, persistence, HTTP limits.  It round-trips through JSON
the same way the platform config does.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping

from repro.core.errors import ConfigurationError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one ``scan-sim serve --service`` deployment."""

    #: Bounded queue capacity *per tenant* (mula: "finite (configurable)
    #: number of items in the priority queue").
    tenant_capacity: int = 1024
    #: Priority-calculation strategy (``PRIORITY_STRATEGIES`` registry).
    priority_strategy: str = "fifo"
    #: What happens when a tenant's queue is full: ``reject`` bounces the
    #: newcomer (429); ``shed_lowest`` evicts the worst-priority queued
    #: job when the newcomer outranks it.
    admission: str = "reject"
    #: Queue-store spec (``memory``, a ``.jsonl`` path, a ``.db`` path,
    #: or ``kind:path`` for any registered backend).
    store: str = "memory"
    #: Service-level execution attempts per job before it dead-letters.
    max_job_attempts: int = 2
    #: Consecutive failed jobs that open a tenant's circuit breaker.
    breaker_threshold: int = 3
    #: Seconds an open tenant breaker rejects submissions (503) before a
    #: half-open probe is allowed.
    breaker_cooldown_s: float = 30.0
    #: Largest request body the RPC layer will read (413 beyond this).
    max_body_bytes: int = 1_048_576
    #: Socket read timeout for one HTTP request (a stalled client frees
    #: its handler thread after this many seconds).
    read_timeout_s: float = 10.0

    def validate(self) -> "ServiceConfig":
        """Raise ConfigurationError on invalid fields; returns self."""
        if self.tenant_capacity < 1:
            raise ConfigurationError("tenant_capacity must be >= 1")
        if not self.priority_strategy:
            raise ConfigurationError("priority_strategy must be named")
        if self.admission not in ("reject", "shed_lowest"):
            raise ConfigurationError(
                f"unknown admission policy {self.admission!r}; "
                "known: reject, shed_lowest"
            )
        if not self.store:
            raise ConfigurationError("store must be named")
        if self.max_job_attempts < 1:
            raise ConfigurationError("max_job_attempts must be >= 1")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ConfigurationError("breaker_cooldown_s must be positive")
        if self.max_body_bytes < 1024:
            raise ConfigurationError("max_body_bytes must be >= 1024")
        if self.read_timeout_s <= 0:
            raise ConfigurationError("read_timeout_s must be positive")
        return self

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown service-config key(s) "
                f"{', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServiceConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"invalid service-config JSON: {exc}"
            ) from exc
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"service config must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)
