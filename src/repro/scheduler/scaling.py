"""Horizontal-scaling algorithms (Table I, row 2).

The scheduler's hire-or-wait decision: "For each work item reaching the
front of a task queue ... should a worker (or workers ...) be hired from
the elastic cloud to run it immediately, or should it be delayed until an
existing worker becomes available?" (Section III-A.2).

All three policies hire from the *base* tier (the paper's private cloud)
whenever it has room -- base cores are strictly cheaper.  They differ
"when private resources are fully occupied" (Section IV-B):

- **Always-scale**: hire an elastic worker immediately.
- **Never-scale**: wait for a base-tier worker to free up.
- **Predictive**: hire elastic capacity only when the delay cost (Eq. 1)
  of waiting out the estimated queue time exceeds the elastic premium for
  the task.

Elastic candidates come from the infrastructure's placement policy
(``TIER_PLACEMENT``), so a spot or serverless tier configured cheaper
than on-demand is preferred automatically; for the default two-tier
stack the one elastic candidate is the public tier, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Protocol

from repro.cloud.infrastructure import Infrastructure
from repro.core.config import ScalingAlgorithm
from repro.core.errors import SchedulingError
from repro.core.plugins import Registry
from repro.scheduler.costs import TieredCostFunction
from repro.scheduler.estimator import (
    DelayCostTerm,
    PipelineEstimator,
    delay_cost,
    delay_cost_terms,
)
from repro.scheduler.queues import StageQueue
from repro.scheduler.rewards import RewardFunction
from repro.scheduler.tasks import StageTask

__all__ = [
    "DecisionExplanation",
    "ScalingContext",
    "ScalingDecision",
    "ScalingPolicy",
    "AlwaysScale",
    "NeverScale",
    "PredictiveScale",
    "SCALING_POLICIES",
    "make_scaling_policy",
]

#: Plugin registry of horizontal-scaling policy factories.  Factories are
#: invoked with the keyword context of the construction site (currently
#: ``horizon_tu``); out-of-tree policies register here.
SCALING_POLICIES: "Registry[ScalingPolicy]" = Registry("scaling")


@dataclass
class ScalingContext:
    """Inputs to one hire-or-wait decision."""

    infrastructure: Infrastructure
    costs: TieredCostFunction
    estimator: PipelineEstimator
    reward: RewardFunction
    queue: StageQueue
    now: float
    startup_penalty_tu: float
    #: Expected wait if we do not hire (estimated time until a suitable
    #: worker frees up); the scheduler supplies its best estimate.
    expected_wait: float
    #: False while the elastic-tier circuit breaker is open: repeated
    #: deploy failures make elastic hires pointless until the cooldown.
    public_available: bool = True
    #: When True, policies attach a :class:`DecisionExplanation` to the
    #: decision (telemetry audit log); the choice itself is unaffected.
    explain: bool = False


@dataclass(frozen=True)
class DecisionExplanation:
    """The Eq. 1 inputs behind one hire-or-wait choice.

    Captured only when ``ScalingContext.explain`` is set, so the scheduler
    hot path pays nothing by default.  Every field is a plain value: the
    decision can be replayed later from this record plus the reward
    function alone (see ``repro.telemetry.audit.replay_decision``).
    """

    policy: str
    #: Whether the decision landed on the base (reserved) tier.  Field
    #: name kept from the two-tier era for audit-record compatibility.
    private_free: bool
    public_available: bool
    public_capacity: Optional[bool] = None
    expected_wait: float = 0.0
    #: The capped wait Eq. 1 was actually evaluated at (predictive only).
    wait: Optional[float] = None
    horizon: Optional[float] = None
    cores: int = 0
    threads: int = 0
    duration: Optional[float] = None
    premium: Optional[float] = None
    delay_cost: Optional[float] = None
    terms: tuple[DelayCostTerm, ...] = ()
    private_core_cost: float = 0.0
    public_core_cost: float = 0.0
    startup_penalty_tu: float = 0.0


@dataclass(frozen=True)
class ScalingDecision:
    """Outcome: hire on some tier (by name), or wait."""

    hire: bool
    tier: Optional[str] = None
    explanation: Optional[DecisionExplanation] = field(
        default=None, compare=False, repr=False
    )

    @staticmethod
    def wait() -> "ScalingDecision":
        return ScalingDecision(hire=False, tier=None)

    @staticmethod
    def on(tier: str) -> "ScalingDecision":
        return ScalingDecision(hire=True, tier=tier)


class ScalingPolicy(Protocol):
    """Protocol: the hire-or-wait decision interface."""
    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire-or-wait for *task* needing *cores* cores."""
        ...


def _base_first(cores: int, ctx: ScalingContext) -> Optional[ScalingDecision]:
    """Common fast path: base-tier capacity available -> hire there."""
    base = ctx.infrastructure.base
    if base.can_allocate(cores):
        return ScalingDecision.on(base.name)
    return None


def _cap_duration(ctx: ScalingContext, task: StageTask, cores: int):
    """Expected duration, computed only when a tier caps durations.

    Serverless backends reject over-long invocations at placement; that
    needs a duration estimate.  The default stack has no duration caps,
    so the hot path never touches the estimator here.
    """
    if not ctx.infrastructure.has_duration_caps():
        return None
    threads = task.threads if task.threads is not None else cores
    return ctx.estimator.eet(task.stage, task.job.input_gb, max(threads, 1))


def _explain(
    decision: ScalingDecision,
    ctx: ScalingContext,
    task: StageTask,
    cores: int,
    policy: str,
    *,
    public_capacity: Optional[bool] = None,
    wait: Optional[float] = None,
    horizon: Optional[float] = None,
    duration: Optional[float] = None,
    premium: Optional[float] = None,
    dc: Optional[float] = None,
    terms: tuple[DelayCostTerm, ...] = (),
) -> ScalingDecision:
    """Attach a :class:`DecisionExplanation` when the context asks for one."""
    if not ctx.explain:
        return decision
    threads = task.threads if task.threads is not None else cores
    explanation = DecisionExplanation(
        policy=policy,
        private_free=decision.tier == ctx.infrastructure.base.name,
        public_available=ctx.public_available,
        public_capacity=public_capacity,
        expected_wait=ctx.expected_wait,
        wait=wait,
        horizon=horizon,
        cores=cores,
        threads=threads,
        duration=duration,
        premium=premium,
        delay_cost=dc,
        terms=terms,
        private_core_cost=ctx.costs.private_core_cost,
        public_core_cost=ctx.costs.public_core_cost,
        startup_penalty_tu=ctx.startup_penalty_tu,
    )
    return replace(decision, explanation=explanation)


class AlwaysScale:
    """Base tier if possible, otherwise the placement's elastic pick."""

    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire base if possible, else the best elastic tier, immediately."""
        decision = _base_first(cores, ctx)
        if decision is not None:
            return _explain(decision, ctx, task, cores, "always")
        candidate = ctx.infrastructure.place_elastic(
            cores, duration_tu=_cap_duration(ctx, task, cores)
        )
        capacity = candidate is not None
        if ctx.public_available and capacity:
            decision = ScalingDecision.on(candidate)
        else:
            decision = ScalingDecision.wait()
        return _explain(decision, ctx, task, cores, "always", public_capacity=capacity)


class NeverScale:
    """Base tier if possible, otherwise wait -- never pay elastic prices."""

    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire on the base tier if possible, otherwise wait."""
        decision = _base_first(cores, ctx)
        if decision is not None:
            return _explain(decision, ctx, task, cores, "never")
        return _explain(ScalingDecision.wait(), ctx, task, cores, "never")


class PredictiveScale:
    """Hire elastic only when delaying the queue costs more than the premium.

    The comparison (both sides in CU):

    - delay cost: Eq. 1 evaluated over the stage's queue at the expected
      wait (capped at the configured horizon so a single pathological
      estimate cannot force unbounded hiring);
    - hire premium: the elastic-over-base price difference for this
      task's core-time, plus the elastic price of the boot penalty --
      priced against the placement policy's elastic candidate, so a cheap
      spot tier lowers the bar exactly as it should.
    """

    def __init__(self, horizon_tu: float = 5.0) -> None:
        if horizon_tu <= 0:
            raise SchedulingError("horizon must be positive")
        self.horizon_tu = horizon_tu

    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire elastic only when delay cost exceeds the premium."""
        decision = _base_first(cores, ctx)
        if decision is not None:
            return _explain(decision, ctx, task, cores, "predictive",
                            horizon=self.horizon_tu)
        if not ctx.public_available:
            # Breaker open: elastic deploys are bouncing, don't bother.
            return _explain(ScalingDecision.wait(), ctx, task, cores,
                            "predictive", horizon=self.horizon_tu)
        candidate = ctx.infrastructure.place_elastic(
            cores, duration_tu=_cap_duration(ctx, task, cores)
        )
        if candidate is None:
            return _explain(ScalingDecision.wait(), ctx, task, cores,
                            "predictive", public_capacity=False,
                            horizon=self.horizon_tu)

        wait = min(max(ctx.expected_wait, 0.0), self.horizon_tu)
        if wait <= 0.0:
            # A worker is (expected) free immediately; no reason to pay.
            return _explain(ScalingDecision.wait(), ctx, task, cores,
                            "predictive", public_capacity=True, wait=wait,
                            horizon=self.horizon_tu)

        threads = task.threads if task.threads is not None else cores
        # Premium-side duration through the knowledge plane (the memoised
        # EET path), so a refit corrects the hire-or-wait margin too.
        duration = ctx.estimator.eet(
            task.stage, task.job.input_gb, max(threads, 1)
        )
        premium = ctx.costs.premium(
            cores, duration, tier=candidate,
            startup_penalty_tu=ctx.startup_penalty_tu,
        )
        # Eq. 1 over the tasks currently waiting in this stage's queue; the
        # candidate task is included (it is at the front of the queue).
        terms: tuple[DelayCostTerm, ...] = ()
        if ctx.explain:
            dc, terms = delay_cost_terms(
                ctx.queue, ctx.estimator, ctx.reward, wait, ctx.now
            )
        else:
            dc = delay_cost(ctx.queue, ctx.estimator, ctx.reward, wait, ctx.now)
        if dc > premium:
            decision = ScalingDecision.on(candidate)
        else:
            decision = ScalingDecision.wait()
        return _explain(decision, ctx, task, cores, "predictive",
                        public_capacity=True, wait=wait, horizon=self.horizon_tu,
                        duration=duration, premium=premium, dc=dc, terms=terms)


# Built-in registrations: every scaling factory takes the same keyword
# context so the construction site needs no per-policy branching.
@SCALING_POLICIES.register("always")
def _make_always(horizon_tu: float = 5.0) -> ScalingPolicy:
    return AlwaysScale()


@SCALING_POLICIES.register("never")
def _make_never(horizon_tu: float = 5.0) -> ScalingPolicy:
    return NeverScale()


@SCALING_POLICIES.register("predictive")
def _make_predictive(horizon_tu: float = 5.0) -> ScalingPolicy:
    return PredictiveScale(horizon_tu=horizon_tu)


def make_scaling_policy(
    algorithm: "ScalingAlgorithm | str", horizon_tu: float = 5.0
) -> ScalingPolicy:
    """Instantiate the policy named by *algorithm*.

    A thin :data:`SCALING_POLICIES` lookup (enum or raw string key);
    unknown names raise :class:`~repro.core.errors.ConfigurationError`
    listing what is registered.
    """
    return SCALING_POLICIES.create(algorithm, horizon_tu=horizon_tu)
