"""Horizontal-scaling algorithms (Table I, row 2).

The scheduler's hire-or-wait decision: "For each work item reaching the
front of a task queue ... should a worker (or workers ...) be hired from
the elastic cloud to run it immediately, or should it be delayed until an
existing worker becomes available?" (Section III-A.2).

All three policies hire from the *private* tier whenever it has room --
private cores are strictly cheaper.  They differ "when private resources
are fully occupied" (Section IV-B):

- **Always-scale**: hire a public worker immediately.
- **Never-scale**: wait for a private worker to free up.
- **Predictive**: hire a public worker only when the delay cost (Eq. 1) of
  waiting out the estimated queue time exceeds the public-tier premium for
  the task.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Protocol

from repro.cloud.infrastructure import Infrastructure, TierName
from repro.core.config import ScalingAlgorithm
from repro.core.errors import SchedulingError
from repro.core.plugins import Registry
from repro.scheduler.costs import TieredCostFunction
from repro.scheduler.estimator import (
    DelayCostTerm,
    PipelineEstimator,
    delay_cost,
    delay_cost_terms,
)
from repro.scheduler.queues import StageQueue
from repro.scheduler.rewards import RewardFunction
from repro.scheduler.tasks import StageTask

__all__ = [
    "DecisionExplanation",
    "ScalingContext",
    "ScalingDecision",
    "ScalingPolicy",
    "AlwaysScale",
    "NeverScale",
    "PredictiveScale",
    "SCALING_POLICIES",
    "make_scaling_policy",
]

#: Plugin registry of horizontal-scaling policy factories.  Factories are
#: invoked with the keyword context of the construction site (currently
#: ``horizon_tu``); out-of-tree policies register here.
SCALING_POLICIES: "Registry[ScalingPolicy]" = Registry("scaling")


@dataclass
class ScalingContext:
    """Inputs to one hire-or-wait decision."""

    infrastructure: Infrastructure
    costs: TieredCostFunction
    estimator: PipelineEstimator
    reward: RewardFunction
    queue: StageQueue
    now: float
    startup_penalty_tu: float
    #: Expected wait if we do not hire (estimated time until a suitable
    #: worker frees up); the scheduler supplies its best estimate.
    expected_wait: float
    #: False while the public-tier circuit breaker is open: repeated
    #: deploy failures make public hires pointless until the cooldown.
    public_available: bool = True
    #: When True, policies attach a :class:`DecisionExplanation` to the
    #: decision (telemetry audit log); the choice itself is unaffected.
    explain: bool = False


@dataclass(frozen=True)
class DecisionExplanation:
    """The Eq. 1 inputs behind one hire-or-wait choice.

    Captured only when ``ScalingContext.explain`` is set, so the scheduler
    hot path pays nothing by default.  Every field is a plain value: the
    decision can be replayed later from this record plus the reward
    function alone (see ``repro.telemetry.audit.replay_decision``).
    """

    policy: str
    private_free: bool
    public_available: bool
    public_capacity: Optional[bool] = None
    expected_wait: float = 0.0
    #: The capped wait Eq. 1 was actually evaluated at (predictive only).
    wait: Optional[float] = None
    horizon: Optional[float] = None
    cores: int = 0
    threads: int = 0
    duration: Optional[float] = None
    premium: Optional[float] = None
    delay_cost: Optional[float] = None
    terms: tuple[DelayCostTerm, ...] = ()
    private_core_cost: float = 0.0
    public_core_cost: float = 0.0
    startup_penalty_tu: float = 0.0


@dataclass(frozen=True)
class ScalingDecision:
    """Outcome: hire on some tier, or wait."""

    hire: bool
    tier: Optional[TierName] = None
    explanation: Optional[DecisionExplanation] = field(
        default=None, compare=False, repr=False
    )

    @staticmethod
    def wait() -> "ScalingDecision":
        return ScalingDecision(hire=False, tier=None)

    @staticmethod
    def on(tier: TierName) -> "ScalingDecision":
        return ScalingDecision(hire=True, tier=tier)


class ScalingPolicy(Protocol):
    """Protocol: the hire-or-wait decision interface."""
    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire-or-wait for *task* needing *cores* cores."""
        ...


def _private_first(cores: int, ctx: ScalingContext) -> Optional[ScalingDecision]:
    """Common fast path: private capacity available -> hire private."""
    if ctx.infrastructure.private.can_allocate(cores):
        return ScalingDecision.on(TierName.PRIVATE)
    return None


def _explain(
    decision: ScalingDecision,
    ctx: ScalingContext,
    task: StageTask,
    cores: int,
    policy: str,
    *,
    public_capacity: Optional[bool] = None,
    wait: Optional[float] = None,
    horizon: Optional[float] = None,
    duration: Optional[float] = None,
    premium: Optional[float] = None,
    dc: Optional[float] = None,
    terms: tuple[DelayCostTerm, ...] = (),
) -> ScalingDecision:
    """Attach a :class:`DecisionExplanation` when the context asks for one."""
    if not ctx.explain:
        return decision
    threads = task.threads if task.threads is not None else cores
    explanation = DecisionExplanation(
        policy=policy,
        private_free=decision.tier is TierName.PRIVATE,
        public_available=ctx.public_available,
        public_capacity=public_capacity,
        expected_wait=ctx.expected_wait,
        wait=wait,
        horizon=horizon,
        cores=cores,
        threads=threads,
        duration=duration,
        premium=premium,
        delay_cost=dc,
        terms=terms,
        private_core_cost=ctx.costs.private_core_cost,
        public_core_cost=ctx.costs.public_core_cost,
        startup_penalty_tu=ctx.startup_penalty_tu,
    )
    return replace(decision, explanation=explanation)


class AlwaysScale:
    """Private if possible, otherwise public, immediately."""

    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire private if possible, else public, immediately."""
        decision = _private_first(cores, ctx)
        if decision is not None:
            return _explain(decision, ctx, task, cores, "always")
        capacity = ctx.infrastructure.public.can_allocate(cores)
        if ctx.public_available and capacity:
            decision = ScalingDecision.on(TierName.PUBLIC)
        else:
            decision = ScalingDecision.wait()
        return _explain(decision, ctx, task, cores, "always", public_capacity=capacity)


class NeverScale:
    """Private if possible, otherwise wait -- never pay public prices."""

    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire private if possible, otherwise wait."""
        decision = _private_first(cores, ctx)
        if decision is not None:
            return _explain(decision, ctx, task, cores, "never")
        return _explain(ScalingDecision.wait(), ctx, task, cores, "never")


class PredictiveScale:
    """Hire public only when delaying the queue costs more than the premium.

    The comparison (both sides in CU):

    - delay cost: Eq. 1 evaluated over the stage's queue at the expected
      wait (capped at the configured horizon so a single pathological
      estimate cannot force unbounded hiring);
    - hire premium: the public-over-private price difference for this
      task's core-time, plus the public price of the boot penalty.
    """

    def __init__(self, horizon_tu: float = 5.0) -> None:
        if horizon_tu <= 0:
            raise SchedulingError("horizon must be positive")
        self.horizon_tu = horizon_tu

    def decide(self, task: StageTask, cores: int, ctx: ScalingContext) -> ScalingDecision:
        """Hire public only when delay cost exceeds the premium."""
        decision = _private_first(cores, ctx)
        if decision is not None:
            return _explain(decision, ctx, task, cores, "predictive",
                            horizon=self.horizon_tu)
        if not ctx.public_available:
            # Breaker open: public deploys are bouncing, don't bother.
            return _explain(ScalingDecision.wait(), ctx, task, cores,
                            "predictive", horizon=self.horizon_tu)
        if not ctx.infrastructure.public.can_allocate(cores):
            return _explain(ScalingDecision.wait(), ctx, task, cores,
                            "predictive", public_capacity=False,
                            horizon=self.horizon_tu)

        wait = min(max(ctx.expected_wait, 0.0), self.horizon_tu)
        if wait <= 0.0:
            # A worker is (expected) free immediately; no reason to pay.
            return _explain(ScalingDecision.wait(), ctx, task, cores,
                            "predictive", public_capacity=True, wait=wait,
                            horizon=self.horizon_tu)

        threads = task.threads if task.threads is not None else cores
        # Premium-side duration through the knowledge plane (the memoised
        # EET path), so a refit corrects the hire-or-wait margin too.
        duration = ctx.estimator.eet(
            task.stage, task.job.input_gb, max(threads, 1)
        )
        premium = ctx.costs.public_premium(
            cores, duration, startup_penalty_tu=ctx.startup_penalty_tu
        )
        # Eq. 1 over the tasks currently waiting in this stage's queue; the
        # candidate task is included (it is at the front of the queue).
        terms: tuple[DelayCostTerm, ...] = ()
        if ctx.explain:
            dc, terms = delay_cost_terms(
                ctx.queue, ctx.estimator, ctx.reward, wait, ctx.now
            )
        else:
            dc = delay_cost(ctx.queue, ctx.estimator, ctx.reward, wait, ctx.now)
        if dc > premium:
            decision = ScalingDecision.on(TierName.PUBLIC)
        else:
            decision = ScalingDecision.wait()
        return _explain(decision, ctx, task, cores, "predictive",
                        public_capacity=True, wait=wait, horizon=self.horizon_tu,
                        duration=duration, premium=premium, dc=dc, terms=terms)


# Built-in registrations: every scaling factory takes the same keyword
# context so the construction site needs no per-policy branching.
@SCALING_POLICIES.register("always")
def _make_always(horizon_tu: float = 5.0) -> ScalingPolicy:
    return AlwaysScale()


@SCALING_POLICIES.register("never")
def _make_never(horizon_tu: float = 5.0) -> ScalingPolicy:
    return NeverScale()


@SCALING_POLICIES.register("predictive")
def _make_predictive(horizon_tu: float = 5.0) -> ScalingPolicy:
    return PredictiveScale(horizon_tu=horizon_tu)


def make_scaling_policy(
    algorithm: "ScalingAlgorithm | str", horizon_tu: float = 5.0
) -> ScalingPolicy:
    """Instantiate the policy named by *algorithm*.

    A thin :data:`SCALING_POLICIES` lookup (enum or raw string key);
    unknown names raise :class:`~repro.core.errors.ConfigurationError`
    listing what is registered.
    """
    return SCALING_POLICIES.create(algorithm, horizon_tu=horizon_tu)
