"""Jobs (pipeline runs) and per-stage tasks.

A :class:`Job` is one user request: run a whole analysis over an input of
size ``d``.  "latency measures the time from a task entering the queue for
the first analysis stage to completing the last stage"; "the task's size
... generally reflects the number of records of input data supplied"
(paper Section III-A.2).  We use the job size (GB-units) as the record
count, as the paper's own model does (E_i is linear in d).

Since the DAG refactor a job's unit of work is a
:class:`~repro.workflows.compiled.CompiledWorkflow` node, not a pipeline
stage index.  A plain application job still works exactly as before -- it
lazily lowers its app into the cached chain workflow, where node ``i`` is
stage ``i`` -- but a job constructed with an explicit workflow tracks
completion as a *set* of finished nodes plus dependency release: a node
becomes ready only when every parent node has completed, and independent
branches are handed to the scheduler together.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.apps.base import ApplicationModel, ExecutionPlan
from repro.core.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.workflows.compiled import CompiledWorkflow

__all__ = ["JobState", "StageRecord", "Job", "StageTask"]

_job_ids = itertools.count(1)
_task_ids = itertools.count(1)


class JobState(str, enum.Enum):
    """Job lifecycle states."""
    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETED = "completed"
    #: A stage task exhausted its retry budget and was dead-lettered; the
    #: job's reward is forfeited.
    FAILED = "failed"


@dataclass(frozen=True)
class StageRecord:
    """What happened when one step (workflow node) of a job ran."""

    stage: int
    queued_at: float
    started_at: float
    finished_at: float
    threads: int
    tier: str
    #: Executions this stage consumed (1 = first try succeeded).
    attempts: int = 1

    @property
    def queue_wait(self) -> float:
        return self.started_at - self.queued_at

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class Job:
    """One run through every node of a workflow (or every app stage)."""

    def __init__(
        self,
        app: ApplicationModel,
        size: float,
        submit_time: float,
        name: str = "",
        input_gb: Optional[float] = None,
        workflow: "Optional[CompiledWorkflow]" = None,
    ) -> None:
        if size <= 0:
            raise SchedulingError(f"job size must be positive, got {size}")
        if input_gb is not None and input_gb <= 0:
            raise SchedulingError(f"input_gb must be positive, got {input_gb}")
        self.uid = next(_job_ids)
        self.name = name or f"job{self.uid}"
        self.app = app
        #: Job size d in the paper's arbitrary units; the record count for
        #: rewards.
        self.size = float(size)
        #: Input size on the E_i(d) axis (GB); defaults to ``size`` under
        #: the 1-unit-=-1-GB mapping.  DAG nodes see this scaled by their
        #: workflow input scale.
        self.input_gb = float(input_gb) if input_gb is not None else float(size)
        self.submit_time = float(submit_time)
        self.state = JobState.SUBMITTED
        #: Thread counts per workflow node; set by the allocation policy.
        #: May be revised for *future* nodes by adaptive policies.
        self.plan: Optional[ExecutionPlan] = None
        #: Number of completed step executions (for a chain: the index of
        #: the next stage, exactly the legacy meaning).
        self.current_stage = 0
        self.history: list[StageRecord] = []
        self.completed_at: Optional[float] = None
        self.failed_at: Optional[float] = None
        self.reward_paid: Optional[float] = None
        #: The compiled workflow this job runs; ``None`` means "the app's
        #: own chain", lowered lazily on first access.
        self._workflow = workflow
        #: Completed node indices, and nodes already handed to a queue.
        self._done: set[int] = set()
        self._released: set[int] = set()

    @property
    def records(self) -> float:
        """recs_j in the paper's equations."""
        return self.size

    @property
    def workflow(self) -> "CompiledWorkflow":
        """The compiled workflow (the app's chain when none was given)."""
        wf = self._workflow
        if wf is None:
            from repro.workflows.compiled import chain_of

            wf = self._workflow = chain_of(self.app)
        return wf

    @property
    def n_stages(self) -> int:
        """Total schedulable steps (chain jobs: the app's stage count)."""
        wf = self._workflow
        return wf.n_nodes if wf is not None else self.app.n_stages

    @property
    def completed_steps(self) -> frozenset:
        """Indices of completed workflow nodes."""
        return frozenset(self._done)

    @property
    def is_complete(self) -> bool:
        return self.state is JobState.COMPLETED

    @property
    def is_failed(self) -> bool:
        return self.state is JobState.FAILED

    def elapsed(self, now: float) -> float:
        """Time since the job entered the first queue (elapsed_j in Eq. 2)."""
        return now - self.submit_time

    def latency(self) -> float:
        """Total pipeline latency; only valid once complete."""
        if self.completed_at is None:
            raise SchedulingError(f"{self.name} has not completed")
        return self.completed_at - self.submit_time

    def planned_threads(self, stage: int) -> int:
        """The planned thread count for node *stage* (1 when unplanned)."""
        if self.plan is None or stage >= len(self.plan.threads):
            return 1
        return self.plan.threads[stage]

    def step_done(self, stage: int) -> bool:
        """Whether node *stage* has a completion record."""
        return stage in self._done

    def start_steps(self) -> tuple[int, ...]:
        """Entry nodes to enqueue at submit time (marks them released).

        Chain jobs start at node 0, exactly as before; DAG jobs fan every
        parentless node out at once.
        """
        wf = self._workflow
        entries = wf.entries if wf is not None else (0,)
        self._released.update(entries)
        return entries

    def ready_after(self, stage: int) -> list[int]:
        """Nodes newly runnable after *stage* completed (marks released).

        A child is released exactly once, when its *last* outstanding
        parent finishes -- the DAG fan-in barrier.  For chains this is
        ``[stage + 1]`` (or nothing at the end), matching the legacy
        next-stage enqueue.
        """
        wf = self._workflow
        if wf is None:
            nxt = stage + 1
            if nxt < self.app.n_stages:
                self._released.add(nxt)
                return [nxt]
            return []
        ready = []
        for child in wf.node(stage).children:
            if child in self._released:
                continue
            if all(p in self._done for p in wf.node(child).parents):
                self._released.add(child)
                ready.append(child)
        return ready

    def record_stage(self, record: StageRecord) -> None:
        """Append a step completion record.

        Chain jobs must complete nodes in index order (the legacy
        contract); DAG jobs may complete released branches in any order,
        but never a node twice or before its parents.
        """
        wf = self._workflow
        if wf is None or wf.is_chain:
            if record.stage != self.current_stage:
                raise SchedulingError(
                    f"{self.name}: stage {record.stage} completed out of order "
                    f"(expected {self.current_stage})"
                )
        else:
            if record.stage in self._done:
                raise SchedulingError(
                    f"{self.name}: step {record.stage} completed twice"
                )
            node = wf.node(record.stage)
            missing = [p for p in node.parents if p not in self._done]
            if missing:
                raise SchedulingError(
                    f"{self.name}: step {record.stage} completed before "
                    f"parent step(s) {missing}"
                )
        self._done.add(record.stage)
        self.history.append(record)
        self.current_stage += 1

    def complete(self, now: float, reward: float) -> None:
        """Mark the job finished and store its paid reward."""
        if self.current_stage != self.n_stages:
            raise SchedulingError(
                f"{self.name}: completing with {self.current_stage}/"
                f"{self.n_stages} stages done"
            )
        self.state = JobState.COMPLETED
        self.completed_at = now
        self.reward_paid = reward

    def fail(self, now: float) -> None:
        """Mark the job dead-lettered: no further stages run, no reward."""
        if self.state is JobState.COMPLETED:
            raise SchedulingError(f"{self.name} already completed; cannot fail")
        self.state = JobState.FAILED
        self.failed_at = now

    def core_stages(self) -> int:
        """Total cores across executed stages (Figure 5's x-axis)."""
        return sum(r.threads for r in self.history)

    def __repr__(self) -> str:
        return (
            f"<Job {self.name} d={self.size:.2f} stage={self.current_stage}"
            f"/{self.n_stages} {self.state.value}>"
        )


@dataclass
class StageTask:
    """One workflow node of one job, waiting in (or leaving) its queue."""

    job: Job
    stage: int
    enqueued_at: float
    uid: int = field(default_factory=lambda: next(_task_ids))
    #: Thread count, fixed when the task starts executing.
    threads: Optional[int] = None
    #: When the current ``threads`` decision was made (scheduler memo; a
    #: stale decision is re-taken after DECISION_TTL).
    decided_at: float = float("-inf")
    #: Which execution this is (1 = first try); retries carry it forward
    #: so retry budgets and queue-wait metrics stay honest.
    attempt: int = 1
    #: When the FIRST attempt entered the queue; ``enqueued_at`` is reset
    #: per retry, this is not.
    first_enqueued_at: Optional[float] = None
    #: A speculative duplicate launched by the straggler watchdog.
    speculative: bool = False
    #: Set when a twin already resolved this stage; dispatch drops the
    #: task instead of running it.
    cancelled: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.stage < self.job.n_stages:
            raise SchedulingError(
                f"stage {self.stage} out of range for {self.job.name}"
            )
        if self.attempt < 1:
            raise SchedulingError(f"attempt must be >= 1, got {self.attempt}")
        if self.first_enqueued_at is None:
            self.first_enqueued_at = self.enqueued_at

    @property
    def size(self) -> float:
        return self.job.size

    def execution_time(self, threads: int) -> float:
        """Model-predicted runtime of this task at *threads* threads."""
        job = self.job
        wf = job._workflow
        if wf is None:
            return job.app.stage(self.stage).threaded_time(
                threads, job.input_gb
            )
        node = wf.node(self.stage)
        return node.model.threaded_time(
            threads, wf.node_input_gb(self.stage, job.input_gb)
        )

    def __repr__(self) -> str:
        return f"<StageTask {self.job.name}/s{self.stage}>"
