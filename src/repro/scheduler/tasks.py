"""Jobs (pipeline runs) and per-stage tasks.

A :class:`Job` is one user request: run the whole application pipeline over
an input of size ``d``.  "latency measures the time from a task entering
the queue for the first analysis stage to completing the last stage"; "the
task's size ... generally reflects the number of records of input data
supplied" (paper Section III-A.2).  We use the job size (GB-units) as the
record count, as the paper's own model does (E_i is linear in d).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import ApplicationModel, ExecutionPlan
from repro.cloud.infrastructure import TierName
from repro.core.errors import SchedulingError

__all__ = ["JobState", "StageRecord", "Job", "StageTask"]

_job_ids = itertools.count(1)
_task_ids = itertools.count(1)


class JobState(str, enum.Enum):
    """Job lifecycle states."""
    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETED = "completed"
    #: A stage task exhausted its retry budget and was dead-lettered; the
    #: job's reward is forfeited.
    FAILED = "failed"


@dataclass(frozen=True)
class StageRecord:
    """What happened when one stage of a job ran."""

    stage: int
    queued_at: float
    started_at: float
    finished_at: float
    threads: int
    tier: TierName
    #: Executions this stage consumed (1 = first try succeeded).
    attempts: int = 1

    @property
    def queue_wait(self) -> float:
        return self.started_at - self.queued_at

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class Job:
    """One pipeline run through every stage of an application."""

    def __init__(
        self,
        app: ApplicationModel,
        size: float,
        submit_time: float,
        name: str = "",
        input_gb: Optional[float] = None,
    ) -> None:
        if size <= 0:
            raise SchedulingError(f"job size must be positive, got {size}")
        if input_gb is not None and input_gb <= 0:
            raise SchedulingError(f"input_gb must be positive, got {input_gb}")
        self.uid = next(_job_ids)
        self.name = name or f"job{self.uid}"
        self.app = app
        #: Job size d in the paper's arbitrary units; the record count for
        #: rewards.
        self.size = float(size)
        #: Input size on the E_i(d) axis (GB); defaults to ``size`` under
        #: the 1-unit-=-1-GB mapping.
        self.input_gb = float(input_gb) if input_gb is not None else float(size)
        self.submit_time = float(submit_time)
        self.state = JobState.SUBMITTED
        #: Thread counts per stage; set by the allocation policy.  May be
        #: revised for *future* stages by adaptive policies.
        self.plan: Optional[ExecutionPlan] = None
        self.current_stage = 0
        self.history: list[StageRecord] = []
        self.completed_at: Optional[float] = None
        self.failed_at: Optional[float] = None
        self.reward_paid: Optional[float] = None

    @property
    def records(self) -> float:
        """recs_j in the paper's equations."""
        return self.size

    @property
    def n_stages(self) -> int:
        return self.app.n_stages

    @property
    def is_complete(self) -> bool:
        return self.state is JobState.COMPLETED

    @property
    def is_failed(self) -> bool:
        return self.state is JobState.FAILED

    def elapsed(self, now: float) -> float:
        """Time since the job entered the first queue (elapsed_j in Eq. 2)."""
        return now - self.submit_time

    def latency(self) -> float:
        """Total pipeline latency; only valid once complete."""
        if self.completed_at is None:
            raise SchedulingError(f"{self.name} has not completed")
        return self.completed_at - self.submit_time

    def planned_threads(self, stage: int) -> int:
        """The planned thread count for *stage* (1 when unplanned)."""
        if self.plan is None or stage >= len(self.plan.threads):
            return 1
        return self.plan.threads[stage]

    def record_stage(self, record: StageRecord) -> None:
        """Append a stage record (must arrive in order)."""
        if record.stage != self.current_stage:
            raise SchedulingError(
                f"{self.name}: stage {record.stage} completed out of order "
                f"(expected {self.current_stage})"
            )
        self.history.append(record)
        self.current_stage += 1

    def complete(self, now: float, reward: float) -> None:
        """Mark the job finished and store its paid reward."""
        if self.current_stage != self.n_stages:
            raise SchedulingError(
                f"{self.name}: completing with {self.current_stage}/"
                f"{self.n_stages} stages done"
            )
        self.state = JobState.COMPLETED
        self.completed_at = now
        self.reward_paid = reward

    def fail(self, now: float) -> None:
        """Mark the job dead-lettered: no further stages run, no reward."""
        if self.state is JobState.COMPLETED:
            raise SchedulingError(f"{self.name} already completed; cannot fail")
        self.state = JobState.FAILED
        self.failed_at = now

    def core_stages(self) -> int:
        """Total cores across executed stages (Figure 5's x-axis)."""
        return sum(r.threads for r in self.history)

    def __repr__(self) -> str:
        return (
            f"<Job {self.name} d={self.size:.2f} stage={self.current_stage}"
            f"/{self.n_stages} {self.state.value}>"
        )


@dataclass
class StageTask:
    """One stage of one job, waiting in (or leaving) a stage queue."""

    job: Job
    stage: int
    enqueued_at: float
    uid: int = field(default_factory=lambda: next(_task_ids))
    #: Thread count, fixed when the task starts executing.
    threads: Optional[int] = None
    #: When the current ``threads`` decision was made (scheduler memo; a
    #: stale decision is re-taken after DECISION_TTL).
    decided_at: float = float("-inf")
    #: Which execution this is (1 = first try); retries carry it forward
    #: so retry budgets and queue-wait metrics stay honest.
    attempt: int = 1
    #: When the FIRST attempt entered the queue; ``enqueued_at`` is reset
    #: per retry, this is not.
    first_enqueued_at: Optional[float] = None
    #: A speculative duplicate launched by the straggler watchdog.
    speculative: bool = False
    #: Set when a twin already resolved this stage; dispatch drops the
    #: task instead of running it.
    cancelled: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.stage < self.job.n_stages:
            raise SchedulingError(
                f"stage {self.stage} out of range for {self.job.name}"
            )
        if self.attempt < 1:
            raise SchedulingError(f"attempt must be >= 1, got {self.attempt}")
        if self.first_enqueued_at is None:
            self.first_enqueued_at = self.enqueued_at

    @property
    def size(self) -> float:
        return self.job.size

    def execution_time(self, threads: int) -> float:
        """Model-predicted runtime of this task at *threads* threads."""
        return self.job.app.stage(self.stage).threaded_time(
            threads, self.job.input_gb
        )

    def __repr__(self) -> str:
        return f"<StageTask {self.job.name}/s{self.stage}>"
