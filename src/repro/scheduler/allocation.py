"""Resource-allocation algorithms (Table I, row 1).

These decide the degree of multithreading per pipeline stage -- "ordinarily
this is manually controlled by the user, but in this paper it will be
controlled by our resource allocation algorithm" (Section IV.1) -- trading
the reward for finishing sooner against core-time cost:

- **Greedy**: each stage picks its thread count at the moment it starts,
  maximising that stage's own marginal profit at the current core price.
- **Long-term**: a whole-pipeline plan is optimised once, at submission.
- **Long-term adaptive**: like long-term, but the remaining stages are
  re-optimised at every stage boundary with fresh queue estimates.
- **Best-constant**: one fixed plan, found by offline search over the full
  plan space, used for every run (the paper's baseline: "when every run
  uses the same execution plan").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from repro.apps.base import ApplicationModel, ExecutionPlan, StageModel
from repro.core.config import AllocationAlgorithm
from repro.core.errors import SchedulingError
from repro.core.plugins import Registry
from repro.knowledge.plane import EstimateProvider
from repro.scheduler.costs import TieredCostFunction
from repro.scheduler.estimator import PipelineEstimator
from repro.scheduler.rewards import RewardFunction
from repro.scheduler.tasks import Job

__all__ = [
    "AllocationContext",
    "AllocationPolicy",
    "GreedyAllocation",
    "LongTermAllocation",
    "LongTermAdaptiveAllocation",
    "BestConstantAllocation",
    "ALLOCATION_POLICIES",
    "find_best_constant_plan",
    "make_allocation_policy",
]

#: Plugin registry of allocation-policy factories.  Factories are invoked
#: with keyword arguments from the construction site (``constant_plan``
#: for best-constant); out-of-tree policies register here.
ALLOCATION_POLICIES: "Registry[AllocationPolicy]" = Registry("allocation")


@dataclass
class AllocationContext:
    """Everything an allocation decision may consult."""

    estimator: PipelineEstimator
    reward: RewardFunction
    costs: TieredCostFunction
    thread_choices: tuple[int, ...]
    now: float
    #: The knowledge plane's read interface.  Policies resolve stage
    #: models through :meth:`stage_model`, never through the application's
    #: raw coefficients, so refit facts reach every decision path.  Left
    #: ``None`` by bare test fixtures; the scheduler always supplies it.
    estimates: Optional[EstimateProvider] = None

    def stage_model(self, job: Job, stage: int) -> StageModel:
        """The current model for *stage* (plane-backed when wired)."""
        if self.estimates is not None:
            return self.estimates.stage_model(stage)
        wf = job._workflow
        if wf is not None:
            # Chain workflows alias the app's own StageModel objects, so
            # this is the legacy answer for them too.
            return wf.node(stage).model
        return job.app.stage(stage)


class AllocationPolicy(Protocol):
    """Decides thread counts for jobs/stages."""

    def on_submit(self, job: Job, ctx: AllocationContext) -> None:
        """Called once when *job* is submitted; may set ``job.plan``."""
        ...

    def threads_for_stage(self, job: Job, stage: int, ctx: AllocationContext) -> int:
        """Thread count for *stage*, called when the stage is dispatched."""
        ...


def _stage_profit(
    stage: StageModel,
    size: float,
    threads: int,
    marginal_value: float,
    core_cost: float,
) -> float:
    """Profit contribution of running one stage at *threads* threads.

    Benefit: latency saved vs. single-threaded, valued at the reward
    function's marginal rate.  Cost: core-time consumed (t cores for the
    threaded duration).
    """
    base = stage.execution_time(size)
    duration = stage.threaded_time(threads, size)
    return marginal_value * (base - duration) - core_cost * threads * duration


def _best_stage_threads(
    stage: StageModel,
    size: float,
    marginal_value: float,
    core_cost: float,
    choices: Sequence[int],
) -> int:
    # Hot path (called once per queued-task decision): compute the Amdahl
    # pieces inline, hoisting the base time out of the choice loop.
    base = stage.execution_time(size)
    c = stage.c
    serial_part = (1.0 - c) * base
    best_t, best_profit = choices[0], None
    for t in choices:
        duration = c * base / t + serial_part
        profit = marginal_value * (base - duration) - core_cost * t * duration
        if best_profit is None or profit > best_profit + 1e-12:
            best_t, best_profit = t, profit
    return best_t


def _stage_input(job: Job, stage: int) -> float:
    """Input size node *stage* will process.

    Chain jobs (and workflow nodes with unit scale) see ``job.input_gb``
    unchanged -- the same float object the legacy sizing used -- so this
    only diverges for DAG branches with a non-trivial input scale.
    """
    wf = job._workflow
    if wf is None:
        return job.input_gb
    return wf.node_input_gb(stage, job.input_gb)


def _optimise_plan(
    app: ApplicationModel,
    job: Job,
    ctx: AllocationContext,
    from_stage: int,
    sweeps: int = 2,
) -> ExecutionPlan:
    """Coordinate-descent plan optimisation over the job's remaining steps.

    The marginal value of saved time can depend on the plan itself (the
    throughput scheme values a TU more when the pipeline is fast), so we
    alternate: evaluate ETT under the current candidate plan, derive the
    marginal value there, re-pick each stage's threads, repeat.

    For chain jobs the remaining steps are ``from_stage..n-1``, exactly
    the legacy behaviour.  For DAG jobs completed nodes are sunk and every
    not-yet-done node is replanned, because parallel branches dispatch in
    an order the index gives no information about.
    """
    wf = job._workflow
    if wf is None or wf.is_chain:
        step_indices: Sequence[int] = range(from_stage, job.n_stages)
    else:
        step_indices = [
            i for i in range(job.n_stages) if not job.step_done(i)
        ]
    current = list(
        job.plan.threads if job.plan is not None else [1] * job.n_stages
    )
    core_cost = ctx.costs.marginal_core_cost(1)
    for _ in range(max(sweeps, 1)):
        ett = ctx.estimator.ett(job, ctx.now, threads_per_stage=current)
        value = ctx.reward.marginal_value(max(ett, 0.0), job.records)
        for stage_idx in step_indices:
            current[stage_idx] = _best_stage_threads(
                ctx.stage_model(job, stage_idx),
                _stage_input(job, stage_idx),
                value,
                core_cost,
                ctx.thread_choices,
            )
    return ExecutionPlan(tuple(current))


class GreedyAllocation:
    """Decide each stage's threads at dispatch time, myopically."""

    def on_submit(self, job: Job, ctx: AllocationContext) -> None:
        # No up-front plan; ETT estimation assumes 1 thread until each
        # stage actually starts.
        """Greedy plans nothing up front."""
        job.plan = None

    def threads_for_stage(self, job: Job, stage: int, ctx: AllocationContext) -> int:
        """Myopic best thread count at dispatch time."""
        ett = ctx.estimator.ett(job, ctx.now)
        value = ctx.reward.marginal_value(max(ett, 0.0), job.records)
        core_cost = ctx.costs.marginal_core_cost(1)
        return _best_stage_threads(
            ctx.stage_model(job, stage),
            _stage_input(job, stage),
            value,
            core_cost,
            ctx.thread_choices,
        )


class LongTermAllocation:
    """Optimise the whole pipeline's plan once, at submission."""

    def on_submit(self, job: Job, ctx: AllocationContext) -> None:
        """Optimise and pin the whole-pipeline plan."""
        job.plan = _optimise_plan(job.app, job, ctx, from_stage=0)

    def threads_for_stage(self, job: Job, stage: int, ctx: AllocationContext) -> int:
        """The pinned plan's thread count for the stage."""
        if job.plan is None:
            raise SchedulingError(f"{job.name} reached dispatch without a plan")
        return job.plan.threads[stage]


class LongTermAdaptiveAllocation(LongTermAllocation):
    """Long-term planning, re-optimised at every stage boundary."""

    def threads_for_stage(self, job: Job, stage: int, ctx: AllocationContext) -> int:
        # Replan the remaining stages with current queue estimates; stages
        # already executed keep their historical values (they are sunk).
        """Re-optimise remaining stages, then answer."""
        job.plan = _optimise_plan(job.app, job, ctx, from_stage=stage)
        return job.plan.threads[stage]


class BestConstantAllocation:
    """Every job uses the same fixed plan (the paper's baseline)."""

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan

    def on_submit(self, job: Job, ctx: AllocationContext) -> None:
        """Attach the fixed offline plan to the job."""
        if len(self.plan.threads) != job.n_stages:
            raise SchedulingError(
                f"constant plan has {len(self.plan.threads)} stages; "
                f"{job.name} has {job.n_stages}"
            )
        job.plan = self.plan

    def threads_for_stage(self, job: Job, stage: int, ctx: AllocationContext) -> int:
        """The constant plan's thread count."""
        return self.plan.threads[stage]


def find_best_constant_plan(
    app: ApplicationModel,
    reward: RewardFunction,
    core_cost: float,
    job_size: float,
    thread_choices: Sequence[int] = (1, 2, 4, 8, 16),
    max_exhaustive: int = 1_000_000,
    input_gb: Optional[float] = None,
) -> ExecutionPlan:
    """Offline search for the profit-maximising constant plan.

    Evaluates plans analytically at the mean job size with no queueing:
    profit(plan) = R(sum_i T_i(t_i), d) - sum_i core_cost * t_i * T_i(t_i).
    Exhaustive over ``choices^stages`` when that is affordable (5^7 for
    GATK), falling back to coordinate descent otherwise.

    ``input_gb`` is the stage-model input size when it differs from the
    reward-side job size (see ``WorkloadConfig.size_unit_gb``).
    """
    choices = tuple(sorted(set(int(t) for t in thread_choices)))
    n = app.n_stages
    space = len(choices) ** n
    d_gb = input_gb if input_gb is not None else job_size

    def profit(threads: Sequence[int]) -> float:
        latency = 0.0
        cost = 0.0
        for stage, t in zip(app.stages, threads):
            duration = stage.threaded_time(t, d_gb)
            latency += duration
            cost += core_cost * t * duration
        return reward(latency, job_size) - cost

    if space <= max_exhaustive:
        best: Optional[tuple[int, ...]] = None
        best_profit = float("-inf")
        for combo in itertools.product(choices, repeat=n):
            p = profit(combo)
            if p > best_profit:
                best, best_profit = combo, p
        assert best is not None
        return ExecutionPlan(best)

    # Coordinate descent fallback for very deep pipelines.
    current = [choices[0]] * n
    improved = True
    while improved:
        improved = False
        for i in range(n):
            best_t, best_p = current[i], profit(current)
            for t in choices:
                if t == current[i]:
                    continue
                candidate = list(current)
                candidate[i] = t
                p = profit(candidate)
                if p > best_p + 1e-12:
                    best_t, best_p = t, p
                    improved = True
            current[i] = best_t
    return ExecutionPlan(tuple(current))


# Built-in registrations.  Every allocation factory takes the same keyword
# context (currently just ``constant_plan``) so the construction site needs
# no per-policy branching; out-of-tree factories follow the same shape.
@ALLOCATION_POLICIES.register("greedy")
def _make_greedy(constant_plan: Optional[ExecutionPlan] = None) -> AllocationPolicy:
    return GreedyAllocation()


@ALLOCATION_POLICIES.register("long_term")
def _make_long_term(constant_plan: Optional[ExecutionPlan] = None) -> AllocationPolicy:
    return LongTermAllocation()


@ALLOCATION_POLICIES.register("long_term_adaptive")
def _make_long_term_adaptive(
    constant_plan: Optional[ExecutionPlan] = None,
) -> AllocationPolicy:
    return LongTermAdaptiveAllocation()


@ALLOCATION_POLICIES.register("best_constant")
def _make_best_constant(
    constant_plan: Optional[ExecutionPlan] = None,
) -> AllocationPolicy:
    if constant_plan is None:
        raise SchedulingError(
            "best-constant allocation requires a plan; use "
            "find_best_constant_plan() first"
        )
    return BestConstantAllocation(constant_plan)


@ALLOCATION_POLICIES.register("learned")
def _make_learned(constant_plan: Optional[ExecutionPlan] = None) -> AllocationPolicy:
    from repro.scheduler.learning import LearnedAllocation

    return LearnedAllocation()


def make_allocation_policy(
    algorithm: "AllocationAlgorithm | str",
    constant_plan: Optional[ExecutionPlan] = None,
) -> AllocationPolicy:
    """Instantiate the policy named by *algorithm*.

    A thin :data:`ALLOCATION_POLICIES` lookup (enum or raw string key);
    unknown names raise :class:`ConfigurationError` listing what is
    registered.
    """
    return ALLOCATION_POLICIES.create(algorithm, constant_plan=constant_plan)
