"""Reward functions (paper Section II-D).

Two schemes, quoted from the paper:

Time-oriented:
    "users offer a reward proportional to input data size for completion of
    their whole analysis pipeline, with a constant penalty per unit time the
    work is delayed":  R(d, t) = d * (Rmax - t * Rpenalty).

Throughput-oriented:
    "users offer a reward ... inversely proportional to the duration of the
    complete pipeline execution":  R(d, t) = d * Rscale / t.

Both take the pipeline *latency* t (queue entry of the first stage ->
completion of the last) and the job size d (records / GB-units).  The
time-oriented reward may go negative for very late work -- Figure 4's y-axis
indeed shows negative mean profits under heavy load.

``marginal_value`` is the scheduling signal: the reward gained per TU of
latency removed, used by allocation (how many threads is a TU worth?) and
predictive scaling (what does delaying this queue cost?).
"""

from __future__ import annotations

from typing import Protocol

from repro.core.config import RewardConfig
from repro.core.plugins import Registry

__all__ = [
    "RewardFunction",
    "TimeReward",
    "ThroughputReward",
    "REWARDS",
    "make_reward",
]

#: Plugin registry of reward-function families.  Each factory is called
#: with the :class:`RewardConfig` and returns a :class:`RewardFunction`;
#: out-of-tree schemes register here (see ``repro.core.plugins``).
REWARDS: "Registry[RewardFunction]" = Registry("reward")


class RewardFunction(Protocol):
    """Maps (latency, records) to CU, plus the latency sensitivity."""

    def __call__(self, latency: float, records: float) -> float:
        """Reward for completing *records* of work in *latency* TUs."""
        ...

    def marginal_value(self, latency: float, records: float) -> float:
        """-dR/dlatency at the given point: CU gained per TU saved."""
        ...


class TimeReward:
    """R(d, t) = d (Rmax - t Rpenalty)."""

    def __init__(self, rmax: float = 400.0, rpenalty: float = 15.0) -> None:
        if rmax <= 0:
            raise ValueError(f"rmax must be positive, got {rmax}")
        if rpenalty < 0:
            raise ValueError(f"rpenalty must be >= 0, got {rpenalty}")
        self.rmax = rmax
        self.rpenalty = rpenalty

    def __call__(self, latency: float, records: float) -> float:
        if latency < 0 or records < 0:
            raise ValueError("latency and records must be >= 0")
        return records * (self.rmax - latency * self.rpenalty)

    def marginal_value(self, latency: float, records: float) -> float:
        # Linear scheme: every TU saved is worth the same.
        """CU gained per TU saved: d * Rpenalty (constant)."""
        return records * self.rpenalty

    def breakeven_latency(self) -> float:
        """Latency at which the reward crosses zero."""
        if self.rpenalty == 0:
            return float("inf")
        return self.rmax / self.rpenalty

    def __repr__(self) -> str:
        return f"TimeReward(rmax={self.rmax}, rpenalty={self.rpenalty})"


class ThroughputReward:
    """R(d, t) = d Rscale / t."""

    #: Latencies below this are clamped: the physical pipeline can never be
    #: instantaneous, and 1/t explodes at 0.
    MIN_LATENCY = 1e-6

    def __init__(self, rscale: float = 15_000.0) -> None:
        if rscale <= 0:
            raise ValueError(f"rscale must be positive, got {rscale}")
        self.rscale = rscale

    def __call__(self, latency: float, records: float) -> float:
        if latency < 0 or records < 0:
            raise ValueError("latency and records must be >= 0")
        return records * self.rscale / max(latency, self.MIN_LATENCY)

    def marginal_value(self, latency: float, records: float) -> float:
        # dR/dt = -d Rscale / t^2; the scheme "rewards according to the
        # proportion of runtime that was eliminated", so saving a TU is
        # worth more when the pipeline is already fast.
        """CU gained per TU saved: d * Rscale / t^2."""
        t = max(latency, self.MIN_LATENCY)
        return records * self.rscale / (t * t)

    def __repr__(self) -> str:
        return f"ThroughputReward(rscale={self.rscale})"


@REWARDS.register("time")
def _make_time_reward(config: RewardConfig) -> RewardFunction:
    return TimeReward(rmax=config.rmax, rpenalty=config.rpenalty)


@REWARDS.register("throughput")
def _make_throughput_reward(config: RewardConfig) -> RewardFunction:
    return ThroughputReward(rscale=config.rscale)


def make_reward(config: RewardConfig) -> RewardFunction:
    """Build the reward function described by *config*.

    A thin registry lookup: ``config.scheme`` (enum or raw string) names
    the :data:`REWARDS` entry; unknown schemes raise
    :class:`~repro.core.errors.ConfigurationError` listing what is
    registered.
    """
    return REWARDS.create(config.scheme, config)
