"""Scheduler resilience mechanisms: what survives the chaos layer.

Four cooperating pieces, all driven by :class:`SCANScheduler`:

- :class:`RetryPolicy` -- per-task attempt budgets with capped exponential
  backoff before re-enqueue (replacing the seed's instant, unbounded
  re-queue on worker death).
- :class:`DeadLetterQueue` -- quarantine for tasks that exhausted their
  budget; their job transitions to ``JobState.FAILED`` and forfeits its
  reward, so one poison task cannot starve the platform.
- :class:`SpeculativeExecutor` -- a straggler watchdog: a running task
  that exceeds ``straggler_factor x`` the estimator's predicted duration
  gets ONE speculative duplicate; the first finisher wins, the loser is
  interrupted and its worker released.
- :class:`CircuitBreaker` -- repeated public-tier deploy failures open the
  breaker; the scaling policy then treats the public tier as unavailable
  until a half-open probe succeeds.

With no faults injected every mechanism is inert, so a fault-free session
is bit-identical to the seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.core.config import ResilienceConfig
from repro.core.errors import SchedulingError
from repro.scheduler.tasks import StageTask

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.desim.process import Process
    from repro.scheduler.workers import Worker

__all__ = [
    "RetryPolicy",
    "DeadLetter",
    "DeadLetterQueue",
    "BreakerState",
    "CircuitBreaker",
    "ExecutionAttempt",
    "ExecutionGroup",
    "SpeculativeExecutor",
]


# -- retry budgets ------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + capped exponential backoff schedule."""

    #: Executions a task may consume; 0 = unbounded (legacy behaviour).
    max_attempts: int = 0
    base_delay_tu: float = 0.25
    backoff_factor: float = 2.0
    max_delay_tu: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise SchedulingError("max_attempts must be >= 0")
        if self.base_delay_tu < 0 or self.max_delay_tu < 0:
            raise SchedulingError("retry delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise SchedulingError("backoff_factor must be >= 1")

    @staticmethod
    def from_config(cfg: ResilienceConfig) -> "RetryPolicy":
        if not cfg.enabled:
            # No resilience: the first failed execution is final (chaos
            # with no safety net -- the ablation baseline).
            return RetryPolicy(max_attempts=1, base_delay_tu=0.0)
        return RetryPolicy(
            max_attempts=cfg.max_attempts,
            base_delay_tu=cfg.retry_base_delay_tu,
            backoff_factor=cfg.retry_backoff_factor,
            max_delay_tu=cfg.retry_max_delay_tu,
        )

    def exhausted(self, attempts_used: int) -> bool:
        """Whether *attempts_used* executions consumed the whole budget."""
        return self.max_attempts > 0 and attempts_used >= self.max_attempts

    def delay_for(self, attempts_used: int) -> float:
        """Backoff before attempt ``attempts_used + 1`` (TU)."""
        if attempts_used < 1:
            raise SchedulingError("delay_for needs at least one used attempt")
        if self.base_delay_tu <= 0:
            return 0.0
        delay = self.base_delay_tu * self.backoff_factor ** (attempts_used - 1)
        return min(delay, self.max_delay_tu)


# -- dead letters -------------------------------------------------------------
@dataclass(frozen=True)
class DeadLetter:
    """One quarantined item with its post-mortem.

    ``task`` is a :class:`StageTask` when the scheduler dead-letters a
    stage execution; the service plane quarantines whole tenant jobs
    through the same queue, so the payload is duck-typed (anything with
    an optional ``stage`` attribute groups under :meth:`by_stage`).
    """

    task: Any
    reason: str
    time: float


class DeadLetterQueue:
    """Quarantine for work that exhausted its retry budget."""

    def __init__(self) -> None:
        self._entries: list[DeadLetter] = []

    def push(self, task: Any, reason: str, now: float) -> DeadLetter:
        entry = DeadLetter(task=task, reason=reason, time=now)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._entries)

    def by_stage(self) -> dict[int, int]:
        """Dead-letter counts per pipeline stage (service jobs: stage -1)."""
        out: dict[int, int] = {}
        for entry in self._entries:
            stage = getattr(entry.task, "stage", -1)
            out[stage] = out.get(stage, 0) + 1
        return out


# -- circuit breaker ----------------------------------------------------------
class BreakerState(str, enum.Enum):
    """Classic three-state breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trips after consecutive failures; half-open probe after a cooldown.

    Deploys resolve synchronously in the simulation, so the half-open
    state needs no in-flight tracking: once the cooldown elapses the next
    attempt IS the probe -- success closes the breaker, failure re-opens
    it for another cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown_tu: float = 20.0) -> None:
        if threshold < 1:
            raise SchedulingError("breaker threshold must be >= 1")
        if cooldown_tu <= 0:
            raise SchedulingError("breaker cooldown must be positive")
        self.threshold = threshold
        self.cooldown_tu = cooldown_tu
        self._consecutive_failures = 0
        self._open_until: Optional[float] = None
        self.opened_count = 0

    def state(self, now: float) -> BreakerState:
        if self._open_until is None:
            return BreakerState.CLOSED
        if now < self._open_until:
            return BreakerState.OPEN
        return BreakerState.HALF_OPEN

    def allow(self, now: float) -> bool:
        """Whether a request may go through right now."""
        return self.state(now) is not BreakerState.OPEN

    def record_failure(self, now: float) -> bool:
        """Note a failed request; returns True when the breaker (re)opens."""
        state = self.state(now)
        self._consecutive_failures += 1
        if state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN.
            self._open_until = now + self.cooldown_tu
            self.opened_count += 1
            return True
        if (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.threshold
        ):
            self._open_until = now + self.cooldown_tu
            self.opened_count += 1
            return True
        return False

    def record_success(self, now: float) -> bool:
        """Note a successful request; returns True when the breaker closes."""
        was_tripped = self._open_until is not None
        self._consecutive_failures = 0
        self._open_until = None
        return was_tripped


# -- speculative re-execution -------------------------------------------------
@dataclass
class ExecutionAttempt:
    """One live execution of a stage task on a worker."""

    task: StageTask
    worker: "Worker"
    process: "Process"

    @property
    def running(self) -> bool:
        return self.process.is_alive


@dataclass
class ExecutionGroup:
    """All attempts (primary + at most one speculative) of one stage."""

    key: tuple[int, int]
    primary: Optional[ExecutionAttempt] = None
    speculative: Optional[ExecutionAttempt] = None
    #: A speculative task launched but not yet dispatched to a worker.
    pending_speculative: Optional[StageTask] = None
    resolved: bool = False

    def attempt_for(self, task: StageTask) -> Optional[ExecutionAttempt]:
        if self.primary is not None and self.primary.task is task:
            return self.primary
        if self.speculative is not None and self.speculative.task is task:
            return self.speculative
        return None

    def twin_of(self, task: StageTask) -> Optional[ExecutionAttempt]:
        """The other live attempt, if any."""
        if self.primary is not None and self.primary.task is not task:
            return self.primary
        if self.speculative is not None and self.speculative.task is not task:
            return self.speculative
        return None


class SpeculativeExecutor:
    """Straggler watchdog + first-finisher-wins twin bookkeeping.

    The scheduler registers every execution here (cheap when speculation
    is off: one dict entry per in-flight stage).  When a watched task runs
    past ``straggler_factor x`` its predicted duration, the executor asks
    the scheduler (via ``on_launch``) to enqueue exactly one speculative
    duplicate.  Whichever attempt finishes first resolves the group; the
    loser is cancelled.
    """

    def __init__(
        self,
        enabled: bool = True,
        straggler_factor: float = 3.0,
        on_launch: Optional[Callable[[StageTask], None]] = None,
    ) -> None:
        if straggler_factor <= 1.0:
            raise SchedulingError("straggler_factor must exceed 1")
        self.enabled = enabled
        self.straggler_factor = straggler_factor
        #: Invoked with the fresh speculative task; the scheduler enqueues
        #: it through its normal dispatch machinery.
        self.on_launch = on_launch
        self._groups: dict[tuple[int, int], ExecutionGroup] = {}
        self.launched = 0
        self.won = 0
        self.lost = 0

    @staticmethod
    def key_for(task: StageTask) -> tuple[int, int]:
        return (task.job.uid, task.stage)

    def register(
        self, task: StageTask, worker: "Worker", process: "Process"
    ) -> Optional[ExecutionGroup]:
        """Track a starting execution; None for a stale speculative one.

        A speculative attempt whose group already resolved (or vanished)
        must not run -- the caller releases its worker unstarted.
        """
        key = self.key_for(task)
        attempt = ExecutionAttempt(task=task, worker=worker, process=process)
        if task.speculative:
            group = self._groups.get(key)
            if group is None or group.resolved:
                return None
            group.speculative = attempt
            if group.pending_speculative is task:
                group.pending_speculative = None
            return group
        group = ExecutionGroup(key=key, primary=attempt)
        self._groups[key] = group
        return group

    def watchdog(self, env, group: ExecutionGroup, predicted_duration: float):
        """Process: launch one speculative duplicate if the primary lags.

        Armed when the primary starts; fires once at the straggler
        deadline.  A primary that already finished (or died, or spawned a
        twin some other way) makes this a no-op.
        """
        deadline = self.straggler_factor * predicted_duration
        if deadline <= 0:
            return
        yield env.timeout(deadline)
        if not self.enabled or group.resolved:
            return
        if group.speculative is not None or group.pending_speculative is not None:
            return
        primary = group.primary
        if primary is None or not primary.running:
            return
        task = primary.task
        if task.job.is_failed:
            return
        duplicate = StageTask(
            job=task.job,
            stage=task.stage,
            enqueued_at=env.now,
            attempt=task.attempt,
            first_enqueued_at=task.first_enqueued_at,
            speculative=True,
        )
        group.pending_speculative = duplicate
        self.launched += 1
        if self.on_launch is not None:
            self.on_launch(duplicate)

    def resolve(
        self, group: ExecutionGroup, winner: StageTask
    ) -> Optional[ExecutionAttempt]:
        """First finisher wins: mark resolved, cancel the twin.

        Returns the losing *running* attempt (for the scheduler to
        interrupt), if there is one.  A twin still waiting in a queue is
        cancelled in place and dropped at dispatch.
        """
        group.resolved = True
        self._groups.pop(group.key, None)
        if winner.speculative:
            self.won += 1
        if group.pending_speculative is not None:
            group.pending_speculative.cancelled = True
            if group.pending_speculative is not winner:
                self.lost += 1
            group.pending_speculative = None
        loser = group.twin_of(winner)
        if loser is not None and loser.running:
            return loser
        return None

    def twin_survives(self, group: ExecutionGroup, task: StageTask) -> bool:
        """Detach a failed attempt; True when a twin carries on.

        Called when *task*'s execution failed (VM death, corruption).  If
        the other attempt is still running -- or still queued -- the stage
        does not need a retry; the twin is promoted to sole owner.
        """
        attempt = group.attempt_for(task)
        if attempt is not None:
            if group.primary is attempt:
                group.primary = None
            else:
                group.speculative = None
        twin = group.primary or group.speculative
        if twin is not None and twin.running:
            return True
        return group.pending_speculative is not None

    def discard(self, task: StageTask) -> None:
        """Forget a group whose every attempt failed (before retry/DLQ)."""
        self._groups.pop(self.key_for(task), None)

    def in_flight(self) -> int:
        """Unresolved execution groups (for diagnostics)."""
        return len(self._groups)
