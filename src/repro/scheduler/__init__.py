"""The SCAN Scheduler.

"The SCAN provides a scheduler for deploying batch-oriented workloads, such
as the GATK pipeline, against an elastic cloud environment.  It provides a
set of work queues and a worker pool that services each one ... Tasks are
scheduled by a 'reward' algorithm with the aim to maximise profit" (paper
Sections III-A and III-A.2).

- :mod:`repro.scheduler.rewards` -- the time-oriented and throughput-oriented
  reward functions of Section II-D.
- :mod:`repro.scheduler.costs` -- the tiered cost function.
- :mod:`repro.scheduler.tasks` -- jobs (pipeline runs) and stage tasks.
- :mod:`repro.scheduler.queues` -- per-stage FIFO queues with wait tracking.
- :mod:`repro.scheduler.estimator` -- EET/EQT/ETT estimation (Eq. 2) and the
  delay cost (Eq. 1).
- :mod:`repro.scheduler.allocation` -- the four resource-allocation
  algorithms of Table I (greedy, long-term, long-term adaptive,
  best-constant).
- :mod:`repro.scheduler.scaling` -- the three horizontal-scaling algorithms
  (always, never, predictive).
- :mod:`repro.scheduler.workers` -- worker pools over CELAR-managed VMs with
  re-pooling penalties.
- :mod:`repro.scheduler.scheduler` -- the orchestrating SCANScheduler.
"""

from repro.scheduler.rewards import (
    RewardFunction,
    TimeReward,
    ThroughputReward,
    make_reward,
)
from repro.scheduler.costs import TieredCostFunction
from repro.scheduler.tasks import Job, JobState, StageTask, StageRecord
from repro.scheduler.queues import StageQueue, QueueSet
from repro.scheduler.estimator import PipelineEstimator, delay_cost
from repro.scheduler.allocation import (
    AllocationContext,
    AllocationPolicy,
    GreedyAllocation,
    LongTermAllocation,
    LongTermAdaptiveAllocation,
    BestConstantAllocation,
    find_best_constant_plan,
    make_allocation_policy,
)
from repro.scheduler.scaling import (
    ScalingContext,
    ScalingPolicy,
    AlwaysScale,
    NeverScale,
    PredictiveScale,
    make_scaling_policy,
)
from repro.scheduler.workers import Worker, WorkerPools
from repro.scheduler.resilience import (
    RetryPolicy,
    DeadLetter,
    DeadLetterQueue,
    BreakerState,
    CircuitBreaker,
    SpeculativeExecutor,
)
from repro.scheduler.scheduler import SCANScheduler

__all__ = [
    "RewardFunction",
    "TimeReward",
    "ThroughputReward",
    "make_reward",
    "TieredCostFunction",
    "Job",
    "JobState",
    "StageTask",
    "StageRecord",
    "StageQueue",
    "QueueSet",
    "PipelineEstimator",
    "delay_cost",
    "AllocationContext",
    "AllocationPolicy",
    "GreedyAllocation",
    "LongTermAllocation",
    "LongTermAdaptiveAllocation",
    "BestConstantAllocation",
    "find_best_constant_plan",
    "make_allocation_policy",
    "ScalingContext",
    "ScalingPolicy",
    "AlwaysScale",
    "NeverScale",
    "PredictiveScale",
    "make_scaling_policy",
    "Worker",
    "WorkerPools",
    "RetryPolicy",
    "DeadLetter",
    "DeadLetterQueue",
    "BreakerState",
    "CircuitBreaker",
    "SpeculativeExecutor",
    "SCANScheduler",
]
