"""SCAN Workers and worker pools.

"SCAN Workers are responsible for executing tasks as instructed by the
scheduler.  The workers are very simple entities: they are assigned SCAN
tasks, which they run until completion, and provide feedback concerning
their resource utilization to the scheduler.  Each worker has a software
stack suitable for a particular application and a certain hardware
configuration" (paper Section III-A.3).

A :class:`Worker` wraps a CELAR-managed VM; :class:`WorkerPools` tracks the
idle/busy/booting population, matches tasks to workers (smallest adequate
instance first), re-pools idle workers to new vCPU shapes (paying the
restart penalty), and reaps workers that have idled past their timeout.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.cloud.celar import CelarManager
from repro.cloud.failures import FailureModel
from repro.cloud.infrastructure import TierName
from repro.cloud.vm import VirtualMachine
from repro.core.errors import SchedulingError
from repro.desim.engine import Environment

__all__ = ["Worker", "WorkerPools"]

_worker_ids = itertools.count(1)


class Worker:
    """A VM labelled with an application software stack."""

    def __init__(self, vm: VirtualMachine, worker_class: str) -> None:
        self.uid = next(_worker_ids)
        self.vm = vm
        self.worker_class = worker_class
        self.idle_since: Optional[float] = None
        #: Whether a failure doom-timer is already armed for this worker.
        self.doom_armed = False
        #: Predicted completion time of the current task (for wait
        #: estimation); None while idle.
        self.busy_until: Optional[float] = None
        self.tasks_executed = 0

    @property
    def cores(self) -> int:
        return self.vm.cores

    @property
    def tier(self) -> TierName:
        return self.vm.tier

    @property
    def alive(self) -> bool:
        return self.vm.alive

    def __repr__(self) -> str:
        return (
            f"<Worker {self.uid} {self.worker_class} {self.cores}c "
            f"{self.tier.value} {self.vm.state.value}>"
        )


class WorkerPools:
    """The scheduler's live worker population."""

    def __init__(
        self,
        env: Environment,
        celar: CelarManager,
        idle_timeout_tu: float = 2.0,
        reap_interval_tu: float = 1.0,
        failure_model: Optional[FailureModel] = None,
    ) -> None:
        if idle_timeout_tu < 0 or reap_interval_tu <= 0:
            raise SchedulingError("invalid reaper configuration")
        self.env = env
        self.celar = celar
        self.idle_timeout_tu = idle_timeout_tu
        self.reap_interval_tu = reap_interval_tu
        self.failure_model = failure_model
        self._idle: list[Worker] = []
        self._busy: set[Worker] = set()
        #: Workers currently booting/resizing, per stage that requested them.
        self.booting_for_stage: dict[int, int] = {}
        #: Invoked (with no args) whenever a worker becomes available.
        self.on_available: Optional[Callable[[], None]] = None
        #: Invoked with the victim when a BUSY worker's VM fails; the
        #: scheduler uses it to interrupt and retry the running task.
        self.on_worker_failed: Optional[Callable[[Worker], None]] = None
        self.hires = {TierName.PRIVATE: 0, TierName.PUBLIC: 0}
        self.repools = 0
        self.reaped = 0
        self.failed = 0
        self._reaper_started = False

    # -- population views ------------------------------------------------------
    @property
    def idle_workers(self) -> tuple[Worker, ...]:
        return tuple(self._idle)

    @property
    def busy_workers(self) -> frozenset[Worker]:
        return frozenset(self._busy)

    def total_alive(self) -> int:
        """Idle + busy workers."""
        return len(self._idle) + len(self._busy)

    def booting_total(self) -> int:
        """Workers currently booting/resizing."""
        return sum(self.booting_for_stage.values())

    # -- matching ---------------------------------------------------------------
    def acquire(self, worker_class: str, cores: int) -> Optional[Worker]:
        """Take an idle worker of exactly *cores* cores (and class).

        Matching is exact-shape: workers belong to pools keyed by their
        vCPU count ("a worker ... assigned to a pool that uses a different
        number of threads" must be re-pooled through a restart, paper
        Section IV-B).  Class must match too -- workers carry
        per-application software stacks.
        """
        for idx, worker in enumerate(self._idle):
            if worker.worker_class == worker_class and worker.cores == cores:
                self._idle.pop(idx)
                worker.idle_since = None
                self._busy.add(worker)
                return worker
        return None

    def repool_candidate(self, worker_class: str, cores: int) -> Optional[Worker]:
        """An idle worker that could be resized to *cores*.

        Prefers shrink/same-size resizes (they never need new tier
        capacity); a growing resize is offered only if its tier can absorb
        the extra cores.
        """
        candidates = [w for w in self._idle if w.worker_class == worker_class]
        candidates.sort(key=lambda w: (w.cores < cores, abs(w.cores - cores)))
        for worker in candidates:
            if worker.cores == cores:
                # Same shape, different pool semantics: still needs the
                # restart (thread-count change is a VCPU reconfiguration in
                # the paper's CELAR flow), but always feasible.
                return worker
            delta = cores - worker.cores
            if delta < 0:
                return worker
            tier = worker.vm.infrastructure.tier(worker.tier)
            if tier.can_allocate(delta):
                return worker
        return None

    def repool(self, worker: Worker, cores: int, stage: int) -> Worker:
        """Resize an idle worker for a new role (restart penalty).

        The reshape (and its core-delta accounting) happens synchronously;
        the reboot runs as a background process and the worker re-enters
        the idle pool when READY.
        """
        if worker not in self._idle:
            raise SchedulingError(f"{worker!r} is not idle; cannot repool")
        self._idle.remove(worker)
        worker.idle_since = None
        self.celar.begin_resize(worker.vm, cores)
        self.booting_for_stage[stage] = self.booting_for_stage.get(stage, 0) + 1
        self.repools += 1
        self.env.process(self._boot_and_attach(worker, stage))
        return worker

    def hire(self, worker_class: str, cores: int, tier: TierName, stage: int) -> Worker:
        """Deploy a fresh worker for *stage*: cores claimed now, boot async."""
        vm = self.celar.deploy(cores, tier)
        worker = Worker(vm, worker_class)
        self.booting_for_stage[stage] = self.booting_for_stage.get(stage, 0) + 1
        self.hires[tier] += 1
        self.env.process(self._boot_and_attach(worker, stage))
        return worker

    def _boot_and_attach(self, worker: Worker, stage: int):
        """Process: boot a claimed worker, then offer it to the pool."""
        try:
            yield from worker.vm.boot()
        finally:
            self.booting_for_stage[stage] -= 1
        if worker.vm.alive:
            if self.failure_model is not None and not worker.doom_armed:
                worker.doom_armed = True
                self.env.process(self._doom(worker))
            self._make_available(worker)

    def _doom(self, worker: Worker):
        """Process: kill the worker's VM after its drawn lifetime.

        Exponential lifetimes are memoryless, so one timer per worker is
        the exact model regardless of repools/reboots in between.
        """
        assert self.failure_model is not None
        lifetime = self.failure_model.draw_lifetime(worker.tier)
        yield self.env.timeout(lifetime)
        if not worker.vm.alive:
            return  # already reaped/terminated: nothing to kill
        self.failed += 1
        was_busy = worker in self._busy
        if worker in self._idle:
            self._idle.remove(worker)
        self._busy.discard(worker)
        self.celar.terminate(worker.vm)
        if was_busy and self.on_worker_failed is not None:
            self.on_worker_failed(worker)
        # Freed capacity (and a possibly-lost worker) can change dispatch
        # decisions either way.
        if self.on_available is not None:
            self.on_available()

    def _make_available(self, worker: Worker) -> None:
        worker.idle_since = self.env.now
        worker.busy_until = None
        self._idle.append(worker)
        if self.on_available is not None:
            self.on_available()

    def release(self, worker: Worker) -> None:
        """Return a worker to the idle pool after a task."""
        if worker not in self._busy:
            raise SchedulingError(f"{worker!r} was not busy")
        self._busy.remove(worker)
        worker.vm.mark_idle()
        self._make_available(worker)

    # -- wait estimation ----------------------------------------------------------
    def estimate_wait(self, worker_class: str, cores: int, penalty_tu: float) -> float:
        """Expected time until a suitable worker frees up.

        Minimum over busy workers of their predicted remaining time; a
        worker whose shape does not match exactly adds the re-pool
        (restart) penalty.  Returns ``inf`` when nothing is busy (nothing
        will ever free by itself).
        """
        best = float("inf")
        now = self.env.now
        for worker in self._busy:
            if worker.busy_until is None:
                continue
            remaining = max(worker.busy_until - now, 0.0)
            if worker.worker_class != worker_class or worker.cores != cores:
                remaining += penalty_tu
            best = min(best, remaining)
        return best

    # -- reaping ---------------------------------------------------------------
    def start_reaper(self):
        """Process: periodically terminate workers idle past the timeout."""
        if self._reaper_started:
            raise SchedulingError("reaper already running")
        self._reaper_started = True
        while True:
            yield self.env.timeout(self.reap_interval_tu)
            self.reap(self.env.now)

    def reap(self, now: float) -> int:
        """Terminate idle-expired workers; returns how many died."""
        survivors: list[Worker] = []
        dead = 0
        for worker in self._idle:
            if (
                worker.idle_since is not None
                and now - worker.idle_since >= self.idle_timeout_tu
            ):
                self.celar.terminate(worker.vm)
                dead += 1
            else:
                survivors.append(worker)
        self._idle = survivors
        self.reaped += dead
        if dead and self.on_available is not None:
            # Freed tier capacity may unblock a waiting hire decision.
            self.on_available()
        return dead

    def force_free_private(self, cores: int) -> bool:
        """Terminate idle private workers until *cores* fit; True on success.

        Used to break the never-scale stall where the private tier is full
        of idle-but-wrong-shape workers.
        """
        private = [w for w in self._idle if w.tier is TierName.PRIVATE]
        private.sort(key=lambda w: -w.cores)
        tier = self.celar.infrastructure.private
        for worker in private:
            if tier.can_allocate(cores):
                break
            self._idle.remove(worker)
            self.celar.terminate(worker.vm)
            self.reaped += 1
        return tier.can_allocate(cores)
