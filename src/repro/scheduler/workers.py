"""SCAN Workers and worker pools.

"SCAN Workers are responsible for executing tasks as instructed by the
scheduler.  The workers are very simple entities: they are assigned SCAN
tasks, which they run until completion, and provide feedback concerning
their resource utilization to the scheduler.  Each worker has a software
stack suitable for a particular application and a certain hardware
configuration" (paper Section III-A.3).

A :class:`Worker` wraps a CELAR-managed VM; :class:`WorkerPools` tracks the
idle/busy/booting population, matches tasks to workers (smallest adequate
instance first), re-pools idle workers to new vCPU shapes (paying the
restart penalty), and reaps workers that have idled past their timeout.
Chaos (VM crashes, boot failures) arrives through an optional
:class:`~repro.cloud.faults.FaultInjector`.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Callable, Optional

from repro.cloud.celar import CelarManager
from repro.cloud.failures import FailureModel
from repro.cloud.faults import FaultInjector
from repro.cloud.vm import VirtualMachine, VMState
from repro.core.errors import SchedulingError
from repro.desim.engine import Environment

__all__ = ["Worker", "WorkerPools"]

_worker_ids = itertools.count(1)


class Worker:
    """A VM labelled with an application software stack."""

    def __init__(self, vm: VirtualMachine, worker_class: str) -> None:
        self.uid = next(_worker_ids)
        self.vm = vm
        self.worker_class = worker_class
        self.idle_since: Optional[float] = None
        #: Whether a failure doom-timer is already armed for this worker.
        self.doom_armed = False
        #: Whether a spot-eviction timer is already armed for this worker.
        self.eviction_armed = False
        #: Set when the provider reclaimed this worker's spot capacity;
        #: the scheduler reports the failure as an eviction.
        self.evicted = False
        #: Predicted completion time of the current task (for wait
        #: estimation); None while idle.
        self.busy_until: Optional[float] = None
        self.tasks_executed = 0

    @property
    def cores(self) -> int:
        return self.vm.cores

    @property
    def tier(self) -> str:
        return self.vm.tier

    @property
    def alive(self) -> bool:
        return self.vm.alive

    def __repr__(self) -> str:
        return (
            f"<Worker {self.uid} {self.worker_class} {self.cores}c "
            f"{self.tier} {self.vm.state.value}>"
        )


class WorkerPools:
    """The scheduler's live worker population."""

    def __init__(
        self,
        env: Environment,
        celar: CelarManager,
        idle_timeout_tu: float = 2.0,
        reap_interval_tu: float = 1.0,
        failure_model: Optional[FailureModel] = None,
        injector: Optional[FaultInjector] = None,
        tracer=None,
    ) -> None:
        if idle_timeout_tu < 0 or reap_interval_tu <= 0:
            raise SchedulingError("invalid reaper configuration")
        if injector is None and failure_model is not None:
            # Legacy crash-only callers hand us a bare FailureModel.
            injector = FaultInjector.from_failure_model(failure_model)
        self.env = env
        self.celar = celar
        self.idle_timeout_tu = idle_timeout_tu
        self.reap_interval_tu = reap_interval_tu
        self.injector = injector
        #: Optional telemetry SpanTracer; boot/resize intervals appear on
        #: each worker's trace lane under the "cloud" category.  Passive:
        #: no clock writes, no RNG draws.
        self.tracer = tracer
        if tracer is not None:
            from repro.telemetry.tracing import lane_for_worker

            self._lane_for_worker = lane_for_worker
        self._idle: list[Worker] = []
        self._busy: set[Worker] = set()
        #: Workers currently booting/resizing, per stage that requested
        #: them.  A Counter so absent stages read 0; zero-count entries are
        #: pruned as boots finish (they used to linger forever).
        self.booting_for_stage: Counter[int] = Counter()
        #: Invoked (with no args) whenever a worker becomes available.
        self.on_available: Optional[Callable[[], None]] = None
        #: Invoked with the victim when a BUSY worker's VM fails; the
        #: scheduler uses it to interrupt and retry the running task.
        self.on_worker_failed: Optional[Callable[[Worker], None]] = None
        #: Invoked with (worker, stage) when an injected boot failure kills
        #: a worker before it reaches READY.
        self.on_boot_failed: Optional[Callable[[Worker, int], None]] = None
        self.hires = Counter(
            {name: 0 for name in celar.infrastructure.tier_names()}
        )
        self.repools = 0
        self.reaped = 0
        self.failed = 0
        self.boot_failures = 0
        self.evicted = 0
        self._reaper_started = False

    @property
    def failure_model(self) -> Optional[FailureModel]:
        """The crash lifetime model, if crashes are enabled (legacy view)."""
        if self.injector is None:
            return None
        return self.injector.crash_model

    @property
    def _crashes_enabled(self) -> bool:
        return self.injector is not None and self.injector.crashes_enabled

    # -- population views ------------------------------------------------------
    @property
    def idle_workers(self) -> tuple[Worker, ...]:
        return tuple(self._idle)

    @property
    def busy_workers(self) -> frozenset[Worker]:
        return frozenset(self._busy)

    def total_alive(self) -> int:
        """Idle + busy workers."""
        return len(self._idle) + len(self._busy)

    def booting_total(self) -> int:
        """Workers currently booting/resizing."""
        return sum(self.booting_for_stage.values())

    # -- matching ---------------------------------------------------------------
    def acquire(self, worker_class: str, cores: int) -> Optional[Worker]:
        """Take an idle worker of exactly *cores* cores (and class).

        Matching is exact-shape: workers belong to pools keyed by their
        vCPU count ("a worker ... assigned to a pool that uses a different
        number of threads" must be re-pooled through a restart, paper
        Section IV-B).  Class must match too -- workers carry
        per-application software stacks.
        """
        for idx, worker in enumerate(self._idle):
            if worker.worker_class == worker_class and worker.cores == cores:
                self._idle.pop(idx)
                worker.idle_since = None
                self._busy.add(worker)
                return worker
        return None

    def repool_candidate(self, worker_class: str, cores: int) -> Optional[Worker]:
        """An idle worker that could be resized to *cores*.

        Prefers shrink/same-size resizes (they never need new tier
        capacity); a growing resize is offered only if its tier can absorb
        the extra cores.
        """
        candidates = [w for w in self._idle if w.worker_class == worker_class]
        candidates.sort(key=lambda w: (w.cores < cores, abs(w.cores - cores)))
        for worker in candidates:
            if worker.cores == cores:
                # Same shape, different pool semantics: still needs the
                # restart (thread-count change is a VCPU reconfiguration in
                # the paper's CELAR flow), but always feasible.
                return worker
            delta = cores - worker.cores
            if delta < 0:
                return worker
            tier = worker.vm.infrastructure.tier(worker.tier)
            if tier.can_allocate(delta):
                return worker
        return None

    def repool(self, worker: Worker, cores: int, stage: int) -> Worker:
        """Resize an idle worker for a new role (restart penalty).

        The reshape (and its core-delta accounting) happens synchronously;
        the reboot runs as a background process and the worker re-enters
        the idle pool when READY.
        """
        if worker not in self._idle:
            raise SchedulingError(f"{worker!r} is not idle; cannot repool")
        self._idle.remove(worker)
        worker.idle_since = None
        self.celar.begin_resize(worker.vm, cores)
        self.booting_for_stage[stage] += 1
        self.repools += 1
        self.env.process(self._boot_and_attach(worker, stage))
        return worker

    def hire(self, worker_class: str, cores: int, tier: str, stage: int) -> Worker:
        """Deploy a fresh worker for *stage*: cores claimed now, boot async.

        May raise :class:`~repro.core.errors.TransientDeployError` when a
        fault injector is bouncing deploys; nothing is claimed in that case.
        """
        vm = self.celar.deploy(cores, tier)
        worker = Worker(vm, worker_class)
        self.booting_for_stage[stage] += 1
        self.hires[vm.tier] += 1
        self.env.process(self._boot_and_attach(worker, stage))
        return worker

    def _finish_boot_slot(self, stage: int) -> None:
        """Release one booting slot; prune the stage entry at zero."""
        self.booting_for_stage[stage] -= 1
        if self.booting_for_stage[stage] <= 0:
            del self.booting_for_stage[stage]

    def _boot_and_attach(self, worker: Worker, stage: int):
        """Process: boot a claimed worker, then offer it to the pool.

        Three exits: the happy path attaches the worker; an injected boot
        failure terminates it (reported via ``on_boot_failed``); a crash
        doom-timer may also have killed the VM mid-boot.  Every exit
        notifies ``on_available`` -- a stage that waited on this boot must
        re-decide even (especially) when the worker never arrives, or it
        would stall forever.
        """
        span = None
        if self.tracer is not None:
            lane = self.tracer.lane(
                self._lane_for_worker(worker.uid),
                f"worker {worker.uid} ({worker.tier} x{worker.cores})",
            )
            # Boot spans the startup penalty in sim time -> sync=False.
            span = self.tracer.span(
                "vm.boot",
                "cloud",
                lane=lane,
                args={"tier": worker.tier, "cores": worker.cores,
                      "stage": stage},
                sync=False,
            )
        try:
            if span is not None:
                with span:
                    yield from worker.vm.boot()
            else:
                yield from worker.vm.boot()
        finally:
            self._finish_boot_slot(stage)
        boot_failed = False
        if (
            worker.vm.alive
            and self.injector is not None
            and self.injector.boot_fails(worker.tier)
        ):
            boot_failed = True
            self.boot_failures += 1
            self.celar.terminate(worker.vm)
        if worker.vm.alive:
            if self._crashes_enabled and not worker.doom_armed:
                worker.doom_armed = True
                self.env.process(self._doom(worker))
            eviction_mtbf = self._eviction_mtbf(worker)
            if eviction_mtbf is not None and not worker.eviction_armed:
                worker.eviction_armed = True
                self.env.process(self._evict(worker, eviction_mtbf))
            self._make_available(worker)
        else:
            if boot_failed and self.on_boot_failed is not None:
                self.on_boot_failed(worker, stage)
            if self.on_available is not None:
                self.on_available()

    def _doom(self, worker: Worker):
        """Process: kill the worker's VM after its drawn lifetime.

        Exponential lifetimes are memoryless, so one timer per worker is
        the exact model regardless of repools/reboots in between.
        """
        assert self.injector is not None
        lifetime = self.injector.draw_lifetime(worker.tier)
        yield self.env.timeout(lifetime)
        if not worker.vm.alive:
            return  # already reaped/terminated: nothing to kill
        if worker.vm.state is VMState.BOOTING:
            # Mid-repool death: the worker sits in neither pool (repool
            # removed it from idle).  Terminate now; _boot_and_attach sees
            # the dead VM when the boot timeout elapses and notifies the
            # waiting stage itself.
            self.failed += 1
            self.celar.terminate(worker.vm)
            return
        self.failed += 1
        was_busy = worker in self._busy
        if worker in self._idle:
            self._idle.remove(worker)
        self._busy.discard(worker)
        self.celar.terminate(worker.vm)
        if was_busy and self.on_worker_failed is not None:
            self.on_worker_failed(worker)
        # Freed capacity (and a possibly-lost worker) can change dispatch
        # decisions either way.
        if self.on_available is not None:
            self.on_available()

    def _eviction_mtbf(self, worker: Worker) -> Optional[float]:
        """The worker tier's eviction MTBF, if evictions apply to it.

        Only spot-style backends expose ``effective_eviction_mtbf``; an
        injector must be present (it owns the ``faults.spot`` stream).
        """
        if self.injector is None:
            return None
        tier = self.celar.infrastructure.tier(worker.tier)
        return getattr(tier, "effective_eviction_mtbf", None)

    def _evict(self, worker: Worker, mtbf_tu: float):
        """Process: the provider reclaims a spot worker after an
        exponential lifetime drawn from the ``faults.spot`` stream.

        Mirrors :meth:`_doom` exactly -- a busy victim's task is
        interrupted via ``on_worker_failed`` and flows through the
        scheduler's retry / dead-letter resilience path.
        """
        assert self.injector is not None
        lifetime = self.injector.draw_eviction(mtbf_tu)
        yield self.env.timeout(lifetime)
        if not worker.vm.alive:
            return
        worker.evicted = True
        tier = self.celar.infrastructure.tier(worker.tier)
        record = getattr(tier, "record_eviction", None)
        if record is not None:
            record()
        self.evicted += 1
        if worker.vm.state is VMState.BOOTING:
            self.failed += 1
            self.celar.terminate(worker.vm)
            return
        self.failed += 1
        was_busy = worker in self._busy
        if worker in self._idle:
            self._idle.remove(worker)
        self._busy.discard(worker)
        self.celar.terminate(worker.vm)
        if was_busy and self.on_worker_failed is not None:
            self.on_worker_failed(worker)
        if self.on_available is not None:
            self.on_available()

    def _make_available(self, worker: Worker) -> None:
        worker.idle_since = self.env.now
        worker.busy_until = None
        self._idle.append(worker)
        if self.on_available is not None:
            self.on_available()

    def release(self, worker: Worker) -> None:
        """Return a worker to the idle pool after a task."""
        if worker not in self._busy:
            raise SchedulingError(f"{worker!r} was not busy")
        self._busy.remove(worker)
        worker.vm.mark_idle()
        self._make_available(worker)

    def release_unstarted(self, worker: Worker) -> None:
        """Return a worker whose task never ran (stale speculative attempt).

        The VM never left READY (``mark_busy`` was not called), so this
        skips the BUSY->READY transition that :meth:`release` performs.
        """
        if worker not in self._busy:
            raise SchedulingError(f"{worker!r} was not busy")
        self._busy.remove(worker)
        if worker.vm.alive:
            self._make_available(worker)
        elif self.on_available is not None:
            self.on_available()

    # -- wait estimation ----------------------------------------------------------
    def estimate_wait(self, worker_class: str, cores: int, penalty_tu: float) -> float:
        """Expected time until a suitable worker frees up.

        Minimum over busy workers of their predicted remaining time; a
        worker whose shape does not match exactly adds the re-pool
        (restart) penalty.  Returns ``inf`` when nothing is busy (nothing
        will ever free by itself).
        """
        best = float("inf")
        now = self.env.now
        for worker in self._busy:
            if worker.busy_until is None:
                continue
            remaining = max(worker.busy_until - now, 0.0)
            if worker.worker_class != worker_class or worker.cores != cores:
                remaining += penalty_tu
            best = min(best, remaining)
        return best

    # -- reaping ---------------------------------------------------------------
    def start_reaper(self):
        """Process: periodically terminate workers idle past the timeout."""
        if self._reaper_started:
            raise SchedulingError("reaper already running")
        self._reaper_started = True
        while True:
            yield self.env.timeout(self.reap_interval_tu)
            self.reap(self.env.now)

    def reap(self, now: float) -> int:
        """Terminate idle-expired workers; returns how many died."""
        survivors: list[Worker] = []
        dead = 0
        for worker in self._idle:
            if (
                worker.idle_since is not None
                and now - worker.idle_since >= self.idle_timeout_tu
            ):
                self.celar.terminate(worker.vm)
                dead += 1
            else:
                survivors.append(worker)
        self._idle = survivors
        self.reaped += dead
        if dead and self.on_available is not None:
            # Freed tier capacity may unblock a waiting hire decision.
            self.on_available()
        return dead

    def force_free(self, tier: str, cores: int) -> bool:
        """Terminate idle workers on *tier* until *cores* fit there.

        Returns True on success.  Used to break the never-scale stall
        where the base tier is full of idle-but-wrong-shape workers.
        """
        victims = [w for w in self._idle if w.tier == tier]
        victims.sort(key=lambda w: -w.cores)
        tier_obj = self.celar.infrastructure.tier(tier)
        for worker in victims:
            if tier_obj.can_allocate(cores):
                break
            self._idle.remove(worker)
            self.celar.terminate(worker.vm)
            self.reaped += 1
        return tier_obj.can_allocate(cores)
