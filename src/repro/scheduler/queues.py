"""Per-stage FIFO task queues with wait-time instrumentation.

"It maintains an in-memory pool of available workers and a FIFO queue of
pending tasks per class" (paper Section III-B).  For the GATK pipeline the
classes are the seven stages; :class:`QueueSet` owns one
:class:`StageQueue` each.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.core.errors import SchedulingError
from repro.desim.monitor import TimeWeightedMonitor
from repro.scheduler.tasks import StageTask

__all__ = ["StageQueue", "QueueSet"]


class StageQueue:
    """FIFO queue for one pipeline stage."""

    def __init__(self, stage: int, start_time: float = 0.0) -> None:
        self.stage = stage
        self._tasks: deque[StageTask] = deque()
        self.length_monitor = TimeWeightedMonitor(
            f"queue-s{stage}", initial=0.0, start_time=start_time
        )
        self.enqueued_total = 0
        self.dispatched_total = 0

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[StageTask]:
        """Iterate waiting tasks front-to-back (for Eq. 1's sum over Q)."""
        return iter(self._tasks)

    @property
    def empty(self) -> bool:
        return not self._tasks

    def push(self, task: StageTask, now: float) -> None:
        """Append a task (stage-checked) and log the length."""
        if task.stage != self.stage:
            raise SchedulingError(
                f"task for stage {task.stage} pushed to queue {self.stage}"
            )
        self._tasks.append(task)
        self.enqueued_total += 1
        self.length_monitor.set_level(now, len(self._tasks))

    def peek(self) -> Optional[StageTask]:
        """The task at the front, without removing it."""
        return self._tasks[0] if self._tasks else None

    def pop(self, now: float) -> StageTask:
        """Remove and return the front task."""
        if not self._tasks:
            raise SchedulingError(f"pop from empty stage-{self.stage} queue")
        task = self._tasks.popleft()
        self.dispatched_total += 1
        self.length_monitor.set_level(now, len(self._tasks))
        return task

    def waiting_records(self) -> float:
        """Total records waiting (used by load metrics)."""
        return sum(t.size for t in self._tasks)

    def mean_length(self, until: float) -> float:
        """Time-weighted mean queue length up to *until*."""
        return self.length_monitor.time_average(until)


class QueueSet:
    """One queue per pipeline stage."""

    def __init__(self, n_stages: int, start_time: float = 0.0) -> None:
        if n_stages < 1:
            raise SchedulingError("need at least one stage")
        self.queues = tuple(
            StageQueue(i, start_time=start_time) for i in range(n_stages)
        )

    def __getitem__(self, stage: int) -> StageQueue:
        return self.queues[stage]

    def __len__(self) -> int:
        return len(self.queues)

    def __iter__(self) -> Iterator[StageQueue]:
        return iter(self.queues)

    def total_waiting(self) -> int:
        """Tasks waiting across all stages."""
        return sum(len(q) for q in self.queues)

    def lengths(self) -> tuple[int, ...]:
        """Per-stage queue lengths."""
        return tuple(len(q) for q in self.queues)
