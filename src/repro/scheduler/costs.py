"""The tiered cost function (paper Section III-A.2).

"The cost function consists of tiers, representing a class of resources
that can be hired at a given price.  For example ... their institution's
private cloud as a tier of resources at negligible cost, their University's
private cloud as a tier with higher cost with availability bounded by the
available physical [machines]."

Generalised to N tiers: the *base* tier (first non-elastic tier of the
stack, the paper's private cloud) anchors every premium computation, and
the elastic overflow reference defaults to the cheapest elastic tier (the
paper's public cloud).
"""

from __future__ import annotations

from typing import Optional

from repro.cloud.infrastructure import CloudTier, Infrastructure

__all__ = ["TieredCostFunction"]


class TieredCostFunction:
    """Cost queries over the tiered infrastructure.

    Wraps the live :class:`Infrastructure` so scheduling decisions see the
    *current* marginal price: base-tier cores while they last, the
    elastic premium after that.
    """

    def __init__(self, infrastructure: Infrastructure) -> None:
        self.infrastructure = infrastructure

    def _overflow_tier(self) -> CloudTier:
        """The elastic reference tier: cheapest elastic, else the last."""
        tier = self.infrastructure.cheapest_elastic()
        return tier if tier is not None else self.infrastructure.tiers[-1]

    def core_cost(self, tier) -> float:
        """Per-core price of one named tier (CU per core per TU)."""
        return self.infrastructure.tier(tier).core_cost_per_tu

    @property
    def base_core_cost(self) -> float:
        """The base (reserved) tier's price."""
        return self.infrastructure.base.core_cost_per_tu

    @property
    def private_core_cost(self) -> float:
        """Legacy name for :attr:`base_core_cost` (audit records keep it)."""
        return self.base_core_cost

    @property
    def public_core_cost(self) -> float:
        """The elastic overflow reference price (cheapest elastic tier)."""
        return self._overflow_tier().core_cost_per_tu

    def current_rate(self) -> float:
        """Spend rate of everything currently hired (CU/TU)."""
        return self.infrastructure.cost_rate()

    def marginal_core_cost(self, cores: int) -> float:
        """Per-core price of the cheapest tier that can fit *cores* now."""
        tier = self.infrastructure.place(cores)
        if tier is None:
            # Every tier exhausted; quote the elastic reference (the
            # elastic price is the scheduling-relevant signal even when
            # momentarily full).
            return self.public_core_cost
        return self.infrastructure.tier(tier).core_cost_per_tu

    def hire_cost(
        self,
        cores: int,
        duration_tu: float,
        tier,
        startup_penalty_tu: float = 0.0,
    ) -> float:
        """Cost of hiring *cores* on *tier* for a task of *duration_tu*.

        The startup penalty bills at the same rate -- the VM exists (and is
        charged for) while it boots.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if duration_tu < 0 or startup_penalty_tu < 0:
            raise ValueError("durations must be >= 0")
        rate = self.infrastructure.tier(tier).core_cost_per_tu
        return cores * rate * (duration_tu + startup_penalty_tu)

    def premium(
        self,
        cores: int,
        duration_tu: float,
        tier: Optional[str] = None,
        startup_penalty_tu: float = 0.0,
    ) -> float:
        """Extra cost of *tier* over the base tier for the same work.

        This is what predictive scaling weighs against the delay cost: the
        work will be done either way; hiring elastic capacity *now* rather
        than waiting for a base-tier core costs the price difference (plus
        the boot overhead of the new instance).  ``tier=None`` quotes the
        elastic overflow reference.
        """
        rate = (
            self._overflow_tier().core_cost_per_tu
            if tier is None
            else self.infrastructure.tier(tier).core_cost_per_tu
        )
        diff = rate - self.base_core_cost
        return cores * (diff * duration_tu + rate * startup_penalty_tu)

    def public_premium(
        self, cores: int, duration_tu: float, startup_penalty_tu: float = 0.0
    ) -> float:
        """Legacy name: :meth:`premium` against the elastic reference."""
        return self.premium(
            cores, duration_tu, startup_penalty_tu=startup_penalty_tu
        )
