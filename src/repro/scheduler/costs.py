"""The tiered cost function (paper Section III-A.2).

"The cost function consists of tiers, representing a class of resources
that can be hired at a given price.  For example ... their institution's
private cloud as a tier of resources at negligible cost, their University's
private cloud as a tier with higher cost with availability bounded by the
available physical [machines]."
"""

from __future__ import annotations

from repro.cloud.infrastructure import Infrastructure, TierName

__all__ = ["TieredCostFunction"]


class TieredCostFunction:
    """Cost queries over the hybrid infrastructure.

    Wraps the live :class:`Infrastructure` so scheduling decisions see the
    *current* marginal price: private-tier cores while they last, the
    public premium after that.
    """

    def __init__(self, infrastructure: Infrastructure) -> None:
        self.infrastructure = infrastructure

    @property
    def private_core_cost(self) -> float:
        return self.infrastructure.private.core_cost_per_tu

    @property
    def public_core_cost(self) -> float:
        return self.infrastructure.public.core_cost_per_tu

    def current_rate(self) -> float:
        """Spend rate of everything currently hired (CU/TU)."""
        return self.infrastructure.cost_rate()

    def marginal_core_cost(self, cores: int) -> float:
        """Per-core price of the cheapest tier that can fit *cores* now."""
        tier = self.infrastructure.place(cores, allow_public=True)
        if tier is None:
            # Both tiers exhausted; quote public (the elastic tier's price
            # is the scheduling-relevant signal even when momentarily full).
            return self.public_core_cost
        return self.infrastructure.tier(tier).core_cost_per_tu

    def hire_cost(
        self,
        cores: int,
        duration_tu: float,
        tier: TierName,
        startup_penalty_tu: float = 0.0,
    ) -> float:
        """Cost of hiring *cores* on *tier* for a task of *duration_tu*.

        The startup penalty bills at the same rate -- the VM exists (and is
        charged for) while it boots.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if duration_tu < 0 or startup_penalty_tu < 0:
            raise ValueError("durations must be >= 0")
        rate = self.infrastructure.tier(tier).core_cost_per_tu
        return cores * rate * (duration_tu + startup_penalty_tu)

    def public_premium(
        self, cores: int, duration_tu: float, startup_penalty_tu: float = 0.0
    ) -> float:
        """Extra cost of public over private for the same work.

        This is what predictive scaling weighs against the delay cost: the
        work will be done either way; hiring public *now* rather than
        waiting for a private core costs the price difference (plus the
        boot overhead of the new instance).
        """
        diff = self.public_core_cost - self.private_core_cost
        return cores * (
            diff * duration_tu + self.public_core_cost * startup_penalty_tu
        )
