"""ETT / EET / EQT estimation (Eq. 2) and the delay cost (Eq. 1).

From the paper (Section III-A.2)::

    ETT(j) = elapsed_j + sum_{i = S_j ..} ( EQT_i + EET_i(j) )        (2)

    DC(delay) = sum_{j in Q} R(ETT(j), recs_j)
                           - R(ETT(j) + delay, recs_j)                (1)

"We estimate execution time for pipeline stage i, denoted EET_i, using a
linear function of the number of job input records derived from profiling
data.  We also estimate the time we expect a general job to spend in the
queue for stage i, EQT_i."

EET comes from the application's stage models (which the knowledge base
recovered by regression); EQT is an exponentially-weighted moving average
of observed queue waits, updated every time a task leaves a queue.

For DAG workflows Eq. 2's forward sum generalises to the **critical
path**: remaining time is the longest path of per-node (EQT + EET)
through the not-yet-completed subgraph, because independent branches run
concurrently.  Chains keep the original forward-accumulation loop
verbatim (same floats, same memo keys), so linear-pipeline estimates are
bit-identical to the pre-DAG estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.apps.base import ApplicationModel
from repro.core.errors import SchedulingError
from repro.knowledge.plane import EstimateProvider, StaticEstimateProvider
from repro.scheduler.rewards import RewardFunction
from repro.scheduler.tasks import Job, StageTask
from repro.workflows.compiled import CompiledWorkflow

__all__ = [
    "DelayCostTerm",
    "PipelineEstimator",
    "delay_cost",
    "delay_cost_terms",
    "eet_cache_stats",
    "reset_eet_cache_stats",
    "eet_cell_stats",
    "reset_eet_cell_stats",
]

#: Process-wide EET memo counters, aggregated across every estimator
#: instance for the lifetime of the process.  Never reset by the sweep
#: machinery -- per-cell accounting lives in :data:`_EET_CELL_STATS` and
#: per-estimator accounting on the instances themselves.
_EET_CACHE_STATS = {"hits": 0, "misses": 0}

#: Cell-scoped EET memo counters: zeroed at the top of every sweep cell
#: (:func:`repro.sim.sweep.run_cell`), so a cell's reported hit rate only
#: covers its own sessions -- earlier cells in the same worker process no
#: longer contaminate it.
_EET_CELL_STATS = {"hits": 0, "misses": 0}

#: Entries an estimator's EET memo may hold before it is dropped and
#: rebuilt (sizes are continuous, so an unbounded dict could grow with
#: the job population; re-deriving is always safe because EET is pure).
EET_CACHE_SIZE = 65536


def eet_cache_stats() -> dict[str, int]:
    """Process-wide EET memo hit/miss counters (a copy)."""
    return dict(_EET_CACHE_STATS)


def reset_eet_cache_stats() -> None:
    """Zero the process-wide EET memo counters."""
    _EET_CACHE_STATS["hits"] = 0
    _EET_CACHE_STATS["misses"] = 0


def eet_cell_stats() -> dict[str, int]:
    """Cell-scoped EET memo hit/miss counters (a copy)."""
    return dict(_EET_CELL_STATS)


def reset_eet_cell_stats() -> None:
    """Zero the cell-scoped EET memo counters (sweep cell boundaries)."""
    _EET_CELL_STATS["hits"] = 0
    _EET_CELL_STATS["misses"] = 0


class PipelineEstimator:
    """Per-application time estimation for scheduling decisions.

    EET reads go through an :class:`~repro.knowledge.plane.EstimateProvider`
    (default: a :class:`~repro.knowledge.plane.StaticEstimateProvider`
    over *app*, which reproduces the profiled coefficients exactly).  The
    provider's ``epoch`` guards the EET memo: when an online refit bumps
    the knowledge-plane epoch, the next ``eet`` call drops the memo --
    the same invalidation contract the SPARQL result cache has with
    ``TripleStore.epoch``.
    """

    def __init__(
        self,
        app: ApplicationModel,
        eqt_alpha: float = 0.3,
        estimates: Optional[EstimateProvider] = None,
        workflow: Optional[CompiledWorkflow] = None,
    ) -> None:
        if not 0.0 < eqt_alpha <= 1.0:
            raise SchedulingError("eqt_alpha must lie in (0, 1]")
        self.app = app
        self.eqt_alpha = eqt_alpha
        if estimates is not None:
            self.estimates: EstimateProvider = estimates
        elif workflow is not None and not workflow.is_chain:
            # A DAG has more (and differently scoped) nodes than the entry
            # app; the app-shaped default would mis-size every index.
            from repro.knowledge.plane import WorkflowStaticProvider

            self.estimates = WorkflowStaticProvider(workflow)
        else:
            self.estimates = StaticEstimateProvider(app)
        #: The DAG being estimated; ``None`` (or a compiled chain) keeps
        #: every code path on the legacy linear arithmetic.
        self.workflow = workflow
        n_steps = workflow.n_nodes if workflow is not None else app.n_stages
        self._eqt = [0.0] * n_steps
        self._eqt_seen = [0] * n_steps
        # EET memo: (stage, size bucket, threads) -> T_i(t, d).  Buckets
        # are the exact float size -- quantising would change estimates
        # and break serial/parallel bit-equivalence; repeats come from the
        # scheduler re-evaluating the same jobs at every decision point.
        self._eet_cache: dict[tuple[int, float, int], float] = {}
        self._cache_epoch = self.estimates.epoch
        #: Per-instance memo counters (session-scoped; the module globals
        #: keep the process aggregate and per-sweep-cell views).
        self.cache_hits = 0
        self.cache_misses = 0

    def cache_stats(self) -> dict[str, int]:
        """This estimator's own memo hit/miss counters (a copy)."""
        return {"hits": self.cache_hits, "misses": self.cache_misses}

    # -- EQT ----------------------------------------------------------------
    def observe_queue_wait(self, stage: int, wait: float) -> None:
        """Fold one observed queue wait into EQT_stage (EWMA)."""
        if wait < 0:
            raise SchedulingError(f"negative queue wait {wait}")
        if self._eqt_seen[stage] == 0:
            self._eqt[stage] = wait
        else:
            a = self.eqt_alpha
            self._eqt[stage] = a * wait + (1 - a) * self._eqt[stage]
        self._eqt_seen[stage] += 1

    def eqt(self, stage: int) -> float:
        """Estimated queue time for *stage* (0 until first observation)."""
        return self._eqt[stage]

    # -- EET ----------------------------------------------------------------
    def eet(self, stage: int, size: float, threads: int = 1) -> float:
        """Estimated execution time of *stage* for a job of *size*.

        Memoised: EET is a pure function of (stage, size, threads), and the
        scheduler re-asks for the same jobs at every allocation and scaling
        decision, so the memo turns the inner Eq. 1/Eq. 2 loops into dict
        lookups.  Cached values are the uncached computation's exact floats.
        """
        if self._cache_epoch != self.estimates.epoch:
            # The knowledge plane installed new facts: every memoised EET
            # is stale.  Same move as the SPARQL result cache on a store
            # epoch bump.
            self._eet_cache.clear()
            self._cache_epoch = self.estimates.epoch
        key = (stage, size, threads)
        value = self._eet_cache.get(key)
        if value is not None:
            self.cache_hits += 1
            _EET_CACHE_STATS["hits"] += 1
            _EET_CELL_STATS["hits"] += 1
            return value
        self.cache_misses += 1
        _EET_CACHE_STATS["misses"] += 1
        _EET_CELL_STATS["misses"] += 1
        value = self.estimates.eet(stage, size, threads)
        if len(self._eet_cache) >= EET_CACHE_SIZE:
            self._eet_cache.clear()
        self._eet_cache[key] = value
        return value

    # -- ETT (Eq. 2) ----------------------------------------------------------
    def ett(
        self,
        job: Job,
        now: float,
        threads_per_stage: Optional[Sequence[int]] = None,
    ) -> float:
        """Estimated total time for *job*: elapsed + remaining work.

        ``threads_per_stage`` overrides the job's plan for the remaining
        stages (used when evaluating candidate plans); otherwise the job's
        plan (or single-threaded) is assumed.

        Chains sum the remaining stages exactly as Eq. 2 writes it.  DAGs
        take the **critical path**: independent branches overlap, so the
        remaining time is the longest (EQT + EET) path through the
        not-yet-completed subgraph, computed by one reverse-topological
        sweep (node indices are topologically ordered by construction).
        """
        total = job.elapsed(now)
        wf = self.workflow
        if wf is None or wf.is_chain:
            for stage in range(job.current_stage, job.n_stages):
                if threads_per_stage is not None:
                    threads = threads_per_stage[stage]
                else:
                    threads = job.planned_threads(stage)
                total += self.eqt(stage) + self.eet(stage, job.input_gb, threads)
            return total
        return total + self._critical_path(job, threads_per_stage)

    def _critical_path(
        self, job: Job, threads_per_stage: Optional[Sequence[int]] = None
    ) -> float:
        """Longest remaining (EQT + EET) path through *job*'s DAG.

        ``f(n) = cost(n) + max(f(c) for remaining children c)`` swept in
        reverse topological order; the answer is the max over remaining
        *frontier* nodes (every parent already complete).  Like the chain
        loop, a currently-executing node is still counted at full cost --
        the estimate is conservative in exactly the same way.
        """
        wf = self.workflow
        done = job.completed_steps
        downstream = [0.0] * wf.n_nodes
        best = 0.0
        for i in range(wf.n_nodes - 1, -1, -1):
            if i in done:
                continue
            node = wf.node(i)
            if threads_per_stage is not None:
                threads = threads_per_stage[i]
            else:
                threads = job.planned_threads(i)
            cost = self.eqt(i) + self.eet(
                i, wf.node_input_gb(i, job.input_gb), threads
            )
            tail = 0.0
            for child in node.children:
                if child not in done and downstream[child] > tail:
                    tail = downstream[child]
            downstream[i] = cost + tail
            if downstream[i] > best and all(p in done for p in node.parents):
                best = downstream[i]
        return best

    def remaining_time(
        self, job: Job, now: float, threads_per_stage: Optional[Sequence[int]] = None
    ) -> float:
        """ETT minus elapsed: the forward-looking part only."""
        return self.ett(job, now, threads_per_stage) - job.elapsed(now)


def delay_cost(
    queue_tasks: Iterable[StageTask],
    estimator: PipelineEstimator,
    reward: RewardFunction,
    delay: float,
    now: float,
) -> float:
    """Eq. 1: reward lost if every job in the queue slips by *delay* TUs.

    Positive values mean delaying is expensive; the time scheme gives
    ``delay * sum(d_j * Rpenalty)`` exactly, while the throughput scheme is
    convex (delaying an already-late job costs little).
    """
    if delay < 0:
        raise SchedulingError(f"negative delay {delay}")
    if delay == 0:
        return 0.0
    total = 0.0
    for task in queue_tasks:
        job = task.job
        ett_now = estimator.ett(job, now)
        total += reward(max(ett_now, 0.0), job.records) - reward(
            max(ett_now + delay, 0.0), job.records
        )
    return total


@dataclass(frozen=True)
class DelayCostTerm:
    """One job's contribution to Eq. 1, captured for the audit log.

    ``reward_now - reward_delayed`` is this job's term; the ETT and record
    count are kept so the decision can be replayed against the reward
    function alone, without the live estimator or queue.
    """

    job_uid: int
    ett_now: float
    records: float
    reward_now: float
    reward_delayed: float

    @property
    def cost(self) -> float:
        return self.reward_now - self.reward_delayed


def delay_cost_terms(
    queue_tasks: Iterable[StageTask],
    estimator: PipelineEstimator,
    reward: RewardFunction,
    delay: float,
    now: float,
) -> tuple[float, tuple[DelayCostTerm, ...]]:
    """Eq. 1 with its per-job breakdown (same total as :func:`delay_cost`)."""
    if delay < 0:
        raise SchedulingError(f"negative delay {delay}")
    terms: list[DelayCostTerm] = []
    if delay == 0:
        return 0.0, ()
    total = 0.0
    for task in queue_tasks:
        job = task.job
        ett_now = estimator.ett(job, now)
        reward_now = reward(max(ett_now, 0.0), job.records)
        reward_delayed = reward(max(ett_now + delay, 0.0), job.records)
        total += reward_now - reward_delayed
        terms.append(
            DelayCostTerm(
                job_uid=job.uid,
                ett_now=ett_now,
                records=job.records,
                reward_now=reward_now,
                reward_delayed=reward_delayed,
            )
        )
    return total, tuple(terms)
