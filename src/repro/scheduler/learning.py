"""Learning-guided allocation (the paper's future work, Section VI).

"We also plan to adopt learning algorithms to guide the Scheduler."

:class:`LearnedAllocation` treats per-stage thread selection as a set of
independent multi-armed bandits -- one bandit per (stage, size-band), one
arm per thread count -- learning each arm's *realised* profit contribution
online instead of trusting the analytical model:

- reward signal: when a stage task finishes, its contribution is scored as
  ``marginal_value * (E_hat1 - duration) - core_cost * threads * duration``
  where ``E_hat1`` is the learned single-threaded duration for that band
  (so the benefit term needs no model at all once arm 1 has samples);
- exploration: epsilon-greedy with a decaying epsilon, seeded from a
  deterministic stream so simulations stay reproducible;
- cold start: until an arm has samples, its estimate comes from the
  analytical stage model, so the learner starts where the model-based
  policies start and then corrects drift (e.g. stages whose real
  scalability differs from the profiled c_i).

The policy plugs into the scheduler exactly like the Table I algorithms
(``on_submit`` / ``threads_for_stage``); its feedback arrives as a
:class:`~repro.core.bus.StageCompleted` bus subscription the scheduler
wires at construction (``observe_completion`` is the handler's target).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.errors import SchedulingError
from repro.scheduler.allocation import AllocationContext
from repro.scheduler.tasks import Job

__all__ = ["ArmStats", "LearnedAllocation"]


@dataclass
class ArmStats:
    """Online statistics for one (stage, band, threads) arm."""

    pulls: int = 0
    mean_duration: float = 0.0

    def update(self, duration: float) -> None:
        """Fold one realised duration into the running mean."""
        self.pulls += 1
        self.mean_duration += (duration - self.mean_duration) / self.pulls


class LearnedAllocation:
    """Epsilon-greedy per-stage thread selection with online duration fits.

    Parameters
    ----------
    epsilon:
        Initial exploration rate; decays as ``epsilon / sqrt(1 + pulls)``
        per (stage, band) bandit.
    size_bands:
        Job sizes are bucketed into this many geometric bands so durations
        learned on small jobs are not applied to huge ones.
    seed:
        Exploration randomness (deterministic stream).
    """

    def __init__(
        self,
        epsilon: float = 0.15,
        size_bands: int = 4,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise SchedulingError("epsilon must lie in [0, 1]")
        if size_bands < 1:
            raise SchedulingError("size_bands must be >= 1")
        self.epsilon = epsilon
        self.size_bands = size_bands
        self._rng = np.random.Generator(np.random.PCG64(seed))
        #: arms[(stage, band, threads)] -> ArmStats
        self._arms: dict[tuple[int, int, int], ArmStats] = {}
        self._bandit_pulls: dict[tuple[int, int], int] = {}
        self.decisions = 0
        self.explorations = 0

    # -- AllocationPolicy interface ----------------------------------------
    def on_submit(self, job: Job, ctx: AllocationContext) -> None:
        """Bandit decisions happen per stage, like greedy."""
        job.plan = None  # decisions happen per stage, like greedy

    def threads_for_stage(self, job: Job, stage: int, ctx: AllocationContext) -> int:
        """Epsilon-greedy pick over learned arm profits."""
        band = self._band(job.input_gb)
        key = (stage, band)
        pulls = self._bandit_pulls.get(key, 0)
        self.decisions += 1

        eps = self.epsilon / math.sqrt(1.0 + pulls)
        if self._rng.random() < eps:
            self.explorations += 1
            return int(self._rng.choice(ctx.thread_choices))

        ett = ctx.estimator.ett(job, ctx.now)
        value = ctx.reward.marginal_value(max(ett, 0.0), job.records)
        core_cost = ctx.costs.marginal_core_cost(1)
        base = self._duration_estimate(job, stage, band, 1, ctx)

        best_t, best_profit = ctx.thread_choices[0], None
        for t in ctx.thread_choices:
            duration = self._duration_estimate(job, stage, band, t, ctx)
            profit = value * (base - duration) - core_cost * t * duration
            if best_profit is None or profit > best_profit + 1e-12:
                best_t, best_profit = t, profit
        return best_t

    # -- feedback -----------------------------------------------------------
    def observe_completion(
        self, job: Job, stage: int, threads: int, duration: float
    ) -> None:
        """Feed one realised stage duration back into the bandit."""
        if duration < 0:
            raise SchedulingError(f"negative duration {duration}")
        band = self._band(job.input_gb)
        arm = self._arms.setdefault((stage, band, threads), ArmStats())
        arm.update(duration)
        key = (stage, band)
        self._bandit_pulls[key] = self._bandit_pulls.get(key, 0) + 1

    # -- internals ------------------------------------------------------------
    def _band(self, input_gb: float) -> int:
        """Geometric size bands: [0,2), [2,4), [4,8), [8,inf) for 4 bands."""
        if input_gb <= 0:
            return 0
        band = int(math.floor(math.log2(max(input_gb, 1e-9) / 2.0))) + 1
        return min(max(band, 0), self.size_bands - 1)

    def _duration_estimate(
        self,
        job: Job,
        stage: int,
        band: int,
        threads: int,
        ctx: AllocationContext,
    ) -> float:
        arm = self._arms.get((stage, band, threads))
        if arm is not None and arm.pulls > 0:
            return arm.mean_duration
        # Cold start: the knowledge plane's current prior, through the
        # estimator's memoised EET path (with the static provider this is
        # the analytical stage model's exact floats).
        return ctx.estimator.eet(stage, job.input_gb, threads)

    # -- introspection ------------------------------------------------------------
    def arm_table(self) -> dict[tuple[int, int, int], tuple[int, float]]:
        """Snapshot of (stage, band, threads) -> (pulls, mean duration)."""
        return {
            key: (arm.pulls, arm.mean_duration)
            for key, arm in sorted(self._arms.items())
        }

    @property
    def exploration_fraction(self) -> float:
        if self.decisions == 0:
            return 0.0
        return self.explorations / self.decisions
