"""The SCAN Scheduler: queues, pools, rewards, hire-or-wait orchestration.

"The scheduler keeps track of available workers and pending tasks, and
assigns tasks to the workers ... Tasks are scheduled by a 'reward'
algorithm with the aim to maximise profit (the difference between resource
costs and user reward for work completion)" (paper Sections III-A and
III-A.2).

Dispatch rules for the task at the front of each stage queue:

1. An idle worker that fits runs it immediately (smallest adequate shape).
2. If a worker is already booting/resizing for this stage, wait for it.
3. If the private tier can fit a fresh instance, hire privately -- private
   cores are strictly cheaper, so every policy does this.
4. Private tier full: re-pool an idle worker to the needed shape if
   allowed/feasible (pays the restart penalty, needs no new capacity).
5. Otherwise consult the horizontal-scaling policy: hire public now, or
   wait for a busy worker to free up.

Resilience (this module's failure-handling half) layers on top:

- A failed execution re-enters its queue after capped exponential backoff
  and with its attempt counter advanced; a task that exhausts its retry
  budget is dead-lettered and its job fails (reward forfeited).
- A straggling execution gets one speculative duplicate; the first
  finisher wins and the loser is interrupted.
- Transient deploy errors re-arm dispatch after a short delay; repeated
  public-tier bounces trip a circuit breaker that hides the public tier
  from the scaling policy until a half-open probe succeeds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.apps.base import ApplicationModel
from repro.cloud.celar import CelarManager
from repro.cloud.failures import FailureModel
from repro.cloud.faults import FaultInjector
from repro.cloud.infrastructure import Infrastructure
from repro.desim.process import Interrupt
from repro.core.bus import (
    DeployFailed,
    EventBus,
    FaultInjected,
    JobCompleted,
    JobFailed,
    ScalingDecisionMade,
    StageCompleted,
    TaskDeadLettered,
    TaskFinished,
    TaskQueued,
    TaskRetryScheduled,
    TaskStarted,
    WorkerEvicted,
    WorkerFailed,
    WorkerHired,
    WorkerRepooled,
)
from repro.core.config import ResilienceConfig, SchedulerConfig
from repro.core.errors import SchedulingError, TransientDeployError
from repro.core.events import EventKind, EventLog
from repro.desim.engine import Environment
from repro.knowledge.plane import EstimateProvider
from repro.scheduler.allocation import AllocationContext, AllocationPolicy
from repro.scheduler.costs import TieredCostFunction
from repro.scheduler.estimator import PipelineEstimator
from repro.scheduler.queues import QueueSet
from repro.scheduler.resilience import (
    CircuitBreaker,
    DeadLetterQueue,
    RetryPolicy,
    SpeculativeExecutor,
)
from repro.scheduler.rewards import RewardFunction
from repro.scheduler.scaling import ScalingContext, ScalingPolicy
from repro.scheduler.tasks import Job, JobState, StageRecord, StageTask
from repro.scheduler.workers import Worker, WorkerPools
from repro.workflows.compiled import CompiledWorkflow, chain_of

if TYPE_CHECKING:  # telemetry stays import-free on the default path
    from repro.telemetry.hub import TelemetryHub

__all__ = ["SCANScheduler"]

#: How long a queued task's thread-count decision stays valid (TU).
#: Dispatch is retried on every worker release; re-running the allocation
#: policy each time is pure overhead when the queue state has barely
#: moved.  0.25 TU staleness is negligible against 5-20 TU stage times.
DECISION_TTL = 0.25

#: Interrupt cause for a twin that lost the speculative race (the worker
#: survives); any other cause means the worker's VM died under the task.
_SPECULATIVE_LOSS = "speculative-loss"


class SCANScheduler:
    """Reward-driven scheduler for one application's pipeline runs."""

    def __init__(
        self,
        env: Environment,
        app: ApplicationModel,
        infrastructure: Infrastructure,
        celar: CelarManager,
        reward: RewardFunction,
        allocation: AllocationPolicy,
        scaling: ScalingPolicy,
        config: Optional[SchedulerConfig] = None,
        event_log: Optional[EventLog] = None,
        actual_app: Optional[ApplicationModel] = None,
        failure_model: Optional[FailureModel] = None,
        faults: Optional[FaultInjector] = None,
        resilience: Optional[ResilienceConfig] = None,
        telemetry: "Optional[TelemetryHub]" = None,
        bus: Optional[EventBus] = None,
        estimates: Optional[EstimateProvider] = None,
        workflow: Optional[CompiledWorkflow] = None,
    ) -> None:
        self.env = env
        self.app = app
        #: The model EXECUTION follows.  Defaults to ``app`` (the believed
        #: model is also reality, the paper's setting).  Supplying a
        #: different model simulates profiling drift: planning decisions
        #: use ``app`` while task durations come from ``actual_app`` --
        #: the scenario the learning allocator (Section VI future work)
        #: and robustness tests exercise.
        self.actual_app = actual_app if actual_app is not None else app
        if self.actual_app.n_stages != app.n_stages:
            raise SchedulingError(
                "actual_app must have the same stage count as app"
            )
        #: The unit of work: a compiled DAG of stage executions.  Plain
        #: application scheduling lowers the app into its (cached) chain,
        #: where node i is stage i -- every queue, plan slot, EQT slot,
        #: and event below is indexed by workflow node.
        self.workflow = (
            workflow
            if workflow is not None
            else chain_of(app, self.actual_app)
        )
        #: Schedulable steps (chain: the app's stage count).
        self.n_steps = self.workflow.n_nodes
        self.infrastructure = infrastructure
        self.celar = celar
        self.reward = reward
        self.allocation = allocation
        self.scaling = scaling
        self.config = config if config is not None else SchedulerConfig()
        self.log = event_log if event_log is not None else EventLog()

        if faults is None and failure_model is not None:
            # Legacy crash-only construction path.
            faults = FaultInjector.from_failure_model(failure_model)
        #: The chaos layer (None = fault-free run).
        self.faults = faults
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self.retry_policy = RetryPolicy.from_config(self.resilience)
        self.dead_letters = DeadLetterQueue()
        self.failed_jobs: list[Job] = []
        self.breaker: Optional[CircuitBreaker] = None
        if self.resilience.enabled and self.resilience.breaker_enabled:
            self.breaker = CircuitBreaker(
                threshold=self.resilience.breaker_threshold,
                cooldown_tu=self.resilience.breaker_cooldown_tu,
            )
        self.speculation = SpeculativeExecutor(
            enabled=(
                self.resilience.enabled and self.resilience.speculation_enabled
            ),
            straggler_factor=self.resilience.straggler_factor,
            on_launch=self._launch_speculative,
        )

        self.queues = QueueSet(self.n_steps, start_time=env.now)
        self.estimator = PipelineEstimator(
            app,
            eqt_alpha=self.config.eqt_alpha,
            estimates=estimates,
            workflow=self.workflow,
        )
        self.costs = TieredCostFunction(infrastructure)
        self.pools = WorkerPools(
            env,
            celar,
            idle_timeout_tu=self.config.idle_timeout_tu,
            injector=faults,
            tracer=telemetry.tracer if telemetry is not None else None,
        )
        self.pools.on_available = self._on_worker_available
        self.pools.on_worker_failed = self._on_worker_failed
        self.pools.on_boot_failed = self._on_boot_failed
        self._executing: dict[Worker, object] = {}
        self.task_retries = 0
        self.deploy_failures = 0

        self.submitted_jobs: list[Job] = []
        self.completed_jobs: list[Job] = []
        self.total_reward = 0.0
        self._started = False

        #: The typed event bus all cross-cutting observers subscribe to.
        #: The scheduler only *publishes*; assembly code (PlatformBuilder,
        #: tests, plugins) decides who listens.  Dead-letter accounting is
        #: itself a subscriber now -- the scheduler announces exhaustion,
        #: the queue quarantines.
        self.bus = bus if bus is not None else EventBus()
        self.bus.subscribe(TaskDeadLettered, self._on_dead_letter)

        # Learning-guided policies (paper Section VI future work) get the
        # realised duration as their reward signal -- delivered through the
        # bus as a StageCompleted subscription, not a bespoke callback, so
        # the feedback path is the same one the online refitter uses.
        observe = getattr(allocation, "observe_completion", None)
        if observe is not None:

            def _feed_learner(event: StageCompleted, _observe=observe) -> None:
                _observe(event.job_obj, event.stage, event.threads, event.duration)

            self.bus.subscribe(StageCompleted, _feed_learner)

        # Telemetry is threaded in as a hub (None = disabled) and consumes
        # the bus through passive adapters.  repro.telemetry is only
        # imported when a hub actually exists -- a run without telemetry
        # never loads the subsystem at all, and the publisher-side
        # ``type in bus`` guards keep the disabled path a dict probe.
        self.telemetry = telemetry
        self._tracer = telemetry.tracer if telemetry is not None else None
        self._audit = telemetry.audit if telemetry is not None else None
        self._explain = self._audit is not None or self._tracer is not None
        if self._tracer is not None:
            from repro.telemetry.tracing import lane_for_stage, lane_for_worker

            self._lane_for_stage = lane_for_stage
            self._lane_for_worker = lane_for_worker
            for stage in range(self.n_steps):
                self._tracer.lane(lane_for_stage(stage), f"stage {stage} queue")
        if telemetry is not None:
            from repro.telemetry.bus_adapter import attach_hub

            attach_hub(self.bus, telemetry)

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Launch background processes (the idle-worker reaper)."""
        if self._started:
            raise SchedulingError("scheduler already started")
        self._started = True
        self.env.process(self.pools.start_reaper())

    # -- submission ----------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Accept a run and enqueue its entry steps (chain: stage 0)."""
        if job.app is not self.app:
            raise SchedulingError(
                f"{job.name} targets {job.app.name!r}; this scheduler runs "
                f"{self.app.name!r}"
            )
        job_wf = job._workflow
        if job_wf is not None and (
            job_wf.name != self.workflow.name
            or job_wf.n_nodes != self.workflow.n_nodes
        ):
            raise SchedulingError(
                f"{job.name} carries workflow {job_wf.name!r} "
                f"({job_wf.n_nodes} nodes); this scheduler runs "
                f"{self.workflow.name!r} ({self.workflow.n_nodes} nodes)"
            )
        job.state = JobState.RUNNING
        self.submitted_jobs.append(job)
        self.allocation.on_submit(job, self._alloc_ctx())
        self.log.emit(
            self.env.now,
            EventKind.JOB_SUBMITTED,
            job=job.name,
            size=job.size,
            plan=tuple(job.plan.threads) if job.plan is not None else None,
        )
        for step in job.start_steps():
            self._enqueue(job, step)
        return job

    # -- internals --------------------------------------------------------------
    def _alloc_ctx(self) -> AllocationContext:
        return AllocationContext(
            estimator=self.estimator,
            reward=self.reward,
            costs=self.costs,
            thread_choices=self.config.thread_choices,
            now=self.env.now,
            estimates=self.estimator.estimates,
        )

    def _worker_class(self, stage: int) -> str:
        """The worker-pool key for *stage*'s node.

        Chain nodes all carry the app's own worker class, so this is the
        legacy single-pool behaviour there; DAG nodes route each step to
        its application's pool.
        """
        return self.workflow.node(stage).worker_class

    def _enqueue(self, job: Job, stage: int) -> None:
        task = StageTask(job=job, stage=stage, enqueued_at=self.env.now)
        self.queues[stage].push(task, self.env.now)
        self.log.emit(
            self.env.now,
            EventKind.TASK_QUEUED,
            job=job.name,
            stage=stage,
        )
        if TaskQueued in self.bus:
            self.bus.publish(
                TaskQueued(self.env.now, job.name, stage, task.attempt, False)
            )
        self._dispatch(stage)

    def _launch_speculative(self, task: StageTask) -> None:
        """The straggler watchdog hands us a duplicate to enqueue."""
        self.queues[task.stage].push(task, self.env.now)
        self.log.emit(
            self.env.now,
            EventKind.SPECULATIVE_LAUNCHED,
            job=task.job.name,
            stage=task.stage,
            attempt=task.attempt,
        )
        if TaskQueued in self.bus:
            self.bus.publish(
                TaskQueued(
                    self.env.now, task.job.name, task.stage, task.attempt, True
                )
            )
        self._dispatch(task.stage)

    def _on_worker_available(self) -> None:
        for stage in range(self.n_steps):
            self._dispatch(stage)

    def _on_worker_failed(self, worker: Worker) -> None:
        """A busy worker's VM died: interrupt its task for retry.

        A spot eviction (provider reclaim) takes the same path -- the
        victim's task retries or dead-letters exactly like a crash -- but
        is reported distinctly so observers can tell reclaim pressure
        from hardware failure.
        """
        if worker.evicted:
            self.log.emit(
                self.env.now,
                EventKind.WORKER_EVICTED,
                worker=worker.uid,
                tier=worker.tier,
                cores=worker.cores,
            )
            if WorkerEvicted in self.bus:
                self.bus.publish(
                    WorkerEvicted(
                        self.env.now, worker.uid, worker.tier, worker.cores
                    )
                )
        else:
            self.log.emit(
                self.env.now,
                EventKind.WORKER_FAILED,
                worker=worker.uid,
                tier=worker.tier,
                cores=worker.cores,
            )
            if WorkerFailed in self.bus:
                self.bus.publish(
                    WorkerFailed(
                        self.env.now, worker.uid, worker.tier, worker.cores
                    )
                )
        process = self._executing.pop(worker, None)
        if process is not None and getattr(process, "is_alive", False):
            process.interrupt("vm-failure")

    def _on_boot_failed(self, worker: Worker, stage: int) -> None:
        """An injected boot failure killed a worker before READY."""
        self.log.emit(
            self.env.now,
            EventKind.BOOT_FAILED,
            worker=worker.uid,
            tier=worker.tier,
            cores=worker.cores,
            stage=stage,
        )

    def _breaker_guards(self, tier: str) -> bool:
        """Whether the deploy circuit breaker watches this tier.

        The breaker protects elastic hires (the two-tier era's "public"
        check); base-tier deploys never feed it.
        """
        return (
            self.breaker is not None
            and self.infrastructure.tier(tier).elastic
        )

    def _try_hire(self, cores: int, tier: str, stage: int) -> bool:
        """Hire a worker, absorbing transient deploy bounces.

        On a bounce: record it, feed the circuit breaker (elastic tiers),
        and re-arm dispatch for *stage* after the deploy retry delay so
        the queue is not stranded waiting for a boot that never began.
        """
        try:
            self.pools.hire(self._worker_class(stage), cores, tier, stage)
        except TransientDeployError as exc:
            now = self.env.now
            self.deploy_failures += 1
            self.log.emit(
                now,
                EventKind.DEPLOY_FAILED,
                tier=tier,
                cores=cores,
                stage=stage,
                error=str(exc),
            )
            breaker_opened = False
            if self._breaker_guards(tier):
                breaker_opened = self.breaker.record_failure(now)
                if breaker_opened:
                    self.log.emit(
                        now,
                        EventKind.BREAKER_OPEN,
                        tier=tier,
                        cooldown=self.breaker.cooldown_tu,
                    )
                    # Once the cooldown elapses a half-open probe is
                    # allowed; wake every queue to take it.
                    self._schedule_redispatch_all(self.breaker.cooldown_tu)
            if DeployFailed in self.bus:
                self.bus.publish(
                    DeployFailed(now, tier, cores, stage, breaker_opened)
                )
            if self.resilience.enabled:
                self._schedule_redispatch(
                    stage, self.resilience.deploy_retry_delay_tu
                )
            # With resilience disabled nothing re-arms this queue: it sits
            # until an unrelated worker event (or arrival) pokes dispatch
            # again -- the wedge the retry delay exists to prevent.
            return False
        self.log.emit(
            self.env.now,
            EventKind.WORKER_HIRED,
            tier=tier,
            cores=cores,
            stage=stage,
        )
        if WorkerHired in self.bus:
            self.bus.publish(
                WorkerHired(self.env.now, tier, cores, stage)
            )
        if self._breaker_guards(tier):
            if self.breaker.record_success(self.env.now):
                self.log.emit(
                    self.env.now, EventKind.BREAKER_CLOSED, tier=tier
                )
        return True

    def _publish_decision(self, task: StageTask, decision) -> None:
        """Announce one hire-or-wait choice (audit/trace/metric adapters)."""
        if ScalingDecisionMade in self.bus:
            self.bus.publish(
                ScalingDecisionMade(
                    self.env.now,
                    task.stage,
                    task.uid,
                    task.job.uid,
                    task.job.name,
                    decision,
                )
            )

    def _on_dead_letter(self, event: TaskDeadLettered) -> None:
        """Built-in subscriber: quarantine exhausted tasks."""
        self.dead_letters.push(event.task, event.reason, event.time)

    def _schedule_redispatch(self, stage: int, delay: float) -> None:
        def waker():
            yield self.env.timeout(max(delay, 0.0))
            self._dispatch(stage)

        self.env.process(waker())

    def _schedule_redispatch_all(self, delay: float) -> None:
        def waker():
            yield self.env.timeout(max(delay, 0.0))
            for stage in range(self.n_steps):
                self._dispatch(stage)

        self.env.process(waker())

    def _dispatch(self, stage: int) -> None:
        """Serve the front of one stage queue as far as resources allow."""
        tracer = self._tracer
        if tracer is None:
            self._dispatch_pass(stage)
            return
        lane = self._lane_for_stage(stage)
        with tracer.span(
            "scheduler.dispatch",
            "scheduler",
            lane=lane,
            args={"stage": stage, "queued": len(self.queues[stage])},
        ):
            self._dispatch_pass(stage)
        tracer.counter(
            "queue.depth",
            "scheduler",
            {"depth": float(len(self.queues[stage]))},
            lane=lane,
        )

    def _dispatch_pass(self, stage: int) -> None:
        queue = self.queues[stage]
        while not queue.empty:
            task = queue.peek()
            assert task is not None
            # Cancelled speculative twins and stages of dead-lettered jobs
            # are dropped, never run.
            if task.cancelled or task.job.is_failed:
                queue.pop(self.env.now)
                continue
            if (
                task.threads is None
                or self.env.now - task.decided_at > DECISION_TTL
            ):
                task.threads = self.allocation.threads_for_stage(
                    task.job, stage, self._alloc_ctx()
                )
                task.decided_at = self.env.now
            threads = task.threads
            # Instance sizing honours the stage's memory footprint too: a
            # 8 GB stage cannot run on a 1-core/4 GB instance even
            # single-threaded.  The footprint is a knowledge-plane fact.
            cores = self.celar.fit_size(
                threads, ram_gb=self.estimator.estimates.stage_model(stage).ram_gb
            )

            worker = self.pools.acquire(self._worker_class(stage), cores)
            if worker is not None:
                queue.pop(self.env.now)
                self.env.process(self._execute(task, worker))
                continue

            # A worker is already on its way for this stage's front task.
            if self.pools.booting_for_stage.get(stage, 0) > 0:
                return

            # Base-tier capacity available: every policy hires there.
            base = self.infrastructure.base
            if base.can_allocate(cores):
                self._try_hire(cores, base.name, stage)
                return

            # Private full: a re-pooled idle worker needs no new capacity.
            if self.config.repool_allowed:
                candidate = self.pools.repool_candidate(
                    self._worker_class(stage), cores
                )
                if candidate is not None:
                    self.pools.repool(candidate, cores, stage)
                    self.log.emit(
                        self.env.now,
                        EventKind.WORKER_REPOOLED,
                        worker=candidate.uid,
                        cores=cores,
                        stage=stage,
                    )
                    if WorkerRepooled in self.bus:
                        self.bus.publish(
                            WorkerRepooled(
                                self.env.now, candidate.uid, cores, stage
                            )
                        )
                    return

            # Hire-or-wait: the horizontal-scaling policy's call.
            expected_wait = self.pools.estimate_wait(
                self._worker_class(stage),
                cores,
                penalty_tu=self.celar.startup_penalty_tu,
            )
            decision = self.scaling.decide(
                task,
                cores,
                ScalingContext(
                    infrastructure=self.infrastructure,
                    costs=self.costs,
                    estimator=self.estimator,
                    reward=self.reward,
                    queue=queue,
                    now=self.env.now,
                    startup_penalty_tu=self.celar.startup_penalty_tu,
                    expected_wait=expected_wait,
                    public_available=(
                        self.breaker.allow(self.env.now)
                        if self.breaker is not None
                        else True
                    ),
                    explain=self._explain,
                ),
            )
            # NB: gated on _explain (audit/trace present), matching the
            # pre-bus behaviour where metrics-only runs skipped decision
            # accounting entirely.
            if self._explain:
                self._publish_decision(task, decision)
            if decision.hire:
                assert decision.tier is not None
                self._try_hire(cores, decision.tier, stage)
                return

            # Waiting -- but guard against a stall where nothing will ever
            # free up by itself (no busy workers, nothing booting).
            if not self.pools.busy_workers and self.pools.booting_total() == 0:
                base = self.infrastructure.base
                if self.pools.force_free(base.name, cores):
                    self._try_hire(cores, base.name, stage)
                    return
            return

    def _execute(self, task: StageTask, worker: Worker):
        """Process: run one stage task to completion on *worker*."""
        job, stage = task.job, task.stage
        # The race window between dispatch and process start: a twin may
        # have resolved the stage (or dead-lettered the job) meanwhile.
        if task.cancelled or job.is_failed:
            self.pools.release_unstarted(worker)
            return
        group = self.speculation.register(
            task, worker, self.env.active_process
        )
        if task.speculative and group is None:
            # Stale duplicate: the primary finished before we started.
            self.pools.release_unstarted(worker)
            return

        started_at = self.env.now
        if task.threads is None:
            raise SchedulingError(f"{task!r} dispatched without a thread count")
        threads = min(task.threads, worker.cores)

        wait = started_at - task.enqueued_at
        if not task.speculative:
            # Duplicates would double-count the stage's queue-wait signal.
            self.estimator.observe_queue_wait(stage, wait)

        worker.vm.mark_busy()
        # Reality may diverge from the believed model (the node's ground
        # truth comes from actual_app for chains, the drift-aware resolver
        # for compiled specs).  The node's input is the job input scaled by
        # the workflow's data-propagation factor (1.0 on every chain node).
        node = self.workflow.node(stage)
        stage_input = self.workflow.node_input_gb(stage, job.input_gb)
        duration = node.actual.threaded_time(threads, stage_input)
        straggled = False
        if self.faults is not None and self.faults.stragglers_enabled:
            multiplier = self.faults.straggler_multiplier()
            if multiplier > 1.0:
                straggled = True
                duration *= multiplier
        worker.busy_until = started_at + duration
        self.log.emit(
            started_at,
            EventKind.TASK_STARTED,
            job=job.name,
            stage=stage,
            threads=threads,
            worker=worker.uid,
            tier=worker.tier,
            wait=wait,
            attempt=task.attempt,
            speculative=task.speculative,
            straggled=straggled,
        )
        if TaskStarted in self.bus:
            self.bus.publish(
                TaskStarted(
                    started_at,
                    job.name,
                    stage,
                    threads,
                    worker.uid,
                    worker.tier,
                    wait,
                    task.attempt,
                    task.speculative,
                    straggled,
                )
            )
        if straggled and FaultInjected in self.bus:
            self.bus.publish(
                FaultInjected(
                    started_at, "straggler", job.name, stage, duration
                )
            )

        # Arm the straggler watchdog for primaries when stragglers can
        # occur; it launches at most one speculative duplicate.
        if (
            group is not None
            and not task.speculative
            and self.speculation.enabled
            and self.faults is not None
            and self.faults.stragglers_enabled
        ):
            predicted = self.estimator.eet(stage, stage_input, threads)
            self.env.process(
                self.speculation.watchdog(self.env, group, predicted)
            )

        self._executing[worker] = self.env.active_process
        # The execution span stretches across simulated time (sync=False:
        # its wall clock mostly measures other components running while
        # this process sleeps); it closes even on Interrupt unwinding.
        span = None
        if self._tracer is not None:
            lane = self._tracer.lane(
                self._lane_for_worker(worker.uid),
                f"worker {worker.uid} ({worker.tier} x{worker.cores})",
            )
            span = self._tracer.span(
                f"{job.name}/s{stage}",
                "task",
                lane=lane,
                args={
                    "job": job.name,
                    "stage": stage,
                    "threads": threads,
                    "tier": worker.tier,
                    "attempt": task.attempt,
                    "speculative": task.speculative,
                    "straggled": straggled,
                    "wait": wait,
                },
                sync=False,
            )
        try:
            if span is not None:
                with span:
                    yield self.env.timeout(duration)
            else:
                yield self.env.timeout(duration)
        except Interrupt as intr:
            if intr.cause == _SPECULATIVE_LOSS:
                # The twin finished first; this worker is fine -- free it.
                self.speculation.lost += 1
                self.log.emit(
                    self.env.now,
                    EventKind.SPECULATIVE_LOST,
                    job=job.name,
                    stage=stage,
                    worker=worker.uid,
                )
                if TaskFinished in self.bus:
                    self.bus.publish(
                        TaskFinished(
                            self.env.now,
                            job.name,
                            stage,
                            "speculative_loss",
                            worker.uid,
                            worker.tier,
                        )
                    )
                self.pools.release(worker)
                return
            # The worker's VM died mid-task (failure injection): nothing
            # was produced.  If a twin is still running the stage survives
            # on it; otherwise the attempt failed and the retry/dead-letter
            # machinery takes over.
            if TaskFinished in self.bus:
                self.bus.publish(
                    TaskFinished(
                        self.env.now,
                        job.name,
                        stage,
                        "vm_failure",
                        worker.uid,
                        worker.tier,
                    )
                )
            if group is not None and self.speculation.twin_survives(
                group, task
            ):
                return
            self._handle_failed_attempt(task, reason="vm-failure")
            return
        finally:
            self._executing.pop(worker, None)

        finished_at = self.env.now
        if group is not None and group.resolved:
            # The twin finished at this exact timestamp and won the race.
            self.speculation.lost += 1
            self.log.emit(
                finished_at,
                EventKind.SPECULATIVE_LOST,
                job=job.name,
                stage=stage,
                worker=worker.uid,
            )
            self.pools.release(worker)
            return

        if self.faults is not None and self.faults.corrupts():
            # Staging/shard corruption: the output is garbage, the work
            # must be redone even though the worker is healthy.
            self.log.emit(
                finished_at,
                EventKind.STAGE_CORRUPTED,
                job=job.name,
                stage=stage,
                worker=worker.uid,
                attempt=task.attempt,
            )
            if TaskFinished in self.bus:
                self.bus.publish(
                    TaskFinished(
                        finished_at,
                        job.name,
                        stage,
                        "corrupted",
                        worker.uid,
                        worker.tier,
                    )
                )
            if FaultInjected in self.bus:
                self.bus.publish(
                    FaultInjected(finished_at, "corruption", job.name, stage)
                )
            self.pools.release(worker)
            if group is not None and self.speculation.twin_survives(
                group, task
            ):
                return
            self._handle_failed_attempt(task, reason="corruption")
            return

        loser = None
        if group is not None:
            loser = self.speculation.resolve(group, task)
            if task.speculative:
                self.log.emit(
                    finished_at,
                    EventKind.SPECULATIVE_WON,
                    job=job.name,
                    stage=stage,
                    worker=worker.uid,
                )
        worker.tasks_executed += 1
        job.record_stage(
            StageRecord(
                stage=stage,
                queued_at=(
                    task.first_enqueued_at
                    if task.first_enqueued_at is not None
                    else task.enqueued_at
                ),
                started_at=started_at,
                finished_at=finished_at,
                threads=threads,
                tier=worker.tier,
                attempts=task.attempt,
            )
        )
        self.log.emit(
            finished_at,
            EventKind.STAGE_COMPLETED,
            job=job.name,
            app=self.app.name,
            stage=stage,
            input_gb=job.size,
            threads=threads,
            duration=duration,
            tier=worker.tier,
        )

        if TaskFinished in self.bus:
            self.bus.publish(
                TaskFinished(
                    finished_at,
                    job.name,
                    stage,
                    "completed",
                    worker.uid,
                    worker.tier,
                )
            )
        # The knowledge loop's feedback edge: realised durations flow to
        # whoever subscribed (learning policies, the online refitter).
        # `input_gb` is the stage-model axis (the node's scaled input),
        # unlike the legacy EventLog record above which carries the
        # reward-unit size.  The event is keyed by the node's fact scope
        # and in-app stage: chains publish (app.name, stage) exactly as
        # before, while DAG branches publish ("{workflow}/{step}", stage)
        # so the refitter sharpens each branch independently.
        if StageCompleted in self.bus:
            self.bus.publish(
                StageCompleted(
                    finished_at,
                    job.name,
                    node.scope,
                    node.app_stage,
                    stage_input,
                    threads,
                    duration,
                    job,
                    tier=worker.tier,
                )
            )

        self.pools.release(worker)
        if loser is not None and loser.process.is_alive:
            # Interrupt the losing twin AFTER our own bookkeeping: its
            # handler releases its worker and returns.
            loser.process.interrupt(_SPECULATIVE_LOSS)

        if job.current_stage >= job.n_stages:
            latency = finished_at - job.submit_time
            paid = self.reward(latency, job.records)
            job.complete(finished_at, paid)
            self.completed_jobs.append(job)
            self.total_reward += paid
            self.log.emit(
                finished_at,
                EventKind.JOB_COMPLETED,
                job=job.name,
                latency=latency,
                size=job.size,
            )
            self.log.emit(
                finished_at,
                EventKind.REWARD_PAID,
                job=job.name,
                reward=paid,
            )
            if JobCompleted in self.bus:
                self.bus.publish(
                    JobCompleted(finished_at, job.name, latency, paid, job.size)
                )
        else:
            # Release every child whose last outstanding parent just
            # finished.  Chains release exactly [stage + 1], preserving
            # the legacy enqueue order; DAG fan-outs release independent
            # branches together, each into its own node queue.
            for next_step in job.ready_after(stage):
                self._enqueue(job, next_step)

    # -- retry / dead-letter machinery -------------------------------------------
    def _handle_failed_attempt(self, task: StageTask, reason: str) -> None:
        """An execution produced nothing: retry with backoff or dead-letter."""
        job, stage = task.job, task.stage
        now = self.env.now
        self.speculation.discard(task)
        if self.retry_policy.exhausted(task.attempt):
            # Quarantining is a subscription: the scheduler's own
            # _on_dead_letter handler feeds self.dead_letters (always
            # subscribed, so no `in bus` guard here).
            self.bus.publish(
                TaskDeadLettered(
                    now, job.name, stage, task.attempt, reason, task
                )
            )
            self.log.emit(
                now,
                EventKind.TASK_DEAD_LETTERED,
                job=job.name,
                stage=stage,
                attempts=task.attempt,
                reason=reason,
            )
            job.fail(now)
            self.failed_jobs.append(job)
            self.log.emit(
                now,
                EventKind.JOB_FAILED,
                job=job.name,
                stage=stage,
                reason=reason,
            )
            if JobFailed in self.bus:
                self.bus.publish(JobFailed(now, job.name, stage, reason))
            return
        self.task_retries += 1
        delay = self.retry_policy.delay_for(task.attempt)
        if TaskRetryScheduled in self.bus:
            self.bus.publish(
                TaskRetryScheduled(
                    now, job.name, stage, task.attempt + 1, delay, reason
                )
            )
        if delay > 0:
            self.log.emit(
                now,
                EventKind.TASK_RETRY_SCHEDULED,
                job=job.name,
                stage=stage,
                attempt=task.attempt + 1,
                delay=delay,
                reason=reason,
            )
            self.env.process(self._retry_later(task, delay))
        else:
            self._requeue_retry(task)

    def _retry_later(self, task: StageTask, delay: float):
        yield self.env.timeout(delay)
        self._requeue_retry(task)

    def _requeue_retry(self, task: StageTask) -> None:
        job, stage = task.job, task.stage
        if job.is_failed:  # dead-lettered while the backoff timer ran
            return
        retry = StageTask(
            job=job,
            stage=stage,
            enqueued_at=self.env.now,
            attempt=task.attempt + 1,
            first_enqueued_at=task.first_enqueued_at,
        )
        self.queues[stage].push(retry, self.env.now)
        self.log.emit(
            self.env.now,
            EventKind.TASK_RETRIED,
            job=job.name,
            stage=stage,
            attempt=retry.attempt,
        )
        if TaskQueued in self.bus:
            self.bus.publish(
                TaskQueued(self.env.now, job.name, stage, retry.attempt, False)
            )
        self._dispatch(stage)

    # -- reporting ---------------------------------------------------------------
    def total_cost(self) -> float:
        """Core-time spend so far (CU), from the infrastructure meters."""
        return self.infrastructure.accumulated_cost()

    def profit(self) -> float:
        """Total reward minus total cost so far (CU)."""
        return self.total_reward - self.total_cost()

    def mean_profit_per_run(self) -> float:
        """Figure 4's y-axis: (reward - cost) / completed pipeline runs."""
        if not self.completed_jobs:
            return 0.0
        return self.profit() / len(self.completed_jobs)

    def reward_to_cost_ratio(self) -> float:
        """Figure 5's y-axis."""
        cost = self.total_cost()
        if cost <= 0:
            return 0.0
        return self.total_reward / cost

    def mean_core_stages_per_run(self) -> float:
        """Figure 5's x-axis: mean total cores-across-stages per run."""
        if not self.completed_jobs:
            return 0.0
        return sum(j.core_stages() for j in self.completed_jobs) / len(
            self.completed_jobs
        )

    def mean_latency(self) -> float:
        """Mean pipeline latency over completed jobs (TU)."""
        if not self.completed_jobs:
            return float("nan")
        return sum(j.latency() for j in self.completed_jobs) / len(
            self.completed_jobs
        )
