"""The SCAN Scheduler: queues, pools, rewards, hire-or-wait orchestration.

"The scheduler keeps track of available workers and pending tasks, and
assigns tasks to the workers ... Tasks are scheduled by a 'reward'
algorithm with the aim to maximise profit (the difference between resource
costs and user reward for work completion)" (paper Sections III-A and
III-A.2).

Dispatch rules for the task at the front of each stage queue:

1. An idle worker that fits runs it immediately (smallest adequate shape).
2. If a worker is already booting/resizing for this stage, wait for it.
3. If the private tier can fit a fresh instance, hire privately -- private
   cores are strictly cheaper, so every policy does this.
4. Private tier full: re-pool an idle worker to the needed shape if
   allowed/feasible (pays the restart penalty, needs no new capacity).
5. Otherwise consult the horizontal-scaling policy: hire public now, or
   wait for a busy worker to free up.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import ApplicationModel
from repro.cloud.celar import CelarManager
from repro.cloud.failures import FailureModel
from repro.cloud.infrastructure import Infrastructure, TierName
from repro.desim.process import Interrupt
from repro.core.config import SchedulerConfig
from repro.core.errors import SchedulingError
from repro.core.events import EventKind, EventLog
from repro.desim.engine import Environment
from repro.scheduler.allocation import AllocationContext, AllocationPolicy
from repro.scheduler.costs import TieredCostFunction
from repro.scheduler.estimator import PipelineEstimator
from repro.scheduler.queues import QueueSet
from repro.scheduler.rewards import RewardFunction
from repro.scheduler.scaling import ScalingContext, ScalingPolicy
from repro.scheduler.tasks import Job, JobState, StageRecord, StageTask
from repro.scheduler.workers import Worker, WorkerPools

__all__ = ["SCANScheduler"]

#: How long a queued task's thread-count decision stays valid (TU).
#: Dispatch is retried on every worker release; re-running the allocation
#: policy each time is pure overhead when the queue state has barely
#: moved.  0.25 TU staleness is negligible against 5-20 TU stage times.
DECISION_TTL = 0.25


class SCANScheduler:
    """Reward-driven scheduler for one application's pipeline runs."""

    def __init__(
        self,
        env: Environment,
        app: ApplicationModel,
        infrastructure: Infrastructure,
        celar: CelarManager,
        reward: RewardFunction,
        allocation: AllocationPolicy,
        scaling: ScalingPolicy,
        config: Optional[SchedulerConfig] = None,
        event_log: Optional[EventLog] = None,
        actual_app: Optional[ApplicationModel] = None,
        failure_model: Optional[FailureModel] = None,
    ) -> None:
        self.env = env
        self.app = app
        #: The model EXECUTION follows.  Defaults to ``app`` (the believed
        #: model is also reality, the paper's setting).  Supplying a
        #: different model simulates profiling drift: planning decisions
        #: use ``app`` while task durations come from ``actual_app`` --
        #: the scenario the learning allocator (Section VI future work)
        #: and robustness tests exercise.
        self.actual_app = actual_app if actual_app is not None else app
        if self.actual_app.n_stages != app.n_stages:
            raise SchedulingError(
                "actual_app must have the same stage count as app"
            )
        self.infrastructure = infrastructure
        self.celar = celar
        self.reward = reward
        self.allocation = allocation
        self.scaling = scaling
        self.config = config if config is not None else SchedulerConfig()
        self.log = event_log if event_log is not None else EventLog()

        self.queues = QueueSet(app.n_stages, start_time=env.now)
        self.estimator = PipelineEstimator(app, eqt_alpha=self.config.eqt_alpha)
        self.costs = TieredCostFunction(infrastructure)
        self.pools = WorkerPools(
            env,
            celar,
            idle_timeout_tu=self.config.idle_timeout_tu,
            failure_model=failure_model,
        )
        self.pools.on_available = self._on_worker_available
        self.pools.on_worker_failed = self._on_worker_failed
        self._executing: dict[Worker, object] = {}
        self.task_retries = 0

        self.submitted_jobs: list[Job] = []
        self.completed_jobs: list[Job] = []
        self.total_reward = 0.0
        self._started = False

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Launch background processes (the idle-worker reaper)."""
        if self._started:
            raise SchedulingError("scheduler already started")
        self._started = True
        self.env.process(self.pools.start_reaper())

    # -- submission ----------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Accept a pipeline run and enqueue its first stage."""
        if job.app is not self.app:
            raise SchedulingError(
                f"{job.name} targets {job.app.name!r}; this scheduler runs "
                f"{self.app.name!r}"
            )
        job.state = JobState.RUNNING
        self.submitted_jobs.append(job)
        self.allocation.on_submit(job, self._alloc_ctx())
        self.log.emit(
            self.env.now,
            EventKind.JOB_SUBMITTED,
            job=job.name,
            size=job.size,
            plan=tuple(job.plan.threads) if job.plan is not None else None,
        )
        self._enqueue(job, 0)
        return job

    # -- internals --------------------------------------------------------------
    def _alloc_ctx(self) -> AllocationContext:
        return AllocationContext(
            estimator=self.estimator,
            reward=self.reward,
            costs=self.costs,
            thread_choices=self.config.thread_choices,
            now=self.env.now,
        )

    def _enqueue(self, job: Job, stage: int) -> None:
        task = StageTask(job=job, stage=stage, enqueued_at=self.env.now)
        self.queues[stage].push(task, self.env.now)
        self.log.emit(
            self.env.now,
            EventKind.TASK_QUEUED,
            job=job.name,
            stage=stage,
        )
        self._dispatch(stage)

    def _on_worker_available(self) -> None:
        for stage in range(self.app.n_stages):
            self._dispatch(stage)

    def _on_worker_failed(self, worker: Worker) -> None:
        """A busy worker's VM died: interrupt its task for retry."""
        self.log.emit(
            self.env.now,
            EventKind.WORKER_FAILED,
            worker=worker.uid,
            tier=worker.tier.value,
            cores=worker.cores,
        )
        process = self._executing.pop(worker, None)
        if process is not None and getattr(process, "is_alive", False):
            process.interrupt("vm-failure")

    def _dispatch(self, stage: int) -> None:
        """Serve the front of one stage queue as far as resources allow."""
        queue = self.queues[stage]
        while not queue.empty:
            task = queue.peek()
            assert task is not None
            if (
                task.threads is None
                or self.env.now - task.decided_at > DECISION_TTL
            ):
                task.threads = self.allocation.threads_for_stage(
                    task.job, stage, self._alloc_ctx()
                )
                task.decided_at = self.env.now
            threads = task.threads
            # Instance sizing honours the stage's memory footprint too: a
            # 8 GB stage cannot run on a 1-core/4 GB instance even
            # single-threaded.
            cores = self.celar.fit_size(
                threads, ram_gb=self.app.stage(stage).ram_gb
            )

            worker = self.pools.acquire(self.app.worker_class, cores)
            if worker is not None:
                queue.pop(self.env.now)
                self.env.process(self._execute(task, worker))
                continue

            # A worker is already on its way for this stage's front task.
            if self.pools.booting_for_stage.get(stage, 0) > 0:
                return

            # Private capacity available: every policy hires there.
            if self.infrastructure.private.can_allocate(cores):
                self.pools.hire(
                    self.app.worker_class, cores, TierName.PRIVATE, stage
                )
                self.log.emit(
                    self.env.now,
                    EventKind.WORKER_HIRED,
                    tier=TierName.PRIVATE.value,
                    cores=cores,
                    stage=stage,
                )
                return

            # Private full: a re-pooled idle worker needs no new capacity.
            if self.config.repool_allowed:
                candidate = self.pools.repool_candidate(
                    self.app.worker_class, cores
                )
                if candidate is not None:
                    self.pools.repool(candidate, cores, stage)
                    self.log.emit(
                        self.env.now,
                        EventKind.WORKER_REPOOLED,
                        worker=candidate.uid,
                        cores=cores,
                        stage=stage,
                    )
                    return

            # Hire-or-wait: the horizontal-scaling policy's call.
            expected_wait = self.pools.estimate_wait(
                self.app.worker_class,
                cores,
                penalty_tu=self.celar.startup_penalty_tu,
            )
            decision = self.scaling.decide(
                task,
                cores,
                ScalingContext(
                    infrastructure=self.infrastructure,
                    costs=self.costs,
                    estimator=self.estimator,
                    reward=self.reward,
                    queue=queue,
                    now=self.env.now,
                    startup_penalty_tu=self.celar.startup_penalty_tu,
                    expected_wait=expected_wait,
                ),
            )
            if decision.hire:
                assert decision.tier is not None
                self.pools.hire(
                    self.app.worker_class, cores, decision.tier, stage
                )
                self.log.emit(
                    self.env.now,
                    EventKind.WORKER_HIRED,
                    tier=decision.tier.value,
                    cores=cores,
                    stage=stage,
                )
                return

            # Waiting -- but guard against a stall where nothing will ever
            # free up by itself (no busy workers, nothing booting).
            if not self.pools.busy_workers and self.pools.booting_total() == 0:
                if self.pools.force_free_private(cores):
                    self.pools.hire(
                        self.app.worker_class, cores, TierName.PRIVATE, stage
                    )
                    return
            return

    def _execute(self, task: StageTask, worker: Worker):
        """Process: run one stage task to completion on *worker*."""
        job, stage = task.job, task.stage
        started_at = self.env.now
        if task.threads is None:
            raise SchedulingError(f"{task!r} dispatched without a thread count")
        threads = min(task.threads, worker.cores)

        wait = started_at - task.enqueued_at
        self.estimator.observe_queue_wait(stage, wait)

        worker.vm.mark_busy()
        # Reality may diverge from the believed model (actual_app).
        duration = self.actual_app.stage(stage).threaded_time(
            threads, job.input_gb
        )
        worker.busy_until = started_at + duration
        self.log.emit(
            started_at,
            EventKind.TASK_STARTED,
            job=job.name,
            stage=stage,
            threads=threads,
            worker=worker.uid,
            tier=worker.tier.value,
            wait=wait,
        )

        self._executing[worker] = self.env.active_process
        try:
            yield self.env.timeout(duration)
        except Interrupt:
            # The worker's VM died mid-task (failure injection): nothing
            # was produced, so the stage goes back to its queue for retry.
            self.task_retries += 1
            retry = StageTask(job=job, stage=stage, enqueued_at=self.env.now)
            self.queues[stage].push(retry, self.env.now)
            self.log.emit(
                self.env.now,
                EventKind.TASK_RETRIED,
                job=job.name,
                stage=stage,
                worker=worker.uid,
            )
            self._dispatch(stage)
            return
        finally:
            self._executing.pop(worker, None)

        finished_at = self.env.now
        worker.tasks_executed += 1
        job.record_stage(
            StageRecord(
                stage=stage,
                queued_at=task.enqueued_at,
                started_at=started_at,
                finished_at=finished_at,
                threads=threads,
                tier=worker.tier,
            )
        )
        self.log.emit(
            finished_at,
            EventKind.STAGE_COMPLETED,
            job=job.name,
            app=self.app.name,
            stage=stage,
            input_gb=job.size,
            threads=threads,
            duration=duration,
            tier=worker.tier.value,
        )

        # Learning-guided policies (paper Section VI future work) get the
        # realised duration as their reward signal.
        observe = getattr(self.allocation, "observe_completion", None)
        if observe is not None:
            observe(job, stage, threads, duration)

        self.pools.release(worker)

        if job.current_stage >= job.n_stages:
            latency = finished_at - job.submit_time
            paid = self.reward(latency, job.records)
            job.complete(finished_at, paid)
            self.completed_jobs.append(job)
            self.total_reward += paid
            self.log.emit(
                finished_at,
                EventKind.JOB_COMPLETED,
                job=job.name,
                latency=latency,
                size=job.size,
            )
            self.log.emit(
                finished_at,
                EventKind.REWARD_PAID,
                job=job.name,
                reward=paid,
            )
        else:
            self._enqueue(job, job.current_stage)

    # -- reporting ---------------------------------------------------------------
    def total_cost(self) -> float:
        """Core-time spend so far (CU), from the infrastructure meters."""
        return self.infrastructure.accumulated_cost()

    def profit(self) -> float:
        """Total reward minus total cost so far (CU)."""
        return self.total_reward - self.total_cost()

    def mean_profit_per_run(self) -> float:
        """Figure 4's y-axis: (reward - cost) / completed pipeline runs."""
        if not self.completed_jobs:
            return 0.0
        return self.profit() / len(self.completed_jobs)

    def reward_to_cost_ratio(self) -> float:
        """Figure 5's y-axis."""
        cost = self.total_cost()
        if cost <= 0:
            return 0.0
        return self.total_reward / cost

    def mean_core_stages_per_run(self) -> float:
        """Figure 5's x-axis: mean total cores-across-stages per run."""
        if not self.completed_jobs:
            return 0.0
        return sum(j.core_stages() for j in self.completed_jobs) / len(
            self.completed_jobs
        )

    def mean_latency(self) -> float:
        """Mean pipeline latency over completed jobs (TU)."""
        if not self.completed_jobs:
            return float("nan")
        return sum(j.latency() for j in self.completed_jobs) / len(
            self.completed_jobs
        )
