"""Pricing: per-core-per-TU cost model, meters and invoices.

Costs in CU (cost units) exactly as the paper; Table I sweeps the public
tier price over {20, 50, 80, 110} CU/TU with the private tier fixed at
5 CU/TU (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cloud.infrastructure import TierName
from repro.core.errors import CloudError

__all__ = ["PricingModel", "CostMeter", "Invoice"]


@dataclass(frozen=True)
class PricingModel:
    """Per-tier core prices (CU per core per TU)."""

    private_core_cost: float = 5.0
    public_core_cost: float = 50.0

    def __post_init__(self) -> None:
        if self.private_core_cost < 0 or self.public_core_cost < 0:
            raise CloudError("core costs must be >= 0")

    def core_cost(self, tier: TierName) -> float:
        """The tier's price (CU per core per TU)."""
        return (
            self.private_core_cost
            if tier is TierName.PRIVATE
            else self.public_core_cost
        )

    def rate(self, cores: int, tier: TierName) -> float:
        """Spend rate of *cores* on *tier* (CU/TU)."""
        if cores < 0:
            raise CloudError("cores must be >= 0")
        return cores * self.core_cost(tier)

    def charge(self, cores: int, tier: TierName, duration_tu: float) -> float:
        """Cost of holding *cores* on *tier* for *duration_tu*."""
        if duration_tu < 0:
            raise CloudError("duration must be >= 0")
        return self.rate(cores, tier) * duration_tu


@dataclass
class Invoice:
    """An itemised record of spend, split by tier."""

    private_cu: float = 0.0
    public_cu: float = 0.0
    items: list[tuple[float, TierName, int, float, float]] = field(
        default_factory=list
    )

    @property
    def total_cu(self) -> float:
        return self.private_cu + self.public_cu

    def add(
        self, time: float, tier: TierName, cores: int, duration: float, cost: float
    ) -> None:
        """Append one charge line and update the tier subtotal."""
        self.items.append((time, tier, cores, duration, cost))
        if tier is TierName.PRIVATE:
            self.private_cu += cost
        else:
            self.public_cu += cost


class CostMeter:
    """Accumulates spend against a :class:`PricingModel`."""

    def __init__(self, pricing: Optional[PricingModel] = None) -> None:
        self.pricing = pricing if pricing is not None else PricingModel()
        self.invoice = Invoice()

    def charge(
        self, time: float, cores: int, tier: TierName, duration_tu: float
    ) -> float:
        """Record a charge; returns the cost in CU."""
        cost = self.pricing.charge(cores, tier, duration_tu)
        self.invoice.add(time, tier, cores, duration_tu, cost)
        return cost

    @property
    def total_cu(self) -> float:
        return self.invoice.total_cu
