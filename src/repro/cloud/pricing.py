"""Pricing: per-core-per-TU cost model, meters and invoices.

Costs in CU (cost units) exactly as the paper; Table I sweeps the public
tier price over {20, 50, 80, 110} CU/TU with the private tier fixed at
5 CU/TU (Table III).

Since the tier-backend refactor the model is N-tier: ``tier_costs`` maps
arbitrary tier names to prices, with the legacy ``private`` /
``public`` pair as the default stack (any tier not listed falls back to
the public price -- elastic overflow is the scheduling-relevant signal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.cloud.infrastructure import tier_name
from repro.core.errors import CloudError

__all__ = ["PricingModel", "CostMeter", "Invoice"]


@dataclass(frozen=True)
class PricingModel:
    """Per-tier core prices (CU per core per TU)."""

    private_core_cost: float = 5.0
    public_core_cost: float = 50.0
    #: Extra named tiers (spot, serverless, ...); ``private`` / ``public``
    #: entries here override the two legacy fields.
    tier_costs: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.private_core_cost < 0 or self.public_core_cost < 0:
            raise CloudError("core costs must be >= 0")
        for name, cost in self.tier_costs.items():
            if cost < 0:
                raise CloudError(f"core cost for tier {name!r} must be >= 0")

    def core_cost(self, tier: str) -> float:
        """The tier's price (CU per core per TU).

        Unlisted tiers quote the public price: overflow capacity prices
        at the elastic rate.
        """
        name = tier_name(tier)
        if name in self.tier_costs:
            return self.tier_costs[name]
        if name == "private":
            return self.private_core_cost
        return self.public_core_cost

    def rate(self, cores: int, tier: str) -> float:
        """Spend rate of *cores* on *tier* (CU/TU)."""
        if cores < 0:
            raise CloudError("cores must be >= 0")
        return cores * self.core_cost(tier)

    def charge(self, cores: int, tier: str, duration_tu: float) -> float:
        """Cost of holding *cores* on *tier* for *duration_tu*."""
        if duration_tu < 0:
            raise CloudError("duration must be >= 0")
        return self.rate(cores, tier) * duration_tu


@dataclass
class Invoice:
    """An itemised record of spend, split by tier."""

    items: list[tuple[float, str, int, float, float]] = field(
        default_factory=list
    )
    by_tier: dict[str, float] = field(default_factory=dict)

    @property
    def private_cu(self) -> float:
        """Spend on the tier named ``private`` (legacy view)."""
        return self.by_tier.get("private", 0.0)

    @property
    def public_cu(self) -> float:
        """Spend on every tier except ``private`` (legacy view)."""
        return sum(
            cu for name, cu in self.by_tier.items() if name != "private"
        )

    @property
    def total_cu(self) -> float:
        return sum(self.by_tier.values())

    def tier_cu(self, tier: str) -> float:
        """Spend charged against one tier so far."""
        return self.by_tier.get(tier_name(tier), 0.0)

    def add(
        self, time: float, tier: str, cores: int, duration: float, cost: float
    ) -> None:
        """Append one charge line and update the tier subtotal."""
        name = tier_name(tier)
        self.items.append((time, name, cores, duration, cost))
        self.by_tier[name] = self.by_tier.get(name, 0.0) + cost


class CostMeter:
    """Accumulates spend against a :class:`PricingModel`."""

    def __init__(self, pricing: Optional[PricingModel] = None) -> None:
        self.pricing = pricing if pricing is not None else PricingModel()
        self.invoice = Invoice()

    def charge(
        self, time: float, cores: int, tier: str, duration_tu: float
    ) -> float:
        """Record a charge; returns the cost in CU."""
        cost = self.pricing.charge(cores, tier, duration_tu)
        self.invoice.add(time, tier, cores, duration_tu, cost)
        return cost

    @property
    def total_cu(self) -> float:
        return self.invoice.total_cu
