"""VM failure model: exponential lifetimes, per-tier rates.

Real clouds lose instances; a scheduler that only works on a perfect
substrate is not production-grade.  :class:`FailureModel` draws VM
lifetimes from exponential distributions (memoryless, the standard
availability model); the scheduler arms a "doom timer" per worker and
handles mid-task deaths by re-queueing the victim task.

Disabled by default (``CloudConfig.vm_mtbf_tu = None``) -- the paper's
evaluation assumes reliable workers -- and exercised by the failure-
injection tests and the resilience example.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cloud.infrastructure import tier_name
from repro.core.errors import CloudError

__all__ = ["FailureModel"]


class FailureModel:
    """Draws exponential VM lifetimes, optionally tier-dependent.

    Parameters
    ----------
    mtbf_tu:
        Mean time between failures for private-tier VMs (TU).
    public_mtbf_tu:
        Public-tier MTBF; defaults to the private value.  (Spot-market
        instances often die sooner, so the knob is separate.)
    rng:
        A ``numpy`` generator; supply a named stream for reproducibility.
    """

    def __init__(
        self,
        mtbf_tu: float,
        rng: np.random.Generator,
        public_mtbf_tu: Optional[float] = None,
    ) -> None:
        if mtbf_tu <= 0:
            raise CloudError("mtbf_tu must be positive")
        if public_mtbf_tu is not None and public_mtbf_tu <= 0:
            raise CloudError("public_mtbf_tu must be positive")
        self.mtbf_tu = float(mtbf_tu)
        self.public_mtbf_tu = (
            float(public_mtbf_tu) if public_mtbf_tu is not None else self.mtbf_tu
        )
        self._rng = rng
        self.failures_drawn = 0

    def mtbf_for(self, tier: str) -> float:
        """The tier's mean time between failures (TU).

        The tier literally named ``private`` gets the private rate;
        every other tier (public, spot, serverless, ...) is treated as
        public-like -- elastic capacity shares the elastic failure
        profile.
        """
        return self.mtbf_tu if tier_name(tier) == "private" else self.public_mtbf_tu

    def draw_lifetime(self, tier: str) -> float:
        """One VM's time-to-failure from boot (TU)."""
        self.failures_drawn += 1
        return float(self._rng.exponential(self.mtbf_for(tier)))
