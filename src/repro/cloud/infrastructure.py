"""Cloud tiers and core accounting.

"We thus setup a hybrid cloud for our evaluation which consist of two
tiers: a private tier (624 CPU cores ...) and a public tier.  Using cores
at either tier has a constant cost per core per unit time, with private
cores being cheaper than public cores" (paper Section IV-A).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.errors import CloudError
from repro.desim.engine import Environment
from repro.desim.monitor import TimeWeightedMonitor

__all__ = ["TierName", "CloudTier", "Infrastructure"]


class TierName(str, enum.Enum):
    """The two tiers of the hybrid cloud (Section IV-A)."""
    PRIVATE = "private"
    PUBLIC = "public"


class CloudTier:
    """One tier: bounded core pool with a per-core-per-TU price."""

    def __init__(
        self,
        env: Environment,
        name: TierName,
        capacity_cores: int,
        core_cost_per_tu: float,
    ) -> None:
        if capacity_cores < 0:
            raise CloudError(f"negative capacity for tier {name}")
        if core_cost_per_tu < 0:
            raise CloudError(f"negative core cost for tier {name}")
        self.env = env
        self.name = name
        self.capacity_cores = capacity_cores
        self.core_cost_per_tu = core_cost_per_tu
        self._in_use = 0
        self.usage = TimeWeightedMonitor(
            f"{name.value}-cores", initial=0.0, start_time=env.now
        )

    @property
    def cores_in_use(self) -> int:
        return self._in_use

    @property
    def cores_free(self) -> int:
        return self.capacity_cores - self._in_use

    def can_allocate(self, cores: int) -> bool:
        """Whether *cores* fit in the remaining capacity."""
        return cores <= self.cores_free

    def allocate(self, cores: int) -> None:
        """Claim *cores*; raises :class:`CloudError` if the tier is full."""
        if cores <= 0:
            raise CloudError(f"core allocation must be positive, got {cores}")
        if cores > self.cores_free:
            raise CloudError(
                f"tier {self.name.value} has {self.cores_free} free cores; "
                f"{cores} requested"
            )
        self._in_use += cores
        self.usage.set_level(self.env.now, self._in_use)

    def release(self, cores: int) -> None:
        """Return *cores* to the tier."""
        if cores <= 0 or cores > self._in_use:
            raise CloudError(
                f"invalid release of {cores} cores (in use: {self._in_use})"
            )
        self._in_use -= cores
        self.usage.set_level(self.env.now, self._in_use)

    def utilization(self) -> float:
        """Time-averaged core utilisation in [0, 1]."""
        if self.capacity_cores == 0:
            return 0.0
        return self.usage.time_average(self.env.now) / self.capacity_cores

    def core_tu_consumed(self) -> float:
        """Integral of allocated cores over time (for cost accounting)."""
        return self.usage.integral(self.env.now)

    def __repr__(self) -> str:
        return (
            f"<CloudTier {self.name.value} {self._in_use}/{self.capacity_cores} "
            f"@{self.core_cost_per_tu} CU/core/TU>"
        )


class Infrastructure:
    """The two-tier hybrid cloud with private-first placement."""

    def __init__(
        self,
        env: Environment,
        private_cores: int = 624,
        private_cost: float = 5.0,
        public_cores: int = 1_000_000,
        public_cost: float = 50.0,
    ) -> None:
        self.env = env
        self.private = CloudTier(env, TierName.PRIVATE, private_cores, private_cost)
        self.public = CloudTier(env, TierName.PUBLIC, public_cores, public_cost)

    def tier(self, name: TierName) -> CloudTier:
        """The tier object for *name*."""
        return self.private if name is TierName.PRIVATE else self.public

    def place(self, cores: int, allow_public: bool = True) -> Optional[TierName]:
        """Pick a tier for *cores*: private first, public if allowed.

        Returns the tier name, or None when nothing fits (private full and
        public disallowed/full).  Does not allocate.
        """
        if self.private.can_allocate(cores):
            return TierName.PRIVATE
        if allow_public and self.public.can_allocate(cores):
            return TierName.PUBLIC
        return None

    def allocate(self, cores: int, tier: TierName) -> None:
        """Claim *cores* on *tier*."""
        self.tier(tier).allocate(cores)

    def release(self, cores: int, tier: TierName) -> None:
        """Return *cores* to *tier*."""
        self.tier(tier).release(cores)

    @property
    def private_full(self) -> bool:
        return self.private.cores_free == 0

    def total_cores_in_use(self) -> int:
        """Cores currently allocated across both tiers."""
        return self.private.cores_in_use + self.public.cores_in_use

    def cost_rate(self) -> float:
        """Current spend rate (CU per TU) across both tiers.

        This is the paper's cost function: "maps the number of machines
        currently active and their configuration to the cost per unit time
        of keeping them running".
        """
        return (
            self.private.cores_in_use * self.private.core_cost_per_tu
            + self.public.cores_in_use * self.public.core_cost_per_tu
        )

    def accumulated_cost(self) -> float:
        """Total core-time cost so far (CU)."""
        return (
            self.private.core_tu_consumed() * self.private.core_cost_per_tu
            + self.public.core_tu_consumed() * self.public.core_cost_per_tu
        )
