"""Cloud tiers and core accounting.

"We thus setup a hybrid cloud for our evaluation which consist of two
tiers: a private tier (624 CPU cores ...) and a public tier.  Using cores
at either tier has a constant cost per core per unit time, with private
cores being cheaper than public cores" (paper Section IV-A).

Since the tier-backend refactor the two-tier hybrid is just the default
configuration of an N-tier :class:`Infrastructure`: an ordered list of
named :class:`CloudTier` backends (see :mod:`repro.cloud.tiers` for the
``TIER_BACKENDS`` registry of ``reserved`` / ``on_demand`` /
``serverless`` / ``spot`` implementations) plus a pluggable placement
policy (``TIER_PLACEMENT``; ``cheapest_first`` reproduces the paper's
private-first placement).  This module is the *only* place the legacy
``TierName`` enum and the ``private``/``public`` pair survive -- every
consumer speaks plain tier-name strings.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Optional, Sequence

from repro.core.errors import CloudError
from repro.desim.engine import Environment
from repro.desim.monitor import TimeWeightedMonitor

__all__ = ["TierName", "CloudTier", "Infrastructure", "tier_name"]


class TierName(str, enum.Enum):
    """The two tiers of the paper's hybrid cloud (Section IV-A).

    Kept as a compatibility alias for the default configuration; the
    N-tier stack identifies tiers by plain strings.  ``TierName`` is a
    ``str`` subclass, so members compare equal to their names and pass
    through :func:`tier_name` unchanged.
    """
    PRIVATE = "private"
    PUBLIC = "public"


def tier_name(tier: Any) -> str:
    """Normalise a tier handle (enum member or string) to its name."""
    value = getattr(tier, "value", tier)
    return value if isinstance(value, str) else str(value)


class CloudTier:
    """One tier: bounded core pool with a per-core-per-TU price.

    This is the ``reserved`` tier backend -- today's bounded private
    tier -- and the base class of every other backend.  Subclasses
    customise the protocol hooks:

    - :meth:`can_allocate` / :meth:`allocate` / :meth:`release`
      (capacity and lifecycle),
    - :meth:`cost_rate` / :meth:`accumulated_cost` (pricing; serverless
      adds per-invocation charges),
    - :meth:`allocation_latency_tu` (per-allocation latency, e.g. a
      serverless cold start, added to the VM boot penalty),
    - :meth:`placement_check` (optional per-allocation caps, rejected at
      placement time).
    """

    #: Registry name of this backend (``scan-sim tiers`` reports it).
    backend = "reserved"
    #: Elastic tiers are hired through the scaling policy and guarded by
    #: the deploy circuit breaker; the reserved base tier is neither.
    elastic = False

    def __init__(
        self,
        env: Environment,
        name: str,
        capacity_cores: int,
        core_cost_per_tu: float,
    ) -> None:
        name = tier_name(name)
        if not name:
            raise CloudError("tier name must be non-empty")
        if capacity_cores < 0:
            raise CloudError(f"negative capacity for tier {name}")
        if core_cost_per_tu < 0:
            raise CloudError(f"negative core cost for tier {name}")
        self.env = env
        self.name = name
        self.capacity_cores = capacity_cores
        self.core_cost_per_tu = core_cost_per_tu
        self._in_use = 0
        self._bus = None
        self.usage = TimeWeightedMonitor(
            f"{name}-cores", initial=0.0, start_time=env.now
        )

    # -- capacity ---------------------------------------------------------------
    @property
    def cores_in_use(self) -> int:
        return self._in_use

    @property
    def cores_free(self) -> int:
        return self.capacity_cores - self._in_use

    def can_allocate(self, cores: int) -> bool:
        """Whether *cores* fit in the remaining capacity (and caps)."""
        return cores <= self.cores_free and self.placement_check(cores) is None

    def placement_check(
        self, cores: int, duration_tu: Optional[float] = None
    ) -> Optional[str]:
        """Why a *cores* allocation would be rejected beyond capacity.

        Returns ``None`` when the request passes this backend's
        per-allocation caps; a human-readable reason otherwise.  The base
        (reserved/on-demand) backends have no caps.
        """
        return None

    def bind_bus(self, bus) -> None:
        """Attach the session event bus; rejected placements publish
        :class:`~repro.core.bus.PlacementRejected` (observers previously
        under-counted contention because a full tier raised silently)."""
        self._bus = bus

    def _reject(self, cores: int, reason: str) -> CloudError:
        if self._bus is not None:
            from repro.core.bus import PlacementRejected

            if PlacementRejected in self._bus:
                self._bus.publish(
                    PlacementRejected(self.env.now, self.name, cores, reason)
                )
        return CloudError(reason)

    def allocate(self, cores: int) -> None:
        """Claim *cores*; raises :class:`CloudError` if the tier is full.

        A rejected placement publishes
        :class:`~repro.core.bus.PlacementRejected` on the bound bus
        before raising, so contention observers see it.
        """
        if cores <= 0:
            raise CloudError(f"core allocation must be positive, got {cores}")
        if cores > self.cores_free:
            raise self._reject(
                cores,
                f"tier {self.name} has {self.cores_free} free cores; "
                f"{cores} requested",
            )
        capped = self.placement_check(cores)
        if capped is not None:
            raise self._reject(cores, capped)
        self._in_use += cores
        self.usage.set_level(self.env.now, self._in_use)

    def release(self, cores: int) -> None:
        """Return *cores* to the tier."""
        if cores <= 0 or cores > self._in_use:
            raise CloudError(
                f"invalid release of {cores} cores (in use: {self._in_use})"
            )
        self._in_use -= cores
        self.usage.set_level(self.env.now, self._in_use)

    # -- accounting -------------------------------------------------------------
    def utilization(self) -> float:
        """Time-averaged core utilisation in [0, 1]."""
        if self.capacity_cores == 0:
            return 0.0
        return self.usage.time_average(self.env.now) / self.capacity_cores

    def core_tu_consumed(self) -> float:
        """Integral of allocated cores over time (for cost accounting)."""
        return self.usage.integral(self.env.now)

    def cost_rate(self) -> float:
        """Current spend rate of this tier (CU per TU)."""
        return self._in_use * self.core_cost_per_tu

    def accumulated_cost(self) -> float:
        """Total cost charged against this tier so far (CU)."""
        return self.core_tu_consumed() * self.core_cost_per_tu

    # -- latency / introspection ------------------------------------------------
    def allocation_latency_tu(self, cores: int) -> float:
        """Extra per-allocation latency (e.g. cold start) in TU."""
        return 0.0

    def caps(self) -> dict:
        """Per-allocation caps, for introspection (``scan-sim tiers``)."""
        return {}

    def describe(self) -> dict:
        """A JSON-friendly description of this tier's configuration."""
        return {
            "name": self.name,
            "backend": self.backend,
            "elastic": self.elastic,
            "capacity_cores": self.capacity_cores,
            "core_cost_per_tu": self.core_cost_per_tu,
            "cores_in_use": self.cores_in_use,
            "caps": self.caps(),
        }

    def __repr__(self) -> str:
        return (
            f"<CloudTier {self.name} {self._in_use}/{self.capacity_cores} "
            f"@{self.core_cost_per_tu} CU/core/TU>"
        )


class Infrastructure:
    """An ordered stack of named tiers with pluggable placement.

    The default construction (no ``tiers``) is the paper's two-tier
    hybrid: a bounded ``private`` reserved tier and an effectively
    unbounded ``public`` on-demand tier, placed cheapest-first --
    byte-identical to the pre-refactor hardwired pair.
    """

    def __init__(
        self,
        env: Environment,
        private_cores: int = 624,
        private_cost: float = 5.0,
        public_cores: int = 1_000_000,
        public_cost: float = 50.0,
        tiers: Optional[Sequence[CloudTier]] = None,
        placement: str = "cheapest_first",
    ) -> None:
        self.env = env
        if tiers is None:
            from repro.cloud.tiers import OnDemandTier

            tiers = (
                CloudTier(env, TierName.PRIVATE, private_cores, private_cost),
                OnDemandTier(env, TierName.PUBLIC, public_cores, public_cost),
            )
        self._tiers: tuple[CloudTier, ...] = tuple(tiers)
        if not self._tiers:
            raise CloudError("infrastructure needs at least one tier")
        self._by_name: dict[str, CloudTier] = {}
        for t in self._tiers:
            if t.name in self._by_name:
                raise CloudError(f"duplicate tier name {t.name!r}")
            self._by_name[t.name] = t
        from repro.cloud.tiers import TIER_PLACEMENT

        self.placement = tier_name(placement)
        self._place = TIER_PLACEMENT.create(self.placement)

    # -- tier access ------------------------------------------------------------
    @property
    def tiers(self) -> tuple[CloudTier, ...]:
        """The tier stack, in configured order."""
        return self._tiers

    def tier_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self._tiers)

    def tier(self, name) -> CloudTier:
        """The tier object for *name* (string or legacy enum member)."""
        key = tier_name(name)
        try:
            return self._by_name[key]
        except KeyError:
            raise CloudError(
                f"unknown tier {key!r}; configured: {list(self._by_name)}"
            ) from None

    @property
    def base(self) -> CloudTier:
        """The base tier: first non-elastic tier, else the first tier.

        The dispatcher hires here without consulting the scaling policy
        (the paper's private-first fast path); stall recovery frees its
        capacity; session accounting reports it as the "private" side.
        """
        for t in self._tiers:
            if not t.elastic:
                return t
        return self._tiers[0]

    def elastic_tiers(self) -> tuple[CloudTier, ...]:
        """Tiers hired through the scaling policy, in configured order."""
        return tuple(t for t in self._tiers if t.elastic)

    def cheapest_elastic(self) -> Optional[CloudTier]:
        """The cheapest elastic tier (ties keep configured order)."""
        elastic = self.elastic_tiers()
        if not elastic:
            return None
        return min(elastic, key=lambda t: t.core_cost_per_tu)

    @property
    def private(self) -> CloudTier:
        """Legacy accessor: the tier named ``private`` (default stack)."""
        return self.tier(TierName.PRIVATE)

    @property
    def public(self) -> CloudTier:
        """Legacy accessor: the tier named ``public`` (default stack)."""
        return self.tier(TierName.PUBLIC)

    # -- placement --------------------------------------------------------------
    def place(
        self,
        cores: int,
        allow_public: bool = True,
        duration_tu: Optional[float] = None,
    ) -> Optional[str]:
        """Pick a tier for *cores* via the placement policy.

        Returns the tier name, or ``None`` when nothing fits.  Does not
        allocate.  ``allow_public=False`` restricts placement to
        non-elastic tiers (the legacy "private only" query).
        ``duration_tu``, when known, lets duration-capped backends
        (serverless) reject at placement.
        """
        candidates: Iterable[CloudTier] = (
            self._tiers
            if allow_public
            else [t for t in self._tiers if not t.elastic]
        )
        chosen = self._place(candidates, cores, duration_tu)
        return chosen.name if chosen is not None else None

    def place_elastic(
        self, cores: int, duration_tu: Optional[float] = None
    ) -> Optional[str]:
        """Placement restricted to elastic tiers (scaling-policy side)."""
        chosen = self._place(self.elastic_tiers(), cores, duration_tu)
        return chosen.name if chosen is not None else None

    def has_duration_caps(self) -> bool:
        """Whether any tier caps per-allocation duration (serverless)."""
        return any(t.caps().get("max_duration_tu") for t in self._tiers)

    # -- allocation -------------------------------------------------------------
    def allocate(self, cores: int, tier) -> None:
        """Claim *cores* on *tier*."""
        self.tier(tier).allocate(cores)

    def release(self, cores: int, tier) -> None:
        """Return *cores* to *tier*."""
        self.tier(tier).release(cores)

    def bind_bus(self, bus) -> None:
        """Attach the event bus to every tier (placement rejections)."""
        for t in self._tiers:
            t.bind_bus(bus)

    @property
    def private_full(self) -> bool:
        return self.base.cores_free == 0

    # -- accounting -------------------------------------------------------------
    def total_cores_in_use(self) -> int:
        """Cores currently allocated across every tier."""
        return sum(t.cores_in_use for t in self._tiers)

    def cost_rate(self) -> float:
        """Current spend rate (CU per TU) across every tier.

        This is the paper's cost function: "maps the number of machines
        currently active and their configuration to the cost per unit time
        of keeping them running".
        """
        return sum(t.cost_rate() for t in self._tiers)

    def accumulated_cost(self) -> float:
        """Total core-time cost so far (CU), summed over tier backends."""
        return sum(t.accumulated_cost() for t in self._tiers)

    def describe(self) -> list[dict]:
        """Per-tier configuration dump (``scan-sim tiers``)."""
        return [t.describe() for t in self._tiers]
