"""Simulated hybrid-cloud substrate.

Models the evaluation's infrastructure (paper Section IV-A): by default a
two-tier hybrid cloud -- a bounded private tier (624 cores at 5 CU/TU per
core) and an effectively unbounded public tier (20-110 CU/TU per core) --
generalised since the tier-backend refactor to an N-tier stack of
pluggable backends, plus the pieces the prototype ran on:

- :mod:`repro.cloud.infrastructure` -- the tier stack, core accounting.
- :mod:`repro.cloud.tiers` -- the ``TIER_BACKENDS`` registry (reserved /
  on_demand / serverless / spot) and ``TIER_PLACEMENT`` policies.
- :mod:`repro.cloud.vm` -- VM lifecycle with the 30-second (0.5 TU) start /
  restart penalty paid when CELAR resizes a worker's vCPU count.
- :mod:`repro.cloud.pricing` -- per-core-per-TU cost model and invoices.
- :mod:`repro.cloud.celar` -- the CELAR elasticity middleware stand-in
  (Manager + Decision Module).
- :mod:`repro.cloud.storage` -- shared-filesystem (CIFS stand-in) and
  replicated key-value store (Cassandra stand-in) models.
"""

from repro.cloud.infrastructure import (
    CloudTier,
    Infrastructure,
    TierName,
    tier_name,
)
from repro.cloud.tiers import (
    TIER_BACKENDS,
    TIER_PLACEMENT,
    OnDemandTier,
    ServerlessTier,
    SpotTier,
)
from repro.cloud.vm import VirtualMachine, VMState
from repro.cloud.pricing import PricingModel, CostMeter, Invoice
from repro.cloud.failures import FailureModel
from repro.cloud.faults import FaultPlan, FaultInjector
from repro.cloud.celar import CelarManager, CelarDecisionModule, ScalingCommand
from repro.cloud.storage import SharedFilesystem, ReplicatedKVStore, TransferError

__all__ = [
    "CloudTier",
    "Infrastructure",
    "TierName",
    "tier_name",
    "TIER_BACKENDS",
    "TIER_PLACEMENT",
    "OnDemandTier",
    "ServerlessTier",
    "SpotTier",
    "VirtualMachine",
    "VMState",
    "PricingModel",
    "CostMeter",
    "Invoice",
    "FailureModel",
    "FaultPlan",
    "FaultInjector",
    "CelarManager",
    "CelarDecisionModule",
    "ScalingCommand",
    "SharedFilesystem",
    "ReplicatedKVStore",
    "TransferError",
]
