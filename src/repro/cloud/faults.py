"""The fault-injection chaos layer: named, seeded fault streams.

The seed's :class:`~repro.cloud.failures.FailureModel` covers exactly one
fault class -- exponential VM crashes.  Real elastic clouds fail in many
more ways: transient provisioning errors, instances that die while
booting, heavy-tailed stragglers that dominate tail latency, and staging
corruption that silently invalidates completed work (the FaaS
variant-calling and GATK-Spark studies in PAPERS.md report all four).

:class:`FaultPlan` is the declarative description of a fault mix;
:class:`FaultInjector` samples it at runtime.  Every fault class draws
from its *own* named RNG stream (via
:class:`~repro.desim.rng.RandomStreams`), so enabling one class never
perturbs another's draws -- and a plan with every knob at zero is
bit-identical to running without the chaos layer at all.  VM crash
lifetimes keep the seed's ``"failures"`` stream name so crash-only runs
reproduce the legacy :class:`FailureModel` draws exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cloud.failures import FailureModel
from repro.cloud.infrastructure import tier_name
from repro.core.errors import CloudError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.config import CloudConfig, FaultConfig
    from repro.desim.rng import RandomStreams

__all__ = ["FaultPlan", "FaultInjector"]

#: Stream names, one per fault class.  ``"failures"`` is the seed's crash
#: stream name, preserved so crash-only plans replay identically.
CRASH_STREAM = "failures"
BOOT_STREAM = "faults.boot"
DEPLOY_STREAM = "faults.deploy"
STRAGGLER_STREAM = "faults.straggler"
CORRUPT_STREAM = "faults.corrupt"
#: Spot-tier eviction lifetimes; a dedicated stream so adding a spot
#: tier never perturbs any other fault class's draws.
SPOT_STREAM = "faults.spot"


@dataclass(frozen=True)
class FaultPlan:
    """A validated, declarative fault mix (mirrors ``FaultConfig``)."""

    #: Mean time between VM crashes (TU); None disables crashes.
    mtbf_tu: Optional[float] = None
    #: Public-tier crash MTBF; defaults to ``mtbf_tu``.
    public_mtbf_tu: Optional[float] = None
    #: Probability a deployed VM dies during boot.
    p_boot_fail: float = 0.0
    #: Probability a CELAR deploy fails transiently (private tier).
    p_deploy_fail: float = 0.0
    #: Public-tier deploy failure probability; defaults to ``p_deploy_fail``.
    p_deploy_fail_public: Optional[float] = None
    #: Probability a task execution straggles.
    p_straggler: float = 0.0
    #: Pareto tail index of the straggler slowdown.
    straggler_alpha: float = 1.5
    #: Minimum slowdown factor of a straggler.
    straggler_min_factor: float = 2.0
    #: Probability a completed stage is retroactively corrupt.
    p_corrupt: float = 0.0

    def __post_init__(self) -> None:
        if self.mtbf_tu is not None and self.mtbf_tu <= 0:
            raise CloudError("mtbf_tu must be positive or None")
        if self.public_mtbf_tu is not None and self.public_mtbf_tu <= 0:
            raise CloudError("public_mtbf_tu must be positive or None")
        for name in ("p_boot_fail", "p_deploy_fail", "p_straggler", "p_corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise CloudError(f"{name} must lie in [0, 1], got {p}")
        if self.p_deploy_fail_public is not None and not (
            0.0 <= self.p_deploy_fail_public <= 1.0
        ):
            raise CloudError("p_deploy_fail_public must lie in [0, 1]")
        if self.straggler_alpha <= 1.0:
            raise CloudError("straggler_alpha must exceed 1")
        if self.straggler_min_factor < 1.0:
            raise CloudError("straggler_min_factor must be >= 1")

    def deploy_fail_probability(self, tier: str) -> float:
        """The deploy-failure probability for *tier*.

        The public-specific override applies to every tier except the
        one literally named ``private`` -- elastic tiers (public, spot,
        serverless) share the elastic provisioning failure profile.
        """
        if tier_name(tier) != "private" and self.p_deploy_fail_public is not None:
            return self.p_deploy_fail_public
        return self.p_deploy_fail

    @property
    def any_active(self) -> bool:
        """Whether any fault stream can ever fire."""
        return (
            self.mtbf_tu is not None
            or self.p_boot_fail > 0
            or self.p_deploy_fail > 0
            or (self.p_deploy_fail_public or 0) > 0
            or self.p_straggler > 0
            or self.p_corrupt > 0
        )

    @staticmethod
    def from_config(
        faults: "FaultConfig", cloud: "CloudConfig | None" = None
    ) -> "FaultPlan":
        """Build a plan from config sections.

        ``FaultConfig.mtbf_tu`` wins; the legacy ``CloudConfig.vm_mtbf_tu``
        knob is honoured when the fault section leaves crashes unset.
        """
        mtbf = faults.mtbf_tu
        if mtbf is None and cloud is not None:
            mtbf = cloud.vm_mtbf_tu
        return FaultPlan(
            mtbf_tu=mtbf,
            public_mtbf_tu=faults.public_mtbf_tu,
            p_boot_fail=faults.p_boot_fail,
            p_deploy_fail=faults.p_deploy_fail,
            p_deploy_fail_public=faults.p_deploy_fail_public,
            p_straggler=faults.p_straggler,
            straggler_alpha=faults.straggler_alpha,
            straggler_min_factor=faults.straggler_min_factor,
            p_corrupt=faults.p_corrupt,
        )


class FaultInjector:
    """Samples a :class:`FaultPlan` at runtime, one RNG stream per class.

    Parameters
    ----------
    plan:
        The fault mix to inject.
    streams:
        The session's named random streams.  Required whenever any
        probabilistic stream is active (a pre-built ``crash_model`` covers
        crashes without streams, for legacy callers).
    crash_model:
        An existing :class:`FailureModel` to reuse for crash lifetimes;
        built from ``plan.mtbf_tu`` and *streams* when omitted.
    """

    def __init__(
        self,
        plan: FaultPlan,
        streams: "RandomStreams | None" = None,
        crash_model: Optional[FailureModel] = None,
    ) -> None:
        self.plan = plan
        self._streams = streams
        if crash_model is None and plan.mtbf_tu is not None:
            if streams is None:
                raise CloudError("crash injection needs RandomStreams")
            crash_model = FailureModel(
                plan.mtbf_tu,
                streams.stream(CRASH_STREAM),
                public_mtbf_tu=plan.public_mtbf_tu,
            )
        self.crash_model = crash_model
        needs_streams = (
            plan.p_boot_fail > 0
            or plan.p_deploy_fail > 0
            or (plan.p_deploy_fail_public or 0) > 0
            or plan.p_straggler > 0
            or plan.p_corrupt > 0
        )
        if needs_streams and streams is None:
            raise CloudError("probabilistic fault streams need RandomStreams")
        # Per-class injection counters (what the chaos layer actually did).
        self.boot_failures_injected = 0
        self.deploy_failures_injected = 0
        self.stragglers_injected = 0
        self.corruptions_injected = 0
        self.evictions_drawn = 0

    @staticmethod
    def from_failure_model(model: FailureModel) -> "FaultInjector":
        """Wrap a legacy crash-only :class:`FailureModel`."""
        plan = FaultPlan(
            mtbf_tu=model.mtbf_tu, public_mtbf_tu=model.public_mtbf_tu
        )
        return FaultInjector(plan, crash_model=model)

    # -- crashes ---------------------------------------------------------------
    @property
    def crashes_enabled(self) -> bool:
        return self.crash_model is not None

    def draw_lifetime(self, tier: str) -> float:
        """One VM's time-to-failure from boot (TU)."""
        if self.crash_model is None:
            raise CloudError("crash injection is not enabled")
        return self.crash_model.draw_lifetime(tier)

    # -- spot evictions --------------------------------------------------------
    def draw_eviction(self, mtbf_tu: float) -> float:
        """One spot worker's time-to-eviction (TU).

        Exponential with the tier's (price-scaled) eviction MTBF, drawn
        from the dedicated ``faults.spot`` stream so spot tiers never
        perturb crash/boot/deploy/straggler/corruption draws.
        """
        if mtbf_tu <= 0:
            raise CloudError("eviction MTBF must be positive")
        if self._streams is None:
            raise CloudError("spot evictions need RandomStreams")
        self.evictions_drawn += 1
        return float(self._streams.stream(SPOT_STREAM).exponential(mtbf_tu))

    # -- probabilistic streams ------------------------------------------------
    def _bernoulli(self, stream_name: str, p: float) -> bool:
        if p <= 0.0:
            return False
        assert self._streams is not None
        return bool(self._streams.stream(stream_name).random() < p)

    def boot_fails(self, tier: str) -> bool:
        """Whether this boot sequence dies before reaching READY."""
        hit = self._bernoulli(BOOT_STREAM, self.plan.p_boot_fail)
        if hit:
            self.boot_failures_injected += 1
        return hit

    def deploy_fails(self, tier: str) -> bool:
        """Whether this deploy request bounces transiently."""
        hit = self._bernoulli(
            DEPLOY_STREAM, self.plan.deploy_fail_probability(tier)
        )
        if hit:
            self.deploy_failures_injected += 1
        return hit

    @property
    def stragglers_enabled(self) -> bool:
        return self.plan.p_straggler > 0

    def straggler_multiplier(self) -> float:
        """This task's duration multiplier (1.0 for a healthy task).

        Straggling tasks slow down by ``min_factor * (1 + Pareto(alpha))``
        -- heavy-tailed, matching the observed dominance of a few extreme
        stragglers over tail latency.
        """
        if not self._bernoulli(STRAGGLER_STREAM, self.plan.p_straggler):
            return 1.0
        assert self._streams is not None
        draw = self._streams.stream(STRAGGLER_STREAM).pareto(
            self.plan.straggler_alpha
        )
        self.stragglers_injected += 1
        return self.plan.straggler_min_factor * (1.0 + float(draw))

    def corrupts(self) -> bool:
        """Whether this completed stage is retroactively invalid."""
        hit = self._bernoulli(CORRUPT_STREAM, self.plan.p_corrupt)
        if hit:
            self.corruptions_injected += 1
        return hit
