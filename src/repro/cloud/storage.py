"""Storage stand-ins: shared filesystem (CIFS) and replicated KV (Cassandra).

"The current SCAN implementation realises the design using ... existing
Linux and Windows services for the workers, CIFS for the shared filesystem
and Apache Cassandra for the database" (paper Section III-B).  The
simulation only needs their *timing and visibility* semantics:

- :class:`SharedFilesystem` -- a path -> metadata namespace with a bandwidth
  model, so data staging has a simulated duration ("analysis processes
  spend large proportions of their running time on blocked I/O").
- :class:`ReplicatedKVStore` -- an eventually-consistent-flavoured KV map
  with per-replica read/write latency, standing in for Cassandra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.errors import CloudError
from repro.desim.engine import Environment

__all__ = ["FileMeta", "SharedFilesystem", "ReplicatedKVStore", "TransferError"]


class TransferError(CloudError):
    """A staging/transfer failure (missing file, bad size)."""


@dataclass(frozen=True)
class FileMeta:
    """Metadata for one stored file."""

    path: str
    size_gb: float
    created_at: float
    #: Free-form type tag (matches the 'data type' column of Figure 2).
    data_type: str = ""


class SharedFilesystem:
    """A shared namespace with a transfer-time model.

    ``bandwidth_gb_per_tu`` converts file sizes into staging delays;
    concurrent transfers share nothing (each takes its full time), which
    is pessimistic but simple -- the paper's stages are compute-bound, so
    staging is a secondary effect here.
    """

    def __init__(self, env: Environment, bandwidth_gb_per_tu: float = 60.0) -> None:
        if bandwidth_gb_per_tu <= 0:
            raise CloudError("bandwidth must be positive")
        self.env = env
        self.bandwidth_gb_per_tu = bandwidth_gb_per_tu
        self._files: dict[str, FileMeta] = {}
        self.bytes_written_gb = 0.0
        self.bytes_read_gb = 0.0

    def exists(self, path: str) -> bool:
        """Whether *path* is present in the namespace."""
        return path in self._files

    def stat(self, path: str) -> FileMeta:
        """Metadata for *path*; raises TransferError if absent."""
        try:
            return self._files[path]
        except KeyError:
            raise TransferError(f"no such file: {path}") from None

    def transfer_time(self, size_gb: float) -> float:
        """Staging delay for *size_gb* at the modeled bandwidth (TU)."""
        if size_gb < 0:
            raise TransferError(f"negative size {size_gb}")
        return size_gb / self.bandwidth_gb_per_tu

    def write(self, path: str, size_gb: float, data_type: str = ""):
        """Process: stage a file in; completes after the transfer time."""
        delay = self.transfer_time(size_gb)
        if delay > 0:
            yield self.env.timeout(delay)
        meta = FileMeta(
            path=path, size_gb=size_gb, created_at=self.env.now, data_type=data_type
        )
        self._files[path] = meta
        self.bytes_written_gb += size_gb
        return meta

    def read(self, path: str):
        """Process: fetch a file; completes after the transfer time."""
        meta = self.stat(path)
        delay = self.transfer_time(meta.size_gb)
        if delay > 0:
            yield self.env.timeout(delay)
        self.bytes_read_gb += meta.size_gb
        return meta

    def delete(self, path: str) -> bool:
        """Remove *path*; True if it existed."""
        return self._files.pop(path, None) is not None

    def listdir(self, prefix: str = "/") -> list[FileMeta]:
        """Metadata of files under *prefix*, sorted by path."""
        return sorted(
            (m for p, m in self._files.items() if p.startswith(prefix)),
            key=lambda m: m.path,
        )

    def total_size_gb(self) -> float:
        """Sum of stored file sizes (GB)."""
        return sum(m.size_gb for m in self._files.values())


class ReplicatedKVStore:
    """A Cassandra-flavoured KV store: N replicas, quorum-latency model.

    Writes land on all replicas after ``write_latency_tu``; reads return
    the latest committed value after ``read_latency_tu``.  The replica
    count only affects the latency model (quorum = majority), matching the
    role Cassandra plays in the prototype (task/worker state tables).
    """

    def __init__(
        self,
        env: Environment,
        replicas: int = 3,
        read_latency_tu: float = 0.001,
        write_latency_tu: float = 0.002,
    ) -> None:
        if replicas < 1:
            raise CloudError("need at least one replica")
        if read_latency_tu < 0 or write_latency_tu < 0:
            raise CloudError("latencies must be >= 0")
        self.env = env
        self.replicas = replicas
        self.read_latency_tu = read_latency_tu
        self.write_latency_tu = write_latency_tu
        self._data: dict[str, tuple[float, Any]] = {}
        self.reads = 0
        self.writes = 0

    @property
    def quorum(self) -> int:
        return self.replicas // 2 + 1

    def put(self, key: str, value: Any):
        """Process: quorum write."""
        if self.write_latency_tu > 0:
            yield self.env.timeout(self.write_latency_tu)
        self._data[key] = (self.env.now, value)
        self.writes += 1
        return value

    def get(self, key: str, default: Any = None):
        """Process: quorum read; returns *default* for missing keys."""
        if self.read_latency_tu > 0:
            yield self.env.timeout(self.read_latency_tu)
        self.reads += 1
        entry = self._data.get(key)
        return entry[1] if entry is not None else default

    def get_now(self, key: str, default: Any = None) -> Any:
        """Zero-latency read for in-process bookkeeping paths."""
        entry = self._data.get(key)
        return entry[1] if entry is not None else default

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> list[str]:
        """All stored keys, sorted."""
        return sorted(self._data)
