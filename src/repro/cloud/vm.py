"""Virtual-machine lifecycle with start/restart penalties.

"We now pay the 30 second startup penalty whenever a worker was previously
assigned to a pool that uses a different number of threads, as CELAR would
need to shut it down, adjust the number of VCPUs, and restart it for its
new role" (paper Section IV-B).  With the paper's TU ~ 1 minute convention
the penalty defaults to 0.5 TU.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.core.errors import CloudError
from repro.cloud.infrastructure import Infrastructure, tier_name
from repro.desim.engine import Environment

__all__ = ["VMState", "VirtualMachine"]

_vm_ids = itertools.count(1)


class VMState(str, enum.Enum):
    """VM lifecycle states."""
    BOOTING = "booting"
    READY = "ready"
    BUSY = "busy"
    TERMINATED = "terminated"


class VirtualMachine:
    """A hired instance: N cores on one tier, costing while it exists.

    Core accounting starts at hire (the provider bills from boot) and stops
    at termination.  Boot and resize take ``startup_penalty_tu``.
    """

    def __init__(
        self,
        env: Environment,
        infrastructure: Infrastructure,
        cores: int,
        tier: str,
        startup_penalty_tu: float = 0.5,
    ) -> None:
        if cores < 1:
            raise CloudError(f"VM needs at least 1 core, got {cores}")
        if startup_penalty_tu < 0:
            raise CloudError("startup penalty must be >= 0")
        self.env = env
        self.infrastructure = infrastructure
        self.uid = next(_vm_ids)
        self.cores = cores
        self.tier = tier_name(tier)
        self.startup_penalty_tu = startup_penalty_tu
        self.state = VMState.BOOTING
        self.hired_at = env.now
        self.terminated_at: Optional[float] = None
        self.boot_count = 0
        infrastructure.allocate(cores, self.tier)

    def boot(self):
        """Process: pay the startup penalty, then become READY.

        Yields; run it via ``env.process(vm.boot())``.
        """
        if self.state is VMState.TERMINATED:
            raise CloudError(f"VM {self.uid} is terminated")
        self.state = VMState.BOOTING
        self.boot_count += 1
        if self.startup_penalty_tu > 0:
            yield self.env.timeout(self.startup_penalty_tu)
        if self.state is not VMState.TERMINATED:
            self.state = VMState.READY
        return self

    def reshape(self, new_cores: int) -> None:
        """Synchronously change the vCPU count (settles core accounting).

        Separate from the reboot so callers can claim capacity at decision
        time -- between a scheduling decision and the boot process running,
        other decisions fire, and check-then-allocate must not race.
        A reboot (:meth:`boot`) must follow before the VM serves work.
        """
        if self.state is VMState.TERMINATED:
            raise CloudError(f"VM {self.uid} is terminated")
        if new_cores < 1:
            raise CloudError(f"VM needs at least 1 core, got {new_cores}")
        if new_cores != self.cores:
            delta = new_cores - self.cores
            if delta > 0:
                self.infrastructure.allocate(delta, self.tier)
            else:
                self.infrastructure.release(-delta, self.tier)
            self.cores = new_cores
        self.state = VMState.BOOTING

    def resize(self, new_cores: int):
        """Process: shut down, change vCPU count, restart (CELAR resize)."""
        self.reshape(new_cores)
        yield from self.boot()
        return self

    def mark_busy(self) -> None:
        """Transition READY -> BUSY (taking a task)."""
        if self.state is not VMState.READY:
            raise CloudError(
                f"VM {self.uid} must be READY to take work (state={self.state.value})"
            )
        self.state = VMState.BUSY

    def mark_idle(self) -> None:
        """Transition BUSY -> READY (task done)."""
        if self.state is not VMState.BUSY:
            raise CloudError(
                f"VM {self.uid} is not BUSY (state={self.state.value})"
            )
        self.state = VMState.READY

    def terminate(self) -> None:
        """Release cores and stop billing.  Idempotent."""
        if self.state is VMState.TERMINATED:
            return
        self.state = VMState.TERMINATED
        self.terminated_at = self.env.now
        self.infrastructure.release(self.cores, self.tier)

    @property
    def alive(self) -> bool:
        return self.state is not VMState.TERMINATED

    @property
    def core_cost_per_tu(self) -> float:
        return self.cores * self.infrastructure.tier(self.tier).core_cost_per_tu

    def lifetime(self) -> float:
        """Time from hire to termination (or to now) in TU."""
        end = self.terminated_at if self.terminated_at is not None else self.env.now
        return end - self.hired_at

    def accumulated_cost(self) -> float:
        """CU spent on this VM so far (uniform shape over its lifetime)."""
        return self.lifetime() * self.core_cost_per_tu

    def __repr__(self) -> str:
        return (
            f"<VM {self.uid} {self.cores}c {self.tier} "
            f"{self.state.value}>"
        )
