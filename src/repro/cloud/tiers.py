"""Pluggable tier backends and placement policies.

The paper's evaluation cloud is exactly two tiers; real elastic platforms
are not.  This module turns "a tier" into a plugin family:

- :data:`TIER_BACKENDS` -- a registry of tier implementations keyed by
  backend name.  ``reserved`` is the paper's bounded private tier,
  ``on_demand`` its unbounded public tier, ``serverless`` a FaaS-style
  tier (per-invocation pricing, cold-start latency, hard per-allocation
  caps -- the Arjona et al. variant-calling-on-FaaS model), and ``spot``
  a preemptible tier whose evictions are a first-class fault stream with
  price-correlated intensity.
- :data:`TIER_PLACEMENT` -- a registry of placement policies over an
  ordered tier stack.  ``cheapest_first`` reproduces the paper's
  private-first placement for the default configuration; ``first_fit``
  honours the configured order verbatim.

Out-of-tree backends register exactly like every other plugin family::

    from repro.cloud.tiers import TIER_BACKENDS

    @TIER_BACKENDS.register("burstable")
    def _burstable(env, name, capacity_cores, core_cost_per_tu, **extras):
        return BurstableTier(env, name, capacity_cores, core_cost_per_tu)
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from repro.cloud.infrastructure import CloudTier, Infrastructure
from repro.core.errors import CloudError
from repro.core.plugins import Registry
from repro.desim.engine import Environment

__all__ = [
    "TIER_BACKENDS",
    "TIER_PLACEMENT",
    "OnDemandTier",
    "ServerlessTier",
    "SpotTier",
    "build_tier",
    "infrastructure_from_cloud_config",
    "tier_stack_description",
]

#: Plugin registry of tier backends: ``(env, name, **params) -> CloudTier``.
TIER_BACKENDS: "Registry[CloudTier]" = Registry("tier_backend")

#: Plugin registry of placement policies:
#: ``() -> (tiers, cores, duration_tu) -> Optional[CloudTier]``.
TIER_PLACEMENT: "Registry[Any]" = Registry("tier_placement")


# -- backends -----------------------------------------------------------------
class OnDemandTier(CloudTier):
    """Today's public tier: pay-per-core-TU, effectively unbounded.

    Identical accounting to the reserved backend; the difference is
    *role*: elastic tiers are hired through the scaling policy and
    guarded by the deploy circuit breaker.
    """

    backend = "on_demand"
    elastic = True


class ServerlessTier(CloudTier):
    """A FaaS-style tier: per-invocation pricing, cold starts, hard caps.

    Each allocation ("invocation") charges ``invocation_cost`` CU up
    front on top of the metered core-TU rate, pays ``cold_start_tu`` of
    extra boot latency, and is rejected at placement when it exceeds the
    per-allocation core cap (the FaaS memory limit, cores being the
    platform's memory proxy at 4 GB/core) or -- when the caller knows the
    expected duration -- the per-allocation duration cap.
    """

    backend = "serverless"
    elastic = True

    def __init__(
        self,
        env: Environment,
        name: str,
        capacity_cores: int = 1_000_000,
        core_cost_per_tu: float = 0.0,
        invocation_cost: float = 0.0,
        cold_start_tu: float = 0.0,
        max_cores_per_allocation: Optional[int] = None,
        max_duration_tu: Optional[float] = None,
    ) -> None:
        super().__init__(env, name, capacity_cores, core_cost_per_tu)
        if invocation_cost < 0:
            raise CloudError(f"negative invocation cost for tier {self.name}")
        if cold_start_tu < 0:
            raise CloudError(f"negative cold start for tier {self.name}")
        if max_cores_per_allocation is not None and max_cores_per_allocation < 1:
            raise CloudError(
                f"max_cores_per_allocation must be >= 1 for tier {self.name}"
            )
        if max_duration_tu is not None and max_duration_tu <= 0:
            raise CloudError(
                f"max_duration_tu must be positive for tier {self.name}"
            )
        self.invocation_cost = invocation_cost
        self.cold_start_tu = cold_start_tu
        self.max_cores_per_allocation = max_cores_per_allocation
        self.max_duration_tu = max_duration_tu
        self.invocations = 0
        self._invocation_cu = 0.0

    def placement_check(
        self, cores: int, duration_tu: Optional[float] = None
    ) -> Optional[str]:
        cap = self.max_cores_per_allocation
        if cap is not None and cores > cap:
            return (
                f"tier {self.name} caps allocations at {cap} cores; "
                f"{cores} requested"
            )
        if (
            duration_tu is not None
            and self.max_duration_tu is not None
            and duration_tu > self.max_duration_tu
        ):
            return (
                f"tier {self.name} caps invocations at "
                f"{self.max_duration_tu} TU; {duration_tu:.3f} expected"
            )
        return None

    def allocate(self, cores: int) -> None:
        super().allocate(cores)
        self.invocations += 1
        self._invocation_cu += self.invocation_cost

    def allocation_latency_tu(self, cores: int) -> float:
        return self.cold_start_tu

    def cost_rate(self) -> float:
        # Invocation charges are impulses, not a rate; only the metered
        # core-TU component contributes to the instantaneous spend rate.
        return super().cost_rate()

    def accumulated_cost(self) -> float:
        return super().accumulated_cost() + self._invocation_cu

    def caps(self) -> dict:
        caps: dict = {}
        if self.max_cores_per_allocation is not None:
            caps["max_cores_per_allocation"] = self.max_cores_per_allocation
        if self.max_duration_tu is not None:
            caps["max_duration_tu"] = self.max_duration_tu
        return caps

    def describe(self) -> dict:
        desc = super().describe()
        desc["invocation_cost"] = self.invocation_cost
        desc["cold_start_tu"] = self.cold_start_tu
        desc["invocations"] = self.invocations
        return desc


class SpotTier(CloudTier):
    """A preemptible tier: cheap cores that the provider reclaims.

    Evictions are modelled as exponential worker lifetimes drawn from
    the dedicated ``faults.spot`` RNG stream (see
    :mod:`repro.cloud.faults`), with *price-correlated intensity*: when
    ``reference_cost_per_tu`` (typically the on-demand price) is set, the
    effective MTBF scales by ``core_cost_per_tu / reference_cost_per_tu``
    -- the deeper the discount, the sooner the capacity is reclaimed.
    Evicted tasks flow through the scheduler's ordinary retry /
    dead-letter resilience path.
    """

    backend = "spot"
    elastic = True

    def __init__(
        self,
        env: Environment,
        name: str,
        capacity_cores: int,
        core_cost_per_tu: float,
        eviction_mtbf_tu: Optional[float] = None,
        reference_cost_per_tu: Optional[float] = None,
    ) -> None:
        super().__init__(env, name, capacity_cores, core_cost_per_tu)
        if eviction_mtbf_tu is not None and eviction_mtbf_tu <= 0:
            raise CloudError(
                f"eviction_mtbf_tu must be positive for tier {self.name}"
            )
        if reference_cost_per_tu is not None and reference_cost_per_tu <= 0:
            raise CloudError(
                f"reference_cost_per_tu must be positive for tier {self.name}"
            )
        self.eviction_mtbf_tu = eviction_mtbf_tu
        self.reference_cost_per_tu = reference_cost_per_tu
        self.evictions = 0

    @property
    def effective_eviction_mtbf(self) -> Optional[float]:
        """The price-scaled eviction MTBF (TU); None disables evictions."""
        base = self.eviction_mtbf_tu
        if base is None:
            return None
        ref = self.reference_cost_per_tu
        if ref is not None and self.core_cost_per_tu > 0:
            return base * (self.core_cost_per_tu / ref)
        return base

    def record_eviction(self) -> None:
        """Count one provider reclaim (the worker pool reports them)."""
        self.evictions += 1

    def caps(self) -> dict:
        return {}

    def describe(self) -> dict:
        desc = super().describe()
        desc["eviction_mtbf_tu"] = self.eviction_mtbf_tu
        desc["effective_eviction_mtbf_tu"] = self.effective_eviction_mtbf
        desc["evictions"] = self.evictions
        return desc


# -- backend registrations ----------------------------------------------------
@TIER_BACKENDS.register("reserved")
def _reserved(
    env: Environment, name: str, capacity_cores: int = 0,
    core_cost_per_tu: float = 0.0, **_ignored,
) -> CloudTier:
    return CloudTier(env, name, capacity_cores, core_cost_per_tu)


@TIER_BACKENDS.register("on_demand")
def _on_demand(
    env: Environment, name: str, capacity_cores: int = 1_000_000,
    core_cost_per_tu: float = 0.0, **_ignored,
) -> CloudTier:
    return OnDemandTier(env, name, capacity_cores, core_cost_per_tu)


@TIER_BACKENDS.register("serverless")
def _serverless(
    env: Environment, name: str, capacity_cores: int = 1_000_000,
    core_cost_per_tu: float = 0.0, invocation_cost: float = 0.0,
    cold_start_tu: float = 0.0,
    max_cores_per_allocation: Optional[int] = None,
    max_duration_tu: Optional[float] = None, **_ignored,
) -> CloudTier:
    return ServerlessTier(
        env, name, capacity_cores, core_cost_per_tu,
        invocation_cost=invocation_cost, cold_start_tu=cold_start_tu,
        max_cores_per_allocation=max_cores_per_allocation,
        max_duration_tu=max_duration_tu,
    )


@TIER_BACKENDS.register("spot")
def _spot(
    env: Environment, name: str, capacity_cores: int = 0,
    core_cost_per_tu: float = 0.0,
    eviction_mtbf_tu: Optional[float] = None,
    reference_cost_per_tu: Optional[float] = None, **_ignored,
) -> CloudTier:
    return SpotTier(
        env, name, capacity_cores, core_cost_per_tu,
        eviction_mtbf_tu=eviction_mtbf_tu,
        reference_cost_per_tu=reference_cost_per_tu,
    )


# -- placement policies -------------------------------------------------------
def _fits(tier: CloudTier, cores: int, duration_tu: Optional[float]) -> bool:
    return (
        cores <= tier.cores_free
        and tier.placement_check(cores, duration_tu) is None
    )


@TIER_PLACEMENT.register("cheapest_first")
def _cheapest_first():
    """Cheapest fitting tier wins; price ties keep configured order.

    For the default stack (private @ 5, public @ 50) this is exactly the
    paper's private-first placement.
    """

    def place(
        tiers: Iterable[CloudTier], cores: int,
        duration_tu: Optional[float] = None,
    ) -> Optional[CloudTier]:
        for tier in sorted(tiers, key=lambda t: t.core_cost_per_tu):
            if _fits(tier, cores, duration_tu):
                return tier
        return None

    return place


@TIER_PLACEMENT.register("first_fit")
def _first_fit():
    """First fitting tier in configured order, regardless of price."""

    def place(
        tiers: Iterable[CloudTier], cores: int,
        duration_tu: Optional[float] = None,
    ) -> Optional[CloudTier]:
        for tier in tiers:
            if _fits(tier, cores, duration_tu):
                return tier
        return None

    return place


# -- config glue --------------------------------------------------------------
def build_tier(env: Environment, spec) -> CloudTier:
    """Instantiate one tier from a spec (a ``TierConfig`` or mapping)."""
    if isinstance(spec, Mapping):
        params = dict(spec)
    else:  # dataclass-style (core.config.TierConfig)
        from dataclasses import asdict

        params = asdict(spec)
    name = params.pop("name", None)
    if not name:
        raise CloudError("tier spec needs a 'name'")
    backend = params.pop("backend", "reserved")
    return TIER_BACKENDS.create(backend, env, name, **params)


def infrastructure_from_cloud_config(env: Environment, cloud) -> Infrastructure:
    """Build the tier stack a ``CloudConfig`` describes.

    An explicit ``tiers:`` list wins; otherwise the legacy two-tier
    fields (``private_cores`` / ``public_core_cost`` / ...) produce the
    default reserved + on-demand pair, byte-identical to the
    pre-refactor wiring.
    """
    specs = getattr(cloud, "tiers", ())
    placement = getattr(cloud, "placement", "cheapest_first")
    if specs:
        return Infrastructure(
            env,
            tiers=[build_tier(env, spec) for spec in specs],
            placement=placement,
        )
    return Infrastructure(
        env,
        private_cores=cloud.private_cores,
        private_cost=cloud.private_core_cost,
        public_cores=cloud.public_cores,
        public_cost=cloud.public_core_cost,
        placement=placement,
    )


def tier_stack_description(cloud) -> list[dict]:
    """The configured tier stack as JSON-friendly dicts (no simulation).

    Used by ``scan-sim tiers`` to dump a config's stack without running
    anything: a throwaway environment at t=0 hosts the backends purely
    for their configuration view.
    """
    env = Environment()
    infra = infrastructure_from_cloud_config(env, cloud)
    out = []
    for desc in infra.describe():
        desc.pop("cores_in_use", None)
        out.append(desc)
    return out
