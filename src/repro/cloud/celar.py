"""CELAR elasticity middleware stand-in: Manager and Decision Module.

"The CELAR Manager is a cloud component to orchestrate and execute the
deployment of the applications in the cloud, and the Decision Module takes
automated control measures, based on application behaviour and the
user-defined requirements ... the SCAN can query the analysis performance
characteristics and issue scaling commands to the underlying cloud
infrastructure" (paper Section III-B).

The :class:`CelarManager` owns VM deployment/resize/termination (imposing
the startup penalty); the :class:`CelarDecisionModule` evaluates
user-defined threshold rules against metrics the platform reports and
emits :class:`ScalingCommand` suggestions.  SCAN's own predictive scaler
makes the actual hire decisions; the decision module demonstrates the
middleware interface the paper integrates with ("the SCAN can function
independent of the CELAR").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.cloud.infrastructure import Infrastructure, tier_name
from repro.cloud.vm import VirtualMachine, VMState
from repro.core.errors import CloudError, TransientDeployError
from repro.desim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.cloud.faults import FaultInjector
    from repro.telemetry.tracing import SpanTracer

__all__ = ["CelarManager", "CelarDecisionModule", "ScalingCommand", "ScalingRule"]


class ScalingCommand(str, enum.Enum):
    """Elasticity action suggested by the decision module."""
    SCALE_OUT = "scale_out"
    SCALE_IN = "scale_in"
    HOLD = "hold"


class CelarManager:
    """Deploys, resizes and terminates VMs on the simulated cloud."""

    def __init__(
        self,
        env: Environment,
        infrastructure: Infrastructure,
        startup_penalty_tu: float = 0.5,
        allowed_sizes: tuple[int, ...] = (1, 2, 4, 8, 16),
        ram_per_core_gb: float = 4.0,
        injector: "FaultInjector | None" = None,
        tracer: "SpanTracer | None" = None,
    ) -> None:
        """``ram_per_core_gb``: instance memory scales with vCPUs (the
        paper's private nodes carry 64 GB across 16 cores -> 4 GB/core), so
        a memory-hungry stage may need a larger instance than its thread
        count alone would ("the GATK ... may need a large amount of main
        memory", Section II-A)."""
        if not allowed_sizes:
            raise CloudError("allowed_sizes must be non-empty")
        if ram_per_core_gb <= 0:
            raise CloudError("ram_per_core_gb must be positive")
        self.env = env
        self.infrastructure = infrastructure
        self.startup_penalty_tu = startup_penalty_tu
        self.allowed_sizes = tuple(sorted(allowed_sizes))
        self.ram_per_core_gb = ram_per_core_gb
        #: Optional chaos layer; when set, deploys may bounce transiently.
        self.injector = injector
        #: Optional telemetry tracer (passive: reads the clock, never the
        #: RNG, so traced deployments are identical to untraced ones).
        self.tracer = tracer
        self.vms: list[VirtualMachine] = []
        self.deploy_count = 0
        self.resize_count = 0
        self.deploy_failures = 0

    def instance_ram_gb(self, cores: int) -> float:
        """Memory of a *cores*-vCPU instance."""
        return cores * self.ram_per_core_gb

    def fit_size(self, cores_needed: int, ram_gb: float = 0.0) -> int:
        """Smallest allowed instance with enough cores AND memory."""
        for size in self.allowed_sizes:
            if size >= cores_needed and self.instance_ram_gb(size) >= ram_gb:
                return size
        raise CloudError(
            f"no instance size fits {cores_needed} cores / {ram_gb} GB "
            f"(largest is {self.allowed_sizes[-1]})"
        )

    def deploy(self, cores: int, tier: str) -> VirtualMachine:
        """Hire a VM: cores are claimed NOW; boot still takes the penalty.

        Allocation is synchronous so a scheduling decision's capacity check
        cannot race against other decisions taken before the boot process
        runs.  Call ``env.process(vm.boot())`` (or let the worker pool do
        it) to bring the VM to READY.

        ``cores`` must be one of the allowed instance sizes (use
        :meth:`fit_size` to round up).  Tiers with per-allocation latency
        (a serverless cold start) add it to the boot penalty.
        """
        tier = tier_name(tier)
        if cores not in self.allowed_sizes:
            raise CloudError(
                f"{cores} is not an allowed instance size {self.allowed_sizes}"
            )
        if self.injector is not None and self.injector.deploy_fails(tier):
            # Fails before any capacity is claimed, so there is nothing to
            # roll back -- the request simply bounced.
            self.deploy_failures += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "celar.deploy_failed",
                    "cloud",
                    args={"tier": tier, "cores": cores},
                )
            raise TransientDeployError(
                f"transient provisioning error on {tier} tier "
                f"({cores} cores)"
            )
        penalty = self.startup_penalty_tu
        extra = self.infrastructure.tier(tier).allocation_latency_tu(cores)
        if extra > 0:
            penalty += extra
        vm = VirtualMachine(
            self.env,
            self.infrastructure,
            cores=cores,
            tier=tier,
            startup_penalty_tu=penalty,
        )
        self.vms.append(vm)
        self.deploy_count += 1
        if self.tracer is not None:
            self.tracer.instant(
                "celar.deploy",
                "cloud",
                args={"tier": tier, "cores": cores, "vm": vm.uid},
            )
        return vm

    def deploy_and_boot(self, cores: int, tier: str):
        """Process: :meth:`deploy` then boot; returns the READY VM."""
        vm = self.deploy(cores, tier)
        yield from vm.boot()
        return vm

    def begin_resize(self, vm: VirtualMachine, new_cores: int) -> None:
        """Synchronously reshape a VM; a reboot must follow (same rationale
        as :meth:`deploy`: core deltas settle at decision time)."""
        if new_cores not in self.allowed_sizes:
            raise CloudError(
                f"{new_cores} is not an allowed instance size {self.allowed_sizes}"
            )
        old_cores = vm.cores
        self.resize_count += 1
        vm.reshape(new_cores)
        if self.tracer is not None:
            self.tracer.instant(
                "celar.resize",
                "cloud",
                args={"vm": vm.uid, "from": old_cores, "to": new_cores,
                      "tier": vm.tier},
            )

    def resize(self, vm: VirtualMachine, new_cores: int):
        """Process: stop, adjust vCPUs, restart (pays the penalty)."""
        self.begin_resize(vm, new_cores)
        yield from vm.boot()
        return vm

    def terminate(self, vm: VirtualMachine) -> None:
        """Terminate a VM (releases its cores; idempotent)."""
        vm.terminate()

    def alive_vms(self) -> list[VirtualMachine]:
        """All VMs not yet terminated."""
        return [vm for vm in self.vms if vm.alive]

    def terminate_all(self) -> None:
        """Terminate every live VM."""
        for vm in self.alive_vms():
            vm.terminate()


@dataclass(frozen=True)
class ScalingRule:
    """A user-defined elasticity rule: metric thresholds -> command."""

    metric: str
    scale_out_above: float
    scale_in_below: float

    def __post_init__(self) -> None:
        if self.scale_in_below > self.scale_out_above:
            raise CloudError(
                "scale_in_below must not exceed scale_out_above"
            )

    def evaluate(self, value: float) -> ScalingCommand:
        """The command this rule issues for a metric value."""
        if value > self.scale_out_above:
            return ScalingCommand.SCALE_OUT
        if value < self.scale_in_below:
            return ScalingCommand.SCALE_IN
        return ScalingCommand.HOLD


class CelarDecisionModule:
    """Threshold-rule engine over reported application metrics."""

    def __init__(self) -> None:
        self._rules: dict[str, ScalingRule] = {}
        self._metrics: dict[str, float] = {}
        self._listeners: list[Callable[[str, ScalingCommand], None]] = []

    def add_rule(self, rule: ScalingRule) -> None:
        """Install (or replace) the rule for the rule's metric."""
        self._rules[rule.metric] = rule

    def report(self, metric: str, value: float) -> Optional[ScalingCommand]:
        """Report an application metric; returns the triggered command."""
        self._metrics[metric] = value
        rule = self._rules.get(metric)
        if rule is None:
            return None
        command = rule.evaluate(value)
        for listener in self._listeners:
            listener(metric, command)
        return command

    def on_command(self, listener: Callable[[str, ScalingCommand], None]) -> None:
        """Register a listener for triggered commands."""
        self._listeners.append(listener)

    def latest(self, metric: str, default: float = 0.0) -> float:
        """The most recently reported value of *metric*."""
        return self._metrics.get(metric, default)
