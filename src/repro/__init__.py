"""repro: a full reproduction of SCAN (ICPP 2015).

SCAN is a smart application platform for parallelizing big genomic data
analysis in clouds.  This package reimplements, from scratch, every system
the paper describes or depends on:

- :mod:`repro.desim` -- a discrete-event simulation kernel (the substrate the
  paper's evaluation runs on).
- :mod:`repro.ontology` -- an in-memory triple store, OWL-lite model and a
  SPARQL-subset query engine (the paper's Jena/Protege stack).
- :mod:`repro.knowledge` -- the SCAN application knowledge base: profiled
  performance facts, regression-fit updates from task logs, shard advice.
- :mod:`repro.genomics` -- genomic data formats (FASTA/FASTQ/SAM/VCF/MGF),
  parsers, writers and deterministic synthetic generators.
- :mod:`repro.apps` -- analytical bio-application models (the 7-stage GATK
  pipeline of Table II, BWA, MuTect, MaxQuant, CellProfiler, Cytoscape).
- :mod:`repro.broker` -- the Data Broker: format-aware sharders and mergers
  guided by the knowledge base.
- :mod:`repro.scheduler` -- the reward-driven SCAN Scheduler: queues, worker
  pools, reward/cost functions, ETT estimation, delay cost, allocation and
  horizontal-scaling algorithms.
- :mod:`repro.cloud` -- the simulated two-tier hybrid cloud: VM lifecycle
  with restart penalty, pricing, CELAR-like elasticity middleware, storage.
- :mod:`repro.workload` -- the paper's batched stochastic workload generator.
- :mod:`repro.sim` -- the evaluation harness: sessions, sweeps, metrics and
  table/figure reporters for every table and figure in the paper.
- :mod:`repro.core` -- the SCANPlatform facade wiring it all together.
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "SCANPlatform",
    "PlatformConfig",
    "SimulationConfig",
    "RewardConfig",
    "CloudConfig",
    "WorkloadConfig",
]

# Lazy attribute access (PEP 562): keeps ``import repro`` cheap and lets the
# subpackages be imported individually without pulling in the whole platform.
_LAZY = {
    "SCANPlatform": ("repro.core.platform", "SCANPlatform"),
    "PlatformConfig": ("repro.core.config", "PlatformConfig"),
    "SimulationConfig": ("repro.core.config", "SimulationConfig"),
    "RewardConfig": ("repro.core.config", "RewardConfig"),
    "CloudConfig": ("repro.core.config", "CloudConfig"),
    "WorkloadConfig": ("repro.core.config", "WorkloadConfig"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
