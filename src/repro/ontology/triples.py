"""RDF terms and an indexed in-memory triple store.

Terms
-----
- :class:`IRI` -- an absolute IRI (plain string subclass).
- :class:`Literal` -- a typed literal value (int, float, str, bool).
- :class:`BlankNode` -- an anonymous node with a store-local label.

Store
-----
:class:`TripleStore` keeps three hash indexes (SPO, POS, OSP) so that every
single-wildcard match pattern is answered from the index that binds the most
terms, mirroring how Jena's memory graphs work.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, NamedTuple, Optional, Union

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Term",
    "Triple",
    "TripleStore",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
]


class IRI(str):
    """An IRI term.  Subclasses ``str`` so it hashes/compares naturally."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"IRI({str.__repr__(self)})"

    @property
    def local_name(self) -> str:
        """The fragment (after '#') or last path segment of the IRI."""
        if "#" in self:
            return self.rsplit("#", 1)[1]
        return self.rstrip("/").rsplit("/", 1)[-1]


class Literal:
    """A typed RDF literal.

    The value is a native Python ``int``, ``float``, ``bool`` or ``str``;
    the XSD datatype is derived from the Python type unless given.
    """

    __slots__ = ("value", "datatype")

    _XSD = "http://www.w3.org/2001/XMLSchema#"

    def __init__(self, value: Any, datatype: Optional[str] = None) -> None:
        if isinstance(value, Literal):
            value = value.value
        if not isinstance(value, (int, float, bool, str)):
            raise TypeError(f"unsupported literal value type: {type(value).__name__}")
        self.value = value
        if datatype is None:
            if isinstance(value, bool):
                datatype = self._XSD + "boolean"
            elif isinstance(value, int):
                datatype = self._XSD + "integer"
            elif isinstance(value, float):
                datatype = self._XSD + "double"
            else:
                datatype = self._XSD + "string"
        self.datatype = datatype

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return self.value == other.value and self.datatype == other.datatype
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.datatype))

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)

    def as_number(self) -> float:
        """The literal as a float; raises for non-numeric literals."""
        if isinstance(self.value, bool):
            return float(self.value)
        if isinstance(self.value, (int, float)):
            return float(self.value)
        try:
            return float(self.value)
        except ValueError:
            raise TypeError(f"literal {self.value!r} is not numeric") from None


class BlankNode:
    """An anonymous RDF node."""

    __slots__ = ("label",)
    _counter = itertools.count()

    def __init__(self, label: Optional[str] = None) -> None:
        self.label = label if label is not None else f"b{next(self._counter)}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BlankNode):
            return self.label == other.label
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("_bnode_", self.label))

    def __repr__(self) -> str:
        return f"BlankNode(_:{self.label})"


Term = Union[IRI, Literal, BlankNode]


class Triple(NamedTuple):
    """A single (subject, predicate, object) statement."""

    subject: Term
    predicate: IRI
    object: Term


class Namespace:
    """IRI factory: ``ns.term`` and ``ns['term']`` build prefixed IRIs."""

    def __init__(self, base: str) -> None:
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self._base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self._base + name)

    def __contains__(self, iri: str) -> bool:
        return isinstance(iri, str) and iri.startswith(self._base)

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")


def _as_term(value: Any) -> Term:
    """Coerce a Python value into an RDF term."""
    if isinstance(value, (IRI, Literal, BlankNode)):
        return value
    if isinstance(value, str):
        # Bare strings become literals; IRIs must be explicit.
        return Literal(value)
    if isinstance(value, (int, float, bool)):
        return Literal(value)
    raise TypeError(f"cannot coerce {value!r} into an RDF term")


class TripleStore:
    """An indexed, in-memory set of triples with wildcard matching.

    ``match(s, p, o)`` treats ``None`` as a wildcard and streams matching
    triples from the most selective index.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._spo: dict[Term, dict[IRI, set[Term]]] = {}
        self._pos: dict[IRI, dict[Term, set[Term]]] = {}
        self._osp: dict[Term, dict[Term, set[IRI]]] = {}
        self._size = 0
        self._epoch = 0
        self._prefixes: dict[str, str] = {
            "rdf": RDF.base,
            "rdfs": RDFS.base,
            "owl": OWL.base,
            "xsd": XSD.base,
        }

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped on every effective add/remove.

        Cache layers (the SPARQL result cache in
        :mod:`repro.ontology.sparql`) key on this to invalidate whenever
        the triple set changes; no-op inserts/removes do not bump it.
        """
        return self._epoch

    # -- prefixes -----------------------------------------------------------
    def bind_prefix(self, prefix: str, base: str) -> None:
        """Register *prefix* for serialization and query expansion."""
        self._prefixes[prefix] = base

    @property
    def prefixes(self) -> dict[str, str]:
        return dict(self._prefixes)

    def expand(self, qname: str) -> IRI:
        """Expand ``prefix:local`` into a full IRI."""
        if ":" not in qname:
            raise ValueError(f"{qname!r} is not a prefixed name")
        prefix, local = qname.split(":", 1)
        try:
            return IRI(self._prefixes[prefix] + local)
        except KeyError:
            raise KeyError(f"unknown prefix {prefix!r}") from None

    def shrink(self, iri: str) -> str:
        """Compact an IRI into ``prefix:local`` form when a prefix matches."""
        for prefix, base in sorted(
            self._prefixes.items(), key=lambda kv: -len(kv[1])
        ):
            if iri.startswith(base):
                return f"{prefix}:{iri[len(base):]}"
        return iri

    # -- mutation -----------------------------------------------------------
    def add(self, subject: Any, predicate: Any, obj: Any) -> Triple:
        """Insert one triple; returns it.  Duplicate inserts are no-ops."""
        s = _as_subject(subject)
        p = _as_predicate(predicate)
        o = _as_term(obj)
        objs = self._spo.setdefault(s, {}).setdefault(p, set())
        if o not in objs:
            objs.add(o)
            self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
            self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
            self._size += 1
            self._epoch += 1
        return Triple(s, p, o)

    def add_all(self, triples: Iterable[tuple[Any, Any, Any]]) -> None:
        """Insert many (s, p, o) tuples."""
        for s, p, o in triples:
            self.add(s, p, o)

    def remove(self, subject: Any, predicate: Any, obj: Any) -> bool:
        """Remove one triple; True if it was present."""
        s = _as_subject(subject)
        p = _as_predicate(predicate)
        o = _as_term(obj)
        try:
            self._spo[s][p].remove(o)
        except KeyError:
            return False
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._size -= 1
        self._epoch += 1
        return True

    def remove_matching(
        self,
        subject: Optional[Any] = None,
        predicate: Optional[Any] = None,
        obj: Optional[Any] = None,
    ) -> int:
        """Remove all triples matching the wildcard pattern; returns count."""
        victims = list(self.match(subject, predicate, obj))
        for t in victims:
            self.remove(t.subject, t.predicate, t.object)
        return len(victims)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, spo: tuple[Any, Any, Any]) -> bool:
        s, p, o = spo
        return any(True for _ in self.match(s, p, o))

    def __iter__(self) -> Iterator[Triple]:
        return self.match(None, None, None)

    def match(
        self,
        subject: Optional[Any] = None,
        predicate: Optional[Any] = None,
        obj: Optional[Any] = None,
    ) -> Iterator[Triple]:
        """Stream triples matching the pattern (None = wildcard)."""
        s = _as_subject(subject) if subject is not None else None
        p = _as_predicate(predicate) if predicate is not None else None
        o = _as_term(obj) if obj is not None else None

        if s is not None:
            by_pred = self._spo.get(s)
            if not by_pred:
                return
            if p is not None:
                objs = by_pred.get(p)
                if not objs:
                    return
                if o is not None:
                    if o in objs:
                        yield Triple(s, p, o)
                else:
                    for obj_ in list(objs):
                        yield Triple(s, p, obj_)
            else:
                for p_, objs in list(by_pred.items()):
                    if o is not None:
                        if o in objs:
                            yield Triple(s, p_, o)
                    else:
                        for obj_ in list(objs):
                            yield Triple(s, p_, obj_)
        elif p is not None:
            by_obj = self._pos.get(p)
            if not by_obj:
                return
            if o is not None:
                for s_ in list(by_obj.get(o, ())):
                    yield Triple(s_, p, o)
            else:
                for o_, subjects in list(by_obj.items()):
                    for s_ in list(subjects):
                        yield Triple(s_, p, o_)
        elif o is not None:
            by_subj = self._osp.get(o)
            if not by_subj:
                return
            for s_, preds in list(by_subj.items()):
                for p_ in list(preds):
                    yield Triple(s_, p_, o)
        else:
            for s_, by_pred in list(self._spo.items()):
                for p_, objs in list(by_pred.items()):
                    for o_ in list(objs):
                        yield Triple(s_, p_, o_)

    def objects(self, subject: Any, predicate: Any) -> list[Term]:
        """All objects of (subject, predicate, ?)."""
        return [t.object for t in self.match(subject, predicate, None)]

    def subjects(self, predicate: Any, obj: Any) -> list[Term]:
        """All subjects of (?, predicate, object)."""
        return [t.subject for t in self.match(None, predicate, obj)]

    def value(self, subject: Any, predicate: Any, default: Any = None) -> Any:
        """The single object of (subject, predicate, ?), or *default*.

        Raises if more than one object exists -- callers that expect a
        functional property should hear about violations.
        """
        objs = self.objects(subject, predicate)
        if not objs:
            return default
        if len(objs) > 1:
            raise ValueError(
                f"{subject} has {len(objs)} values for {predicate}; expected one"
            )
        return objs[0]

    def copy(self) -> "TripleStore":
        """An independent deep copy (triples and prefixes)."""
        out = TripleStore(self.name)
        out._prefixes = dict(self._prefixes)
        for t in self:
            out.add(*t)
        return out


def _as_subject(value: Any) -> Term:
    if isinstance(value, (IRI, BlankNode)):
        return value
    if isinstance(value, str):
        return IRI(value)
    raise TypeError(f"invalid subject term: {value!r}")


def _as_predicate(value: Any) -> IRI:
    if isinstance(value, IRI):
        return value
    if isinstance(value, str):
        return IRI(value)
    raise TypeError(f"invalid predicate term: {value!r}")
