"""The SCAN semantic model: domain ontology, cloud ontology and linker.

Paper Section II-C defines the SCAN semantic model as::

    Active Ontology ::=
        'Ontology(' [ domain ] ')'
      | 'Ontology(' [ cloud ] ')'
      | 'SCAN(' { linker } ')'

The **domain ontology** describes biological data types/formats, the
bio-applications that consume them and genome-analysis workflows; it extends
the Gene Ontology slice.  The **cloud ontology** describes middleware
services, computing/storage resources, networks and usage policies.  The
**linker** relates domain entities to cloud entities (e.g. which resource a
workflow requires).

All three share one :class:`~repro.ontology.triples.TripleStore`, matching
how SCAN queries span both ontologies (the paper's SPARQL example retrieves
GATK instances *along with* CPU and RAM resource attributes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.ontology.gene_ontology import load_gene_ontology
from repro.ontology.model import Individual, Ontology
from repro.ontology.triples import Namespace, TripleStore

__all__ = [
    "SCAN",
    "ScanOntology",
    "build_scan_ontology",
    "add_application_instance",
    "add_workflow_instance",
]

#: The paper's ontology namespace.
SCAN = Namespace("http://www.semanticweb.org/wxing/ontologies/scan-ontology#")

#: Data formats handled by the SCAN data flow (Figures 1 and 2).
DATA_FORMATS = ("FASTQ", "FASTA", "BAM", "SAM", "VCF", "MGF", "TIFF", "CSV")

#: The four data-process families of Section III.
ANALYSIS_TYPES = (
    "GenomeAnalysis",
    "ProteomeAnalysis",
    "ImagingAnalysis",
    "IntegrativeAnalysis",
)

#: The >10 genome-analysis workflows the paper says the ontology defines,
#: "including workflows like data variation detection analysis and miRNA
#: fusion detection workflows".
DEFAULT_WORKFLOWS = (
    ("VariationDetection", "GenomeAnalysis"),
    ("MiRNAFusionDetection", "GenomeAnalysis"),
    ("SomaticMutationCalling", "GenomeAnalysis"),
    ("GermlineVariantCalling", "GenomeAnalysis"),
    ("CopyNumberAnalysis", "GenomeAnalysis"),
    ("StructuralVariantDetection", "GenomeAnalysis"),
    ("RNASeqExpression", "GenomeAnalysis"),
    ("ExomeAnalysis", "GenomeAnalysis"),
    ("WholeGenomeAnalysis", "GenomeAnalysis"),
    ("MethylationAnalysis", "GenomeAnalysis"),
    ("PeptideIdentification", "ProteomeAnalysis"),
    ("ProteinQuantification", "ProteomeAnalysis"),
    ("CellPhenotypeProfiling", "ImagingAnalysis"),
    ("NetworkIntegration", "IntegrativeAnalysis"),
)


@dataclass
class ScanOntology:
    """The assembled SCAN semantic model (domain + cloud + linker)."""

    store: TripleStore
    domain: Ontology
    cloud: Ontology
    linker: Ontology
    gene_ontology: Ontology

    @property
    def ns(self) -> Namespace:
        return SCAN

    def application_instances(self, app_name: Optional[str] = None) -> list[Individual]:
        """All Application individuals, optionally filtered by appName."""
        cls = self.domain.get_class("Application")
        assert cls is not None
        individuals = cls.individuals()
        if app_name is None:
            return individuals
        return [i for i in individuals if i.get("appName") == app_name]

    def workflow_instances(self) -> list[Individual]:
        """All GenomeAnalysis workflow individuals."""
        cls = self.domain.get_class("GenomeAnalysis")
        assert cls is not None
        return cls.individuals()


def build_scan_ontology(include_gene_ontology: bool = True) -> ScanOntology:
    """Create the full SCAN semantic model with its default vocabulary.

    Returns a :class:`ScanOntology` whose shared store carries:

    - the GO slice (unless disabled),
    - domain classes: BiologicalData (+ per-format subclasses,
      AlignedGenomicData), Application, Workflow (+ the four analysis
      types), and the >10 default workflow individuals,
    - cloud classes: CloudService, ComputingResource (CPU, RAM),
      StorageResource, Network, UsagePolicy, ResourceTier and the
      private/public tier individuals,
    - linker properties: requiredBy, requiresResource, consumesFormat,
      producesFormat, runsOn.
    """
    store = TripleStore("scan")
    store.bind_prefix("scan-ontology", SCAN.base)
    store.bind_prefix("scan", SCAN.base)

    gene_onto = (
        load_gene_ontology(store)
        if include_gene_ontology
        else Ontology(SCAN, store=store, name="no-go")
    )

    domain = Ontology(SCAN, store=store, name="scan-domain")
    cloud = Ontology(SCAN, store=store, name="scan-cloud")
    linker = Ontology(SCAN, store=store, name="scan-linker")

    # -- domain ontology ----------------------------------------------------
    bio_data = domain.declare_class("BiologicalData")
    aligned = domain.declare_class("AlignedGenomicData", parent=bio_data)
    for fmt in DATA_FORMATS:
        cls = domain.declare_class(f"{fmt}Data", parent=bio_data)
        if fmt in ("BAM", "SAM"):
            cls.subclass_of(aligned)

    application = domain.declare_class("Application")
    workflow = domain.declare_class("Workflow")
    analysis_classes = {}
    for analysis in ANALYSIS_TYPES:
        analysis_classes[analysis] = domain.declare_class(analysis, parent=workflow)

    # Datatype properties used by the paper's listings.
    for name in ("inputFileSize", "steps", "RAM", "eTime", "CPU"):
        domain.declare_datatype_property(name, domain=application)
    domain.declare_datatype_property("performance", domain=application)
    domain.declare_datatype_property("appName", domain=application)
    domain.declare_datatype_property("threads", domain=application)
    domain.declare_datatype_property("stage", domain=application)
    domain.declare_datatype_property("workflowName", domain=workflow)

    # -- cloud ontology -------------------------------------------------------
    cloud_service = cloud.declare_class("CloudService")
    computing = cloud.declare_class("ComputingResource", parent=cloud_service)
    cloud.declare_class("CPUResource", parent=computing)
    cloud.declare_class("RAMResource", parent=computing)
    cloud.declare_class("StorageResource", parent=cloud_service)
    cloud.declare_class("Network", parent=cloud_service)
    cloud.declare_class("UsagePolicy")
    tier = cloud.declare_class("ResourceTier")
    cloud.declare_datatype_property("corePrice", domain=tier)
    cloud.declare_datatype_property("coreCount", domain=tier)
    cloud.declare_datatype_property("tierKind", domain=tier)

    private = cloud.individual("PrivateTier", tier)
    private.set("tierKind", "private").set("corePrice", 5.0).set("coreCount", 624)
    public = cloud.individual("PublicTier", tier)
    public.set("tierKind", "public").set("corePrice", 50.0).set("coreCount", 1_000_000)

    # -- linker ----------------------------------------------------------------
    linker.declare_object_property("requiredBy", domain=computing, range_=workflow)
    linker.declare_object_property("requiresResource", domain=workflow, range_=computing)
    linker.declare_object_property("consumesFormat", domain=application, range_=bio_data)
    linker.declare_object_property("producesFormat", domain=application, range_=bio_data)
    linker.declare_object_property("runsOn", domain=application, range_=tier)

    # Default workflow individuals (the paper's "over 10 different genome
    # analysis workflows ... as instances of the class GenomeAnalysis").
    for wf_name, analysis in DEFAULT_WORKFLOWS:
        ind = domain.individual(wf_name, analysis_classes[analysis])
        ind.set("workflowName", wf_name)

    # The AlignedGenomicData -> GATK linkage from Section III-A.1.ii: the
    # class has a CPU property "that is requiredBy GATK workflows".
    store.add(SCAN["AlignedGenomicData"], SCAN["requiredBy"], SCAN["VariationDetection"])

    return ScanOntology(
        store=store,
        domain=domain,
        cloud=cloud,
        linker=linker,
        gene_ontology=gene_onto,
    )


def add_application_instance(
    onto: ScanOntology,
    name: str,
    *,
    app_name: str,
    input_file_size: float,
    e_time: float,
    cpu: int,
    ram: float,
    steps: int = 1,
    threads: Optional[int] = None,
    stage: Optional[int] = None,
    performance: Optional[str] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> Individual:
    """Add one Application individual (a GATK1-style profiling record).

    Mirrors the paper's OWL listing: ``inputFileSize``, ``steps``, ``RAM``,
    ``eTime`` and ``CPU`` datatype properties on an ``owl:NamedIndividual``
    typed ``scan:Application``.
    """
    application = onto.domain.get_class("Application")
    assert application is not None
    ind = onto.domain.individual(name, application)
    ind.set("appName", app_name)
    ind.set("inputFileSize", float(input_file_size))
    ind.set("eTime", float(e_time))
    ind.set("CPU", int(cpu))
    ind.set("RAM", float(ram))
    ind.set("steps", int(steps))
    if threads is not None:
        ind.set("threads", int(threads))
    if stage is not None:
        ind.set("stage", int(stage))
    if performance is not None:
        ind.set("performance", performance)
    if extra:
        for key, value in extra.items():
            ind.set(key, value)  # type: ignore[arg-type]
    return ind


def add_workflow_instance(
    onto: ScanOntology, name: str, analysis_type: str = "GenomeAnalysis"
) -> Individual:
    """Register an additional workflow individual under *analysis_type*."""
    cls = onto.domain.get_class(analysis_type)
    if cls is None:
        raise ValueError(f"unknown analysis type {analysis_type!r}")
    ind = onto.domain.individual(name, cls)
    ind.set("workflowName", name)
    return ind
