"""Semantic-web substrate: triple store, OWL-lite model, SPARQL subset.

The SCAN knowledge base is "built by using semantic web technology, i.e.,
ontology and the instances" (paper Section III-A.1): an OWL/RDF ontology
describing biological data, bio-applications, cloud resources and the
relations among them, queried with SPARQL.  The paper's prototype used Jena
and Protege; this package is a from-scratch equivalent:

- :mod:`repro.ontology.triples` -- terms (IRIs, literals, blank nodes) and an
  indexed in-memory triple store.
- :mod:`repro.ontology.model` -- OWL-lite classes, properties, individuals
  and subclass reasoning on top of the store.
- :mod:`repro.ontology.sparql` -- tokenizer, parser and executor for the
  SPARQL subset used by the Data Broker (SELECT / WHERE / OPTIONAL /
  FILTER / ORDER BY / LIMIT / DISTINCT).
- :mod:`repro.ontology.serializer` -- Turtle-style and RDF/XML-style
  serialization (matching the paper's OWL listings).
- :mod:`repro.ontology.gene_ontology` -- the Gene Ontology subset the SCAN
  ontology extends.
- :mod:`repro.ontology.scan_ontology` -- the SCAN domain ontology, cloud
  ontology and linker of Section II-C.
"""

from repro.ontology.triples import (
    IRI,
    Literal,
    BlankNode,
    Triple,
    TripleStore,
    Namespace,
    RDF,
    RDFS,
    OWL,
    XSD,
)
from repro.ontology.model import Ontology, OntClass, OntProperty, Individual
from repro.ontology.sparql import (
    SparqlQuery,
    parse_query,
    execute_query,
    SparqlError,
    cache_stats,
    reset_cache_stats,
    clear_caches,
)
from repro.ontology.serializer import to_turtle, to_rdfxml
from repro.ontology.scan_ontology import (
    SCAN,
    build_scan_ontology,
    add_application_instance,
)

__all__ = [
    "IRI",
    "Literal",
    "BlankNode",
    "Triple",
    "TripleStore",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "Ontology",
    "OntClass",
    "OntProperty",
    "Individual",
    "SparqlQuery",
    "parse_query",
    "execute_query",
    "SparqlError",
    "cache_stats",
    "reset_cache_stats",
    "clear_caches",
    "to_turtle",
    "to_rdfxml",
    "SCAN",
    "build_scan_ontology",
    "add_application_instance",
]
