"""OWL-lite modelling layer over the triple store.

Provides the vocabulary SCAN needs: named classes with a subclass hierarchy,
object/datatype properties with domain and range, named individuals with
property assertions, and simple reasoning (subclass transitivity and type
inheritance), in the spirit of the Jena ontology API the paper cites.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.ontology.triples import (
    IRI,
    Literal,
    Namespace,
    OWL,
    RDF,
    RDFS,
    Term,
    TripleStore,
)

__all__ = ["Ontology", "OntClass", "OntProperty", "Individual"]


class OntClass:
    """A named OWL class bound to an ontology."""

    def __init__(self, ontology: "Ontology", iri: IRI) -> None:
        self.ontology = ontology
        self.iri = iri

    @property
    def local_name(self) -> str:
        return self.iri.local_name

    def subclass_of(self, parent: "OntClass | IRI") -> "OntClass":
        """Assert this class as a subclass of *parent*; returns self."""
        parent_iri = parent.iri if isinstance(parent, OntClass) else parent
        self.ontology.store.add(self.iri, RDFS.subClassOf, parent_iri)
        return self

    def superclasses(self, transitive: bool = True) -> list[IRI]:
        """Superclass IRIs via rdfs:subClassOf."""
        return self.ontology.superclasses(self.iri, transitive=transitive)

    def subclasses(self, transitive: bool = True) -> list[IRI]:
        """Subclass IRIs via rdfs:subClassOf (inverse)."""
        return self.ontology.subclasses(self.iri, transitive=transitive)

    def individuals(self, direct: bool = False) -> list["Individual"]:
        """Individuals of this class (including subclasses unless direct)."""
        return self.ontology.individuals_of(self.iri, direct=direct)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OntClass):
            return self.iri == other.iri and self.ontology is other.ontology
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.iri)

    def __repr__(self) -> str:
        return f"OntClass({self.iri.local_name})"


class OntProperty:
    """A named OWL property (object or datatype)."""

    def __init__(
        self,
        ontology: "Ontology",
        iri: IRI,
        kind: str,
        domain: Optional[IRI] = None,
        range_: Optional[IRI] = None,
    ) -> None:
        if kind not in ("object", "datatype"):
            raise ValueError(f"property kind must be object|datatype, got {kind}")
        self.ontology = ontology
        self.iri = iri
        self.kind = kind
        self.domain = domain
        self.range = range_

    @property
    def local_name(self) -> str:
        return self.iri.local_name

    def __repr__(self) -> str:
        return f"OntProperty({self.iri.local_name}, {self.kind})"


class Individual:
    """A named individual with convenient property access."""

    def __init__(self, ontology: "Ontology", iri: IRI) -> None:
        self.ontology = ontology
        self.iri = iri

    @property
    def local_name(self) -> str:
        return self.iri.local_name

    def set(self, prop: "OntProperty | IRI | str", value: Any) -> "Individual":
        """Assert (self, prop, value); returns self for chaining."""
        prop_iri = _prop_iri(self.ontology, prop)
        self.ontology.store.add(self.iri, prop_iri, value)
        return self

    def get(self, prop: "OntProperty | IRI | str", default: Any = None) -> Any:
        """The single Python-native value of the property, or *default*."""
        prop_iri = _prop_iri(self.ontology, prop)
        term = self.ontology.store.value(self.iri, prop_iri, default=None)
        if term is None:
            return default
        return _to_python(term)

    def get_all(self, prop: "OntProperty | IRI | str") -> list[Any]:
        """All Python-native values of the property."""
        prop_iri = _prop_iri(self.ontology, prop)
        return [_to_python(t) for t in self.ontology.store.objects(self.iri, prop_iri)]

    def types(self, direct: bool = False) -> list[IRI]:
        """The individual's classes (with superclass closure unless direct)."""
        direct_types = [
            t for t in self.ontology.store.objects(self.iri, RDF.type)
            if isinstance(t, IRI) and t != OWL.NamedIndividual
        ]
        if direct:
            return direct_types
        closure: list[IRI] = []
        seen: set[IRI] = set()
        for cls in direct_types:
            for c in [cls, *self.ontology.superclasses(cls)]:
                if c not in seen:
                    seen.add(c)
                    closure.append(c)
        return closure

    def is_a(self, cls: "OntClass | IRI") -> bool:
        """Whether the individual is typed as *cls* (with closure)."""
        cls_iri = cls.iri if isinstance(cls, OntClass) else cls
        return cls_iri in self.types()

    def properties(self) -> dict[IRI, list[Any]]:
        """All asserted (non-type) property values, Python-native."""
        out: dict[IRI, list[Any]] = {}
        for t in self.ontology.store.match(self.iri, None, None):
            if t.predicate == RDF.type:
                continue
            out.setdefault(t.predicate, []).append(_to_python(t.object))
        return out

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Individual):
            return self.iri == other.iri and self.ontology is other.ontology
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.iri)

    def __repr__(self) -> str:
        return f"Individual({self.iri.local_name})"


class Ontology:
    """A named ontology: vocabulary declarations plus an instance store.

    The SCAN semantic model composes a domain ontology, a cloud ontology and
    a linker (paper Section II-C); each is an ``Ontology`` sharing one
    underlying :class:`TripleStore` so cross-ontology queries work.
    """

    def __init__(
        self,
        namespace: Namespace,
        store: Optional[TripleStore] = None,
        name: str = "",
    ) -> None:
        self.ns = namespace
        self.store = store if store is not None else TripleStore(name)
        self.name = name or namespace.base
        self._classes: dict[IRI, OntClass] = {}
        self._properties: dict[IRI, OntProperty] = {}

    # -- declarations -------------------------------------------------------
    def declare_class(
        self, name: str, parent: "OntClass | IRI | None" = None
    ) -> OntClass:
        """Declare (or fetch) a named class, optionally under *parent*."""
        iri = self.ns[name]
        cls = self._classes.get(iri)
        if cls is None:
            cls = OntClass(self, iri)
            self._classes[iri] = cls
            self.store.add(iri, RDF.type, OWL.Class)
        if parent is not None:
            cls.subclass_of(parent)
        return cls

    def declare_object_property(
        self,
        name: str,
        domain: "OntClass | IRI | None" = None,
        range_: "OntClass | IRI | None" = None,
    ) -> OntProperty:
        """Declare (or fetch) an object property."""
        return self._declare_property(name, "object", domain, range_)

    def declare_datatype_property(
        self,
        name: str,
        domain: "OntClass | IRI | None" = None,
        range_: Optional[IRI] = None,
    ) -> OntProperty:
        """Declare (or fetch) a datatype property."""
        return self._declare_property(name, "datatype", domain, range_)

    def _declare_property(self, name, kind, domain, range_) -> OntProperty:
        iri = self.ns[name]
        prop = self._properties.get(iri)
        if prop is None:
            domain_iri = domain.iri if isinstance(domain, OntClass) else domain
            range_iri = range_.iri if isinstance(range_, OntClass) else range_
            prop = OntProperty(self, iri, kind, domain_iri, range_iri)
            self._properties[iri] = prop
            type_iri = (
                OWL.ObjectProperty if kind == "object" else OWL.DatatypeProperty
            )
            self.store.add(iri, RDF.type, type_iri)
            if domain_iri is not None:
                self.store.add(iri, RDFS.domain, domain_iri)
            if range_iri is not None:
                self.store.add(iri, RDFS.range, range_iri)
        return prop

    def individual(self, name: str, *classes: "OntClass | IRI") -> Individual:
        """Create (or fetch) a named individual, asserting its classes."""
        iri = self.ns[name]
        ind = Individual(self, iri)
        self.store.add(iri, RDF.type, OWL.NamedIndividual)
        for cls in classes:
            cls_iri = cls.iri if isinstance(cls, OntClass) else cls
            self.store.add(iri, RDF.type, cls_iri)
        return ind

    # -- lookup ---------------------------------------------------------------
    def get_class(self, name_or_iri: "str | IRI") -> Optional[OntClass]:
        """The declared class for a name/IRI, or None."""
        iri = self._resolve(name_or_iri)
        return self._classes.get(iri)

    def get_property(self, name_or_iri: "str | IRI") -> Optional[OntProperty]:
        """The declared property for a name/IRI, or None."""
        iri = self._resolve(name_or_iri)
        return self._properties.get(iri)

    def get_individual(self, name_or_iri: "str | IRI") -> Optional[Individual]:
        """The named individual for a name/IRI, or None."""
        iri = self._resolve(name_or_iri)
        if (iri, RDF.type, OWL.NamedIndividual) in self.store:
            return Individual(self, iri)
        return None

    def classes(self) -> Iterator[OntClass]:
        """All declared classes."""
        return iter(self._classes.values())

    def properties(self) -> Iterator[OntProperty]:
        """All declared properties."""
        return iter(self._properties.values())

    def _resolve(self, name_or_iri: "str | IRI") -> IRI:
        if isinstance(name_or_iri, IRI):
            return name_or_iri
        if "://" in name_or_iri:
            return IRI(name_or_iri)
        return self.ns[name_or_iri]

    # -- reasoning --------------------------------------------------------------
    def superclasses(self, cls: IRI, transitive: bool = True) -> list[IRI]:
        """Superclasses of *cls* via rdfs:subClassOf (transitively)."""
        out: list[IRI] = []
        seen: set[IRI] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for t in self.store.match(current, RDFS.subClassOf, None):
                parent = t.object
                if isinstance(parent, IRI) and parent not in seen:
                    seen.add(parent)
                    out.append(parent)
                    if transitive:
                        frontier.append(parent)
        return out

    def subclasses(self, cls: IRI, transitive: bool = True) -> list[IRI]:
        """Subclasses of *cls* via rdfs:subClassOf (transitively)."""
        out: list[IRI] = []
        seen: set[IRI] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for t in self.store.match(None, RDFS.subClassOf, current):
                child = t.subject
                if isinstance(child, IRI) and child not in seen:
                    seen.add(child)
                    out.append(child)
                    if transitive:
                        frontier.append(child)
        return out

    def individuals_of(self, cls: IRI, direct: bool = False) -> list[Individual]:
        """All individuals typed as *cls* (or any subclass unless direct)."""
        classes = [cls] if direct else [cls, *self.subclasses(cls)]
        seen: set[IRI] = set()
        out: list[Individual] = []
        for c in classes:
            for subj in self.store.subjects(RDF.type, c):
                if isinstance(subj, IRI) and subj not in seen:
                    seen.add(subj)
                    out.append(Individual(self, subj))
        return out

    def __repr__(self) -> str:
        return f"<Ontology {self.name} classes={len(self._classes)} triples={len(self.store)}>"


def _prop_iri(ontology: Ontology, prop: "OntProperty | IRI | str") -> IRI:
    if isinstance(prop, OntProperty):
        return prop.iri
    if isinstance(prop, IRI):
        return prop
    return ontology._resolve(prop)


def _to_python(term: Term) -> Any:
    if isinstance(term, Literal):
        return term.value
    return term
