"""Serialization of triple stores: Turtle-style and RDF/XML-style.

The RDF/XML writer mirrors the paper's OWL listings (Section III-A.1.i),
emitting ``owl:NamedIndividual`` blocks with datatype-property children like
``<scan-ontology:inputFileSize>10</scan-ontology:inputFileSize>``.

:func:`parse_turtle` reads the Turtle subset :func:`to_turtle` emits, so a
knowledge base can round-trip through disk -- the paper's KB persists and
grows across platform runs.
"""

from __future__ import annotations

import re
from typing import Iterable
from xml.sax.saxutils import escape

from repro.ontology.triples import (
    BlankNode,
    IRI,
    Literal,
    OWL,
    RDF,
    Term,
    TripleStore,
)

__all__ = ["to_turtle", "to_rdfxml", "parse_turtle", "TurtleParseError"]


def to_turtle(store: TripleStore) -> str:
    """Serialize *store* in a Turtle-like syntax, grouped by subject."""
    lines: list[str] = []
    for prefix, base in sorted(store.prefixes.items()):
        lines.append(f"@prefix {prefix}: <{base}> .")
    if lines:
        lines.append("")

    by_subject: dict[Term, list] = {}
    for triple in store:
        by_subject.setdefault(triple.subject, []).append(triple)

    for subject in sorted(by_subject, key=_term_sort_key):
        triples = sorted(
            by_subject[subject],
            key=lambda t: (str(t.predicate), _term_sort_key(t.object)),
        )
        subj_text = _turtle_term(store, subject)
        lines.append(subj_text)
        for i, triple in enumerate(triples):
            sep = " ." if i == len(triples) - 1 else " ;"
            pred = _turtle_term(store, triple.predicate)
            obj = _turtle_term(store, triple.object)
            lines.append(f"    {pred} {obj}{sep}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _turtle_term(store: TripleStore, term: Term) -> str:
    if isinstance(term, IRI):
        if term == RDF.type:
            return "a"
        compact = store.shrink(term)
        if compact != str(term):
            return compact
        return f"<{term}>"
    if isinstance(term, Literal):
        value = term.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return repr(value)
        escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(term, BlankNode):
        return f"_:{term.label}"
    raise TypeError(f"unserializable term {term!r}")


def _term_sort_key(term: Term) -> str:
    if isinstance(term, Literal):
        return f"~lit~{term.value}"
    if isinstance(term, BlankNode):
        return f"~bn~{term.label}"
    return str(term)


def to_rdfxml(store: TripleStore, ontology_prefix: str = "scan-ontology") -> str:
    """Serialize named individuals as RDF/XML, paper-listing style.

    Only ``owl:NamedIndividual`` subjects are emitted (that is what the
    paper's listings show); class/property declarations are skipped.
    """
    base = store.prefixes.get(ontology_prefix)
    lines: list[str] = ['<?xml version="1.0"?>']
    ns_attrs = [
        f'    xmlns:rdf="{RDF.base}"',
        f'    xmlns:owl="{OWL.base}"',
    ]
    if base is not None:
        ns_attrs.append(f'    xmlns:{ontology_prefix}="{base}"')
    lines.append("<rdf:RDF")
    lines.extend(ns_attrs)
    lines.append(">")

    individuals = sorted(
        {
            t.subject
            for t in store.match(None, RDF.type, OWL.NamedIndividual)
            if isinstance(t.subject, IRI)
        },
        key=str,
    )
    for subject in individuals:
        lines.append(f"  <!-- {subject} -->")
        lines.append(f'  <owl:NamedIndividual rdf:about="{escape(str(subject))}">')
        triples = sorted(
            store.match(subject, None, None),
            key=lambda t: (str(t.predicate), _term_sort_key(t.object)),
        )
        for triple in triples:
            pred = triple.predicate
            if pred == RDF.type:
                if triple.object == OWL.NamedIndividual:
                    continue
                lines.append(
                    f'    <rdf:type rdf:resource="{escape(str(triple.object))}"/>'
                )
                continue
            tag = _qname(store, pred, ontology_prefix)
            obj = triple.object
            if isinstance(obj, Literal):
                lines.append(f"    <{tag}>{escape(str(obj.value))}</{tag}>")
            else:
                lines.append(f'    <{tag} rdf:resource="{escape(str(obj))}"/>')
        lines.append("  </owl:NamedIndividual>")
    lines.append("</rdf:RDF>")
    return "\n".join(lines) + "\n"


def _qname(store: TripleStore, iri: IRI, default_prefix: str) -> str:
    compact = store.shrink(iri)
    if compact != str(iri) and ":" in compact:
        return compact
    return f"{default_prefix}:{iri.local_name}"


class TurtleParseError(ValueError):
    """Malformed Turtle input (for the subset this library emits)."""


_TURTLE_TOKEN = re.compile(
    r"""
    (?P<PREFIX>@prefix)
  | (?P<IRIREF><[^<>\s]*>)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
  | (?P<BNODE>_:[\w-]+)
  | (?P<PNAME>[^\W\d][\w.-]*:[\w.%-]*)
  | (?P<KEYWORD>[A-Za-z][A-Za-z0-9_]*)
  | (?P<PUNCT>[;,.])
  | (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
    """,
    re.VERBOSE,
)


def parse_turtle(text: str, store: TripleStore | None = None) -> TripleStore:
    """Parse Turtle text (the :func:`to_turtle` subset) into a store.

    Supports ``@prefix`` declarations, subject blocks with ``;``-separated
    predicate-object lists, the ``a`` keyword, IRIs, prefixed names, blank
    nodes and numeric/boolean/string literals.
    """
    out = store if store is not None else TripleStore()
    prefixes = dict(out.prefixes)

    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TURTLE_TOKEN.match(text, pos)
        if match is None:
            raise TurtleParseError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup
        assert kind is not None
        if kind not in ("WS", "COMMENT"):
            tokens.append((kind, match.group()))
        pos = match.end()

    idx = 0

    def peek():
        return tokens[idx] if idx < len(tokens) else (None, "")

    def advance():
        nonlocal idx
        token = peek()
        idx += 1
        return token

    def expect_punct(char: str) -> None:
        kind, value = advance()
        if kind != "PUNCT" or value != char:
            raise TurtleParseError(f"expected {char!r}, got {value!r}")

    def parse_term(as_subject: bool = False):
        kind, value = advance()
        if kind == "IRIREF":
            return IRI(value[1:-1])
        if kind == "PNAME":
            prefix, local = value.split(":", 1)
            try:
                return IRI(prefixes[prefix] + local)
            except KeyError:
                raise TurtleParseError(f"unknown prefix {prefix!r}") from None
        if kind == "BNODE":
            return BlankNode(value[2:])
        if as_subject:
            raise TurtleParseError(f"invalid subject {value!r}")
        if kind == "STRING":
            body = value[1:-1]
            return Literal(
                body.replace('\\"', '"').replace("\\\\", "\\")
            )
        if kind == "NUMBER":
            if re.fullmatch(r"[+-]?\d+", value):
                return Literal(int(value))
            return Literal(float(value))
        if kind == "KEYWORD":
            if value == "a":
                return RDF.type
            if value in ("true", "false"):
                return Literal(value == "true")
        raise TurtleParseError(f"unexpected token {value!r}")

    while idx < len(tokens):
        kind, value = peek()
        if kind == "PREFIX":
            advance()
            pk, pv = advance()
            if pk != "PNAME" or not pv.endswith(":"):
                raise TurtleParseError(f"bad prefix name {pv!r}")
            ik, iv = advance()
            if ik != "IRIREF":
                raise TurtleParseError("expected <IRI> in @prefix")
            expect_punct(".")
            prefix = pv[:-1]
            prefixes[prefix] = iv[1:-1]
            out.bind_prefix(prefix, iv[1:-1])
            continue

        subject = parse_term(as_subject=True)
        while True:
            predicate = parse_term()
            if not isinstance(predicate, IRI):
                raise TurtleParseError(f"predicate must be an IRI, got {predicate!r}")
            while True:
                obj = parse_term()
                out.add(subject, predicate, obj)
                k, v = peek()
                if k == "PUNCT" and v == ",":
                    advance()
                    continue
                break
            k, v = advance()
            if k == "PUNCT" and v == ";":
                # Trailing ';' before '.' is legal Turtle.
                k2, v2 = peek()
                if k2 == "PUNCT" and v2 == ".":
                    advance()
                    break
                continue
            if k == "PUNCT" and v == ".":
                break
            raise TurtleParseError(f"expected ';' or '.', got {v!r}")
    return out
