"""A Gene Ontology (GO) subset.

"The ontology is based on the Gene Ontology (GO) ... and extends the GO to
include descriptions about biological data types and formats,
bio-applications, cloud middleware services, computing and storage
resources, networks, and usage policies" (paper Section III-A.1.i).

This module ships a small, hand-curated slice of GO sufficient to anchor
the SCAN domain ontology: the three root aspects plus the terms relevant to
cancer-genome analysis workflows (DNA metabolic process, mutation-adjacent
terms, protein binding, etc.), with ``is_a`` edges as ``rdfs:subClassOf``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ontology.model import Ontology
from repro.ontology.triples import Namespace, TripleStore, RDFS

__all__ = ["GO", "GO_TERMS", "load_gene_ontology"]

GO = Namespace("http://purl.obolibrary.org/obo/GO_")


@dataclass(frozen=True)
class GoTerm:
    """One GO term: numeric accession, label and is_a parents."""

    accession: str
    label: str
    parents: tuple[str, ...] = ()
    aspect: str = "biological_process"


#: The curated GO slice.  Accessions are real GO identifiers.
GO_TERMS: tuple[GoTerm, ...] = (
    # Roots.
    GoTerm("0008150", "biological_process", (), "biological_process"),
    GoTerm("0003674", "molecular_function", (), "molecular_function"),
    GoTerm("0005575", "cellular_component", (), "cellular_component"),
    # Biological-process slice relevant to genome analysis.
    GoTerm("0008152", "metabolic process", ("0008150",)),
    GoTerm("0006139", "nucleobase-containing compound metabolic process", ("0008152",)),
    GoTerm("0006259", "DNA metabolic process", ("0006139",)),
    GoTerm("0006260", "DNA replication", ("0006259",)),
    GoTerm("0006281", "DNA repair", ("0006259",)),
    GoTerm("0006310", "DNA recombination", ("0006259",)),
    GoTerm("0016070", "RNA metabolic process", ("0006139",)),
    GoTerm("0006397", "mRNA processing", ("0016070",)),
    GoTerm("0008380", "RNA splicing", ("0016070",)),
    GoTerm("0010467", "gene expression", ("0008150",)),
    GoTerm("0006412", "translation", ("0010467",)),
    GoTerm("0007049", "cell cycle", ("0008150",)),
    GoTerm("0008283", "cell population proliferation", ("0008150",)),
    GoTerm("0006915", "apoptotic process", ("0008150",)),
    GoTerm("0007165", "signal transduction", ("0008150",)),
    GoTerm("0035556", "intracellular signal transduction", ("0007165",)),
    # Molecular-function slice.
    GoTerm("0005488", "binding", ("0003674",), "molecular_function"),
    GoTerm("0003677", "DNA binding", ("0005488",), "molecular_function"),
    GoTerm("0003723", "RNA binding", ("0005488",), "molecular_function"),
    GoTerm("0005515", "protein binding", ("0005488",), "molecular_function"),
    GoTerm("0003824", "catalytic activity", ("0003674",), "molecular_function"),
    GoTerm("0004672", "protein kinase activity", ("0003824",), "molecular_function"),
    GoTerm("0016887", "ATP hydrolysis activity", ("0003824",), "molecular_function"),
    # Cellular-component slice.
    GoTerm("0005622", "intracellular anatomical structure", ("0005575",), "cellular_component"),
    GoTerm("0005634", "nucleus", ("0005622",), "cellular_component"),
    GoTerm("0005694", "chromosome", ("0005622",), "cellular_component"),
    GoTerm("0005737", "cytoplasm", ("0005622",), "cellular_component"),
)

_LABEL_PRED = RDFS.label


def load_gene_ontology(store: TripleStore | None = None) -> Ontology:
    """Build the GO slice as an :class:`Ontology` over *store*.

    Each term becomes an OWL class named ``GO_<accession>`` with its is_a
    parents as ``rdfs:subClassOf`` and its label as ``rdfs:label``.
    """
    onto = Ontology(GO, store=store, name="gene-ontology")
    onto.store.bind_prefix("go", GO.base)
    classes = {}
    for term in GO_TERMS:
        cls = onto.declare_class(term.accession)
        classes[term.accession] = cls
        onto.store.add(cls.iri, _LABEL_PRED, term.label)
        onto.store.add(cls.iri, GO["aspect"], term.aspect)
    for term in GO_TERMS:
        for parent in term.parents:
            if parent not in classes:
                raise ValueError(
                    f"GO term {term.accession} references unknown parent {parent}"
                )
            classes[term.accession].subclass_of(classes[parent])
    return onto


def term_by_label(onto: Ontology, label: str):
    """Find the GO class with the given rdfs:label, or None."""
    for subject in onto.store.subjects(_LABEL_PRED, label):
        return onto.get_class(subject)  # type: ignore[arg-type]
    return None
