"""A SPARQL-subset query engine: tokenizer, parser and executor.

Supports the fragment the SCAN Data Broker needs (paper Section III-A.1.ii):

.. code-block:: sparql

    PREFIX scan: <http://.../scan-ontology#>
    SELECT DISTINCT ?app ?size
    WHERE {
        ?app rdf:type scan:Application .
        ?app scan:inputFileSize ?size .
        OPTIONAL { ?app scan:performance ?perf . }
        FILTER (?size >= 2 && ?size <= 20)
    }
    ORDER BY ASC(?size) DESC(?app)
    LIMIT 10

Grammar (EBNF-ish)::

    query    := prefix* 'SELECT' 'DISTINCT'? ( '*' | var+ ) 'WHERE'? group
                ('ORDER' 'BY' order+)? ('LIMIT' INT)? ('OFFSET' INT)?
             |  prefix* 'ASK' group
    group    := '{' ( pattern '.'? | 'OPTIONAL' group | 'FILTER' expr
                    | group ('UNION' group)* )* '}'
    pattern  := term term term
    term     := var | '<'IRI'>' | PNAME | literal
    expr     := or-expression over comparisons, BOUND(var), REGEX(var, str)

The executor evaluates basic graph patterns by ordered pattern joins over
the triple store, OPTIONAL as a left join, UNION as a union of alternative
extensions, FILTER on completed bindings; ASK returns a boolean
(:func:`execute_ask`).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence, Union
from weakref import WeakKeyDictionary

from repro.ontology.triples import IRI, Literal, Term, TripleStore

__all__ = [
    "SparqlError",
    "Variable",
    "SparqlQuery",
    "parse_query",
    "execute_query",
    "execute_ask",
    "cache_stats",
    "reset_cache_stats",
    "clear_caches",
]


class SparqlError(Exception):
    """Raised for malformed queries or execution failures."""


@dataclass(frozen=True)
class Variable:
    """A SPARQL variable (``?name``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Variable, IRI, Literal]


@dataclass(frozen=True)
class TriplePattern:
    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm


@dataclass
class GroupPattern:
    """A { ... } group: patterns, optional subgroups, filters, unions.

    Each entry of ``unions`` is a list of alternative subgroups
    (``{ A } UNION { B } UNION { C }``); a binding survives if it extends
    through at least one alternative.
    """

    patterns: list[TriplePattern] = field(default_factory=list)
    optionals: list["GroupPattern"] = field(default_factory=list)
    filters: list["Expr"] = field(default_factory=list)
    unions: list[list["GroupPattern"]] = field(default_factory=list)


@dataclass(frozen=True)
class OrderCondition:
    variable: Variable
    descending: bool = False


@dataclass
class SparqlQuery:
    """A parsed SELECT query."""

    variables: Optional[list[Variable]]  # None means SELECT *
    where: GroupPattern
    distinct: bool = False
    order_by: list[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    prefixes: dict[str, str] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Expressions (FILTER)
# ---------------------------------------------------------------------------


class Expr:
    """Base class for filter expressions."""

    def evaluate(self, binding: dict[str, Term]) -> Any:  # pragma: no cover
        """The expression value under *binding*."""
        raise NotImplementedError


@dataclass
class VarExpr(Expr):
    var: Variable

    def evaluate(self, binding: dict[str, Term]) -> Any:
        """The variable's bound term (raises if unbound)."""
        try:
            return binding[self.var.name]
        except KeyError:
            raise _UnboundVariable(self.var.name) from None


@dataclass
class ConstExpr(Expr):
    value: Any

    def evaluate(self, binding: dict[str, Term]) -> Any:
        """The constant itself."""
        return self.value


@dataclass
class UnaryExpr(Expr):
    op: str
    operand: Expr

    def evaluate(self, binding: dict[str, Term]) -> Any:
        """Apply ! or unary - to the operand."""
        if self.op == "!":
            return not _truth(self.operand.evaluate(binding))
        if self.op == "-":
            return -_numeric(self.operand.evaluate(binding))
        raise SparqlError(f"unknown unary operator {self.op}")


@dataclass
class BinaryExpr(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, binding: dict[str, Term]) -> Any:
        """Apply the boolean/comparison/arithmetic operator."""
        op = self.op
        if op == "&&":
            return _truth(self.left.evaluate(binding)) and _truth(
                self.right.evaluate(binding)
            )
        if op == "||":
            return _truth(self.left.evaluate(binding)) or _truth(
                self.right.evaluate(binding)
            )
        lhs = self.left.evaluate(binding)
        rhs = self.right.evaluate(binding)
        if op in ("=", "!="):
            equal = _value(lhs) == _value(rhs)
            return equal if op == "=" else not equal
        lnum, rnum = _numeric(lhs), _numeric(rhs)
        if op == "<":
            return lnum < rnum
        if op == "<=":
            return lnum <= rnum
        if op == ">":
            return lnum > rnum
        if op == ">=":
            return lnum >= rnum
        if op == "+":
            return lnum + rnum
        if op == "-":
            return lnum - rnum
        if op == "*":
            return lnum * rnum
        if op == "/":
            if rnum == 0:
                raise SparqlError("division by zero in FILTER")
            return lnum / rnum
        raise SparqlError(f"unknown operator {op}")


@dataclass
class BoundExpr(Expr):
    var: Variable

    def evaluate(self, binding: dict[str, Term]) -> Any:
        """True iff the variable is bound."""
        return self.var.name in binding


@dataclass
class RegexExpr(Expr):
    operand: Expr
    pattern: str
    flags: str = ""

    def evaluate(self, binding: dict[str, Term]) -> Any:
        """True iff the regex matches the operand text."""
        value = self.operand.evaluate(binding)
        text = str(_value(value))
        re_flags = re.IGNORECASE if "i" in self.flags else 0
        return re.search(self.pattern, text, re_flags) is not None


class _UnboundVariable(Exception):
    """Internal: an expression referenced an unbound variable."""


def _value(term: Any) -> Any:
    if isinstance(term, Literal):
        return term.value
    return term


def _numeric(term: Any) -> float:
    if isinstance(term, Literal):
        return term.as_number()
    if isinstance(term, bool):
        return float(term)
    if isinstance(term, (int, float)):
        return float(term)
    raise SparqlError(f"non-numeric operand {term!r} in FILTER arithmetic")


def _truth(value: Any) -> bool:
    if isinstance(value, Literal):
        value = value.value
    return bool(value)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>\s]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<NUMBER>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<PNAME>[A-Za-z_][A-Za-z0-9_.-]*:[A-Za-z0-9_.-]*)
  | (?P<KEYWORD>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP>&&|\|\||!=|<=|>=|[{}().,;*=<>!+/-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SparqlError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup
        assert kind is not None
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token], store_prefixes: dict[str, str]) -> None:
        self._tokens = tokens
        self._idx = 0
        self._prefixes = dict(store_prefixes)

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._idx] if self._idx < len(self._tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise SparqlError("unexpected end of query")
        self._idx += 1
        return tok

    def _expect(self, text: str) -> _Token:
        tok = self._next()
        if tok.text.upper() != text.upper():
            raise SparqlError(f"expected {text!r}, got {tok.text!r} at {tok.pos}")
        return tok

    def _at_keyword(self, word: str) -> bool:
        tok = self._peek()
        return (
            tok is not None
            and tok.kind == "KEYWORD"
            and tok.text.upper() == word.upper()
        )

    # -- grammar -----------------------------------------------------------
    def parse_ask(self) -> GroupPattern:
        """Parse an ASK query; returns its group pattern."""
        while self._at_keyword("PREFIX"):
            self._parse_prefix()
        self._expect("ASK")
        group = self._parse_group()
        if self._peek() is not None:
            tok = self._peek()
            assert tok is not None
            raise SparqlError(f"trailing input at {tok.pos}: {tok.text!r}")
        return group

    def parse(self) -> SparqlQuery:
        while self._at_keyword("PREFIX"):
            self._parse_prefix()
        self._expect("SELECT")
        distinct = False
        if self._at_keyword("DISTINCT"):
            self._next()
            distinct = True
        variables = self._parse_projection()
        if self._at_keyword("FROM"):
            # FROM <graph> accepted and ignored: single-graph store, as in
            # the paper's example query.
            self._next()
            self._next()
        if self._at_keyword("WHERE"):
            self._next()
        where = self._parse_group()
        order_by: list[OrderCondition] = []
        limit: Optional[int] = None
        offset = 0
        if self._at_keyword("ORDER"):
            self._next()
            self._expect("BY")
            order_by = self._parse_order_conditions()
        if self._at_keyword("LIMIT"):
            self._next()
            limit = int(self._next().text)
            if limit < 0:
                raise SparqlError("LIMIT must be >= 0")
        if self._at_keyword("OFFSET"):
            self._next()
            offset = int(self._next().text)
            if offset < 0:
                raise SparqlError("OFFSET must be >= 0")
        if self._peek() is not None:
            tok = self._peek()
            assert tok is not None
            raise SparqlError(f"trailing input at {tok.pos}: {tok.text!r}")
        return SparqlQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
            prefixes=self._prefixes,
        )

    def _parse_prefix(self) -> None:
        self._expect("PREFIX")
        tok = self._next()
        if tok.kind == "PNAME" and tok.text.endswith(":"):
            prefix = tok.text[:-1]
        elif tok.kind == "KEYWORD":
            prefix = tok.text
            self._expect(":")
        else:
            raise SparqlError(f"bad PREFIX name at {tok.pos}")
        iri_tok = self._next()
        if iri_tok.kind != "IRIREF":
            raise SparqlError(f"expected <IRI> after PREFIX at {iri_tok.pos}")
        self._prefixes[prefix] = iri_tok.text[1:-1]

    def _parse_projection(self) -> Optional[list[Variable]]:
        tok = self._peek()
        if tok is not None and tok.text == "*":
            self._next()
            return None
        variables: list[Variable] = []
        while True:
            tok = self._peek()
            if tok is None or tok.kind != "VAR":
                break
            self._next()
            variables.append(Variable(tok.text[1:]))
        if not variables:
            raise SparqlError("SELECT requires '*' or at least one variable")
        return variables

    def _parse_group(self) -> GroupPattern:
        self._expect("{")
        group = GroupPattern()
        while True:
            tok = self._peek()
            if tok is None:
                raise SparqlError("unterminated group pattern")
            if tok.text == "}":
                self._next()
                return group
            if self._at_keyword("OPTIONAL"):
                self._next()
                group.optionals.append(self._parse_group())
            elif self._at_keyword("FILTER"):
                self._next()
                group.filters.append(self._parse_bracketed_expr())
            elif tok.text == "{":
                alternatives = [self._parse_group()]
                while self._at_keyword("UNION"):
                    self._next()
                    alternatives.append(self._parse_group())
                group.unions.append(alternatives)
            else:
                group.patterns.append(self._parse_triple_pattern())
                nxt = self._peek()
                if nxt is not None and nxt.text in (".", ";"):
                    self._next()

    def _parse_triple_pattern(self) -> TriplePattern:
        s = self._parse_term()
        p = self._parse_term()
        o = self._parse_term()
        return TriplePattern(s, p, o)

    def _parse_term(self) -> PatternTerm:
        tok = self._next()
        if tok.kind == "VAR":
            return Variable(tok.text[1:])
        if tok.kind == "IRIREF":
            return IRI(tok.text[1:-1])
        if tok.kind == "PNAME":
            return self._expand_pname(tok)
        if tok.kind == "STRING":
            return Literal(_unquote(tok.text))
        if tok.kind == "NUMBER":
            return Literal(_parse_number(tok.text))
        if tok.kind == "KEYWORD" and tok.text == "a":
            # Turtle/SPARQL shorthand for rdf:type.
            return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        if tok.kind == "KEYWORD" and tok.text.lower() in ("true", "false"):
            return Literal(tok.text.lower() == "true")
        raise SparqlError(f"unexpected term {tok.text!r} at {tok.pos}")

    def _expand_pname(self, tok: _Token) -> IRI:
        prefix, local = tok.text.split(":", 1)
        try:
            return IRI(self._prefixes[prefix] + local)
        except KeyError:
            raise SparqlError(
                f"unknown prefix {prefix!r} at {tok.pos}; declare it with PREFIX"
            ) from None

    def _parse_bracketed_expr(self) -> Expr:
        self._expect("(")
        expr = self._parse_or()
        self._expect(")")
        return expr

    # Expression precedence: || < && < comparison < additive < multiplicative
    # < unary.
    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._peek() is not None and self._peek().text == "||":  # type: ignore[union-attr]
            self._next()
            left = BinaryExpr("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._peek() is not None and self._peek().text == "&&":  # type: ignore[union-attr]
            self._next()
            left = BinaryExpr("&&", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        tok = self._peek()
        if tok is not None and tok.text in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            return BinaryExpr(tok.text, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            tok = self._peek()
            if tok is not None and tok.text in ("+", "-"):
                self._next()
                left = BinaryExpr(tok.text, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok is not None and tok.text in ("*", "/"):
                self._next()
                left = BinaryExpr(tok.text, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        tok = self._peek()
        if tok is None:
            raise SparqlError("unexpected end of FILTER expression")
        if tok.text == "!":
            self._next()
            return UnaryExpr("!", self._parse_unary())
        if tok.text == "-":
            self._next()
            return UnaryExpr("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self._next()
        if tok.text == "(":
            expr = self._parse_or()
            self._expect(")")
            return expr
        if tok.kind == "VAR":
            return VarExpr(Variable(tok.text[1:]))
        if tok.kind == "NUMBER":
            return ConstExpr(_parse_number(tok.text))
        if tok.kind == "STRING":
            return ConstExpr(_unquote(tok.text))
        if tok.kind == "KEYWORD":
            word = tok.text.upper()
            if word == "BOUND":
                self._expect("(")
                var_tok = self._next()
                if var_tok.kind != "VAR":
                    raise SparqlError("BOUND() requires a variable")
                self._expect(")")
                return BoundExpr(Variable(var_tok.text[1:]))
            if word == "REGEX":
                self._expect("(")
                operand = self._parse_or()
                self._expect(",")
                pat_tok = self._next()
                if pat_tok.kind != "STRING":
                    raise SparqlError("REGEX() requires a string pattern")
                flags = ""
                if self._peek() is not None and self._peek().text == ",":  # type: ignore[union-attr]
                    self._next()
                    flags_tok = self._next()
                    flags = _unquote(flags_tok.text)
                self._expect(")")
                return RegexExpr(operand, _unquote(pat_tok.text), flags)
            if word in ("TRUE", "FALSE"):
                return ConstExpr(word == "TRUE")
        if tok.kind == "PNAME":
            return ConstExpr(self._expand_pname(tok))
        raise SparqlError(f"unexpected token {tok.text!r} in expression at {tok.pos}")

    def _parse_order_conditions(self) -> list[OrderCondition]:
        conditions: list[OrderCondition] = []
        while True:
            tok = self._peek()
            if tok is None:
                break
            if tok.kind == "VAR":
                self._next()
                conditions.append(OrderCondition(Variable(tok.text[1:])))
            elif tok.kind == "KEYWORD" and tok.text.upper() in ("ASC", "DESC"):
                descending = tok.text.upper() == "DESC"
                self._next()
                self._expect("(")
                var_tok = self._next()
                if var_tok.kind != "VAR":
                    raise SparqlError("ORDER BY ASC/DESC requires a variable")
                self._expect(")")
                conditions.append(
                    OrderCondition(Variable(var_tok.text[1:]), descending)
                )
            else:
                break
        if not conditions:
            raise SparqlError("ORDER BY requires at least one condition")
        return conditions


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")


def _parse_number(text: str) -> Union[int, float]:
    if re.fullmatch(r"[+-]?\d+", text):
        return int(text)
    return float(text)


# ---------------------------------------------------------------------------
# Hot-path caches
# ---------------------------------------------------------------------------
#
# The Data Broker re-issues the same handful of query texts for every
# brokered dataset, so both the parse (query *plan*) and the executed
# result set are memoised:
#
# - the plan cache is a module-level LRU keyed on (query text, the store's
#   prefix map) -- parsing is pure, so a plan can be shared freely;
# - the result cache is per-store (a WeakKeyDictionary, so dropped stores
#   free their cache) keyed on query text and guarded by the store's
#   mutation ``epoch``: any effective add/remove invalidates every cached
#   result for that store.
#
# Cached result rows are copied in and out (dicts of immutable values), so
# callers may mutate what they receive; hit/miss counters feed the sweep
# executor's telemetry export.

#: LRU capacity for parsed query plans (per process).
PLAN_CACHE_SIZE = 256
#: LRU capacity for result sets per store.
RESULT_CACHE_SIZE = 128

_plan_cache: "OrderedDict[tuple, SparqlQuery]" = OrderedDict()
_result_caches: "WeakKeyDictionary[TripleStore, dict]" = WeakKeyDictionary()
_CACHE_STATS = {
    "plan_hits": 0,
    "plan_misses": 0,
    "result_hits": 0,
    "result_misses": 0,
}


def cache_stats() -> dict[str, int]:
    """Process-wide plan/result cache hit and miss counters (a copy)."""
    return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    """Zero the hit/miss counters (cache contents are untouched)."""
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def clear_caches() -> None:
    """Drop every cached plan and result set (counters are untouched)."""
    _plan_cache.clear()
    _result_caches.clear()


def _cached_plan(text: str, prefixes: dict[str, str]) -> SparqlQuery:
    key = (text, tuple(sorted(prefixes.items())))
    plan = _plan_cache.get(key)
    if plan is not None:
        _plan_cache.move_to_end(key)
        _CACHE_STATS["plan_hits"] += 1
        return plan
    _CACHE_STATS["plan_misses"] += 1
    plan = _Parser(_tokenize(text), prefixes).parse()
    _plan_cache[key] = plan
    if len(_plan_cache) > PLAN_CACHE_SIZE:
        _plan_cache.popitem(last=False)
    return plan


def _store_result_cache(store: TripleStore) -> "OrderedDict[str, list]":
    """The store's live result cache, invalidated on epoch change."""
    slot = _result_caches.get(store)
    if slot is None or slot["epoch"] != store.epoch:
        slot = {"epoch": store.epoch, "rows": OrderedDict()}
        _result_caches[store] = slot
    return slot["rows"]


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def parse_query(text: str, store: Optional[TripleStore] = None) -> SparqlQuery:
    """Parse *text* into a :class:`SparqlQuery`.

    If *store* is given, its bound prefixes are available without PREFIX
    declarations (as Jena does for its prefix map).  Parses are served
    from the plan cache; treat the returned query as immutable.
    """
    prefixes = store.prefixes if store is not None else {}
    return _cached_plan(text, prefixes)


def execute_ask(store: TripleStore, text: str) -> bool:
    """Run an ASK query: True iff the pattern has at least one solution."""
    prefixes = store.prefixes
    group = _Parser(_tokenize(text), prefixes).parse_ask()
    return bool(_eval_group(store, group, [{}]))


def execute_query(
    store: TripleStore,
    query: "SparqlQuery | str",
    cache: bool = True,
) -> list[dict[str, Any]]:
    """Run *query* against *store*, returning bindings as plain dicts.

    Result values are Python-native (literals unwrapped); IRIs stay
    :class:`IRI`.  Unbound optional variables are absent from the dict.

    String queries are served through the plan and result caches by
    default (``cache=False`` bypasses both); the result cache is keyed on
    the store's mutation epoch, so any add/remove invalidates it.  Rows
    are copied on the way in and out -- mutating a returned row never
    corrupts the cache.
    """
    if isinstance(query, str):
        rows_cache = _store_result_cache(store) if cache else None
        if rows_cache is not None:
            hit = rows_cache.get(query)
            if hit is not None:
                rows_cache.move_to_end(query)
                _CACHE_STATS["result_hits"] += 1
                return [dict(row) for row in hit]
            _CACHE_STATS["result_misses"] += 1
        text = query
        query = parse_query(text, store) if cache else _Parser(
            _tokenize(text), store.prefixes
        ).parse()
        results = _execute_parsed(store, query)
        if rows_cache is not None:
            rows_cache[text] = [dict(row) for row in results]
            if len(rows_cache) > RESULT_CACHE_SIZE:
                rows_cache.popitem(last=False)
        return results
    return _execute_parsed(store, query)


def _execute_parsed(
    store: TripleStore, query: SparqlQuery
) -> list[dict[str, Any]]:
    bindings = _eval_group(store, query.where, [{}])

    # FILTERs were applied inside groups; now project / order / slice.
    if query.order_by:
        for cond in reversed(query.order_by):
            bindings.sort(
                key=lambda b, c=cond: _sort_key(b.get(c.variable.name)),
                reverse=cond.descending,
            )
    results: list[dict[str, Any]] = []
    for binding in bindings:
        if query.variables is None:
            row = {name: _value(term) for name, term in binding.items()}
        else:
            row = {}
            for var in query.variables:
                if var.name in binding:
                    row[var.name] = _value(binding[var.name])
        results.append(row)
    if query.distinct:
        seen: set[tuple] = set()
        unique: list[dict[str, Any]] = []
        for row in results:
            key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        results = unique
    if query.offset:
        results = results[query.offset :]
    if query.limit is not None:
        results = results[: query.limit]
    return results


def _sort_key(term: Any) -> tuple:
    """Total order over possibly-missing heterogeneous terms."""
    if term is None:
        return (0, 0.0, "")
    if isinstance(term, Literal):
        term = term.value
    if isinstance(term, bool):
        return (1, float(term), "")
    if isinstance(term, (int, float)):
        return (1, float(term), "")
    return (2, 0.0, str(term))


def _eval_group(
    store: TripleStore,
    group: GroupPattern,
    bindings: list[dict[str, Term]],
) -> list[dict[str, Term]]:
    # Required basic graph patterns: sequential join.
    for pattern in group.patterns:
        bindings = _join_pattern(store, pattern, bindings)
        if not bindings:
            break
    # UNION blocks: a binding extends through any one alternative.
    for alternatives in group.unions:
        extended: list[dict[str, Term]] = []
        for binding in bindings:
            for alternative in alternatives:
                extended.extend(
                    _eval_group(store, alternative, [dict(binding)])
                )
        bindings = extended
        if not bindings:
            break
    # OPTIONAL groups: left join each.
    for optional in group.optionals:
        extended: list[dict[str, Term]] = []
        for binding in bindings:
            matches = _eval_group(store, optional, [dict(binding)])
            if matches:
                extended.extend(matches)
            else:
                extended.append(binding)
        bindings = extended
    # FILTERs: keep bindings where every filter is true.  A filter that
    # references an unbound variable evaluates to false (SPARQL "error ->
    # false" semantics for our subset).
    for filt in group.filters:
        kept = []
        for binding in bindings:
            try:
                if _truth(filt.evaluate(binding)):
                    kept.append(binding)
            except _UnboundVariable:
                continue
        bindings = kept
    return bindings


def _join_pattern(
    store: TripleStore,
    pattern: TriplePattern,
    bindings: list[dict[str, Term]],
) -> list[dict[str, Term]]:
    out: list[dict[str, Term]] = []
    for binding in bindings:
        s = _resolve_term(pattern.subject, binding)
        p = _resolve_term(pattern.predicate, binding)
        o = _resolve_term(pattern.object, binding)
        for triple in store.match(
            s if not isinstance(s, Variable) else None,
            p if not isinstance(p, Variable) else None,
            o if not isinstance(o, Variable) else None,
        ):
            new_binding = dict(binding)
            consistent = True
            for var_term, value in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.predicate),
                (pattern.object, triple.object),
            ):
                if isinstance(var_term, Variable):
                    existing = new_binding.get(var_term.name)
                    if existing is None:
                        new_binding[var_term.name] = value
                    elif existing != value:
                        consistent = False
                        break
            if consistent:
                out.append(new_binding)
    return out


def _resolve_term(
    term: PatternTerm, binding: dict[str, Term]
) -> "PatternTerm | Term":
    if isinstance(term, Variable):
        bound = binding.get(term.name)
        return bound if bound is not None else term
    return term
