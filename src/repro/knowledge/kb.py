"""The SCAN knowledge base: semantic store + quantitative profiles.

Observations enter twice, deliberately:

1. As **ontology individuals** (``GATK1``, ``GATK2``, ... typed
   ``scan:Application`` with ``inputFileSize``/``steps``/``RAM``/``eTime``/
   ``CPU`` datatype properties), exactly as the paper's OWL listings show.
   These are what SPARQL queries rank.
2. As **profile observations** feeding the regression fits
   (:mod:`repro.knowledge.profiles`), which is what the scheduler's
   estimator and the shard advisor consume numerically.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional

from repro.apps.base import ApplicationModel, StageModel
from repro.core.errors import KnowledgeBaseError
from repro.knowledge.profiles import ApplicationProfile, ProfileObservation
from repro.ontology.scan_ontology import (
    SCAN,
    ScanOntology,
    add_application_instance,
    build_scan_ontology,
)
from repro.ontology.sparql import execute_query

__all__ = ["SCANKnowledgeBase", "PersistentKnowledgeBase"]


class SCANKnowledgeBase:
    """Ontology-backed store of application knowledge.

    Parameters
    ----------
    ontology:
        An existing :class:`ScanOntology`; a fresh one is built if omitted.
    """

    def __init__(self, ontology: Optional[ScanOntology] = None) -> None:
        self.ontology = ontology if ontology is not None else build_scan_ontology()
        self._profiles: dict[str, ApplicationProfile] = {}
        self._instance_counter: dict[str, itertools.count] = {}

    # -- observation ingestion ---------------------------------------------
    def record_observation(self, obs: ProfileObservation) -> str:
        """Store one profiled/logged run; returns the new individual's name.

        Individuals are named ``<APP><n>`` (GATK1, GATK2, ...) matching the
        paper's knowledge-base expansion listings.
        """
        profile = self.profile(obs.app)
        profile.add(obs)

        counter = self._instance_counter.setdefault(
            obs.app, itertools.count(1)
        )
        name = f"{obs.app.upper()}{next(counter)}"
        add_application_instance(
            self.ontology,
            name,
            app_name=obs.app,
            input_file_size=obs.input_gb,
            e_time=obs.execution_time,
            cpu=obs.cpu,
            ram=obs.ram_gb,
            steps=1,
            threads=obs.threads,
            stage=obs.stage,
        )
        return name

    def bulk_record(self, observations: Iterable[ProfileObservation]) -> list[str]:
        """Record many observations; returns their names."""
        return [self.record_observation(o) for o in observations]

    def profile(self, app: str) -> ApplicationProfile:
        """The (mutable) quantitative profile for *app*."""
        profile = self._profiles.get(app)
        if profile is None:
            profile = ApplicationProfile(app)
            self._profiles[app] = profile
        return profile

    def has_profile(self, app: str) -> bool:
        """Whether any observations exist for *app*."""
        return app in self._profiles and len(self._profiles[app]) > 0

    # -- profiling bootstrap -------------------------------------------------
    def bootstrap_from_model(
        self,
        model: ApplicationModel,
        input_sizes_gb: Iterable[float] = (1, 2, 3, 4, 5, 6, 7, 8, 9),
        thread_counts: Iterable[int] = (1, 2, 4, 8, 16),
        noise_fraction: float = 0.0,
        rng: Any = None,
    ) -> int:
        """Seed the KB by 'profiling' an analytical model offline.

        This reproduces the paper's initial KB creation: runs of 1-9 GB
        inputs across thread counts, with optional multiplicative noise so
        the regression has realistic work to do.  Returns the number of
        observations recorded.
        """
        if noise_fraction < 0:
            raise ValueError("noise_fraction must be >= 0")
        if noise_fraction > 0 and rng is None:
            raise ValueError("noisy profiling requires an rng")
        n = 0
        for stage in model.stages:
            for size in input_sizes_gb:
                for threads in thread_counts:
                    time = stage.threaded_time(threads, float(size))
                    if noise_fraction > 0:
                        time *= 1.0 + noise_fraction * float(rng.normal())
                        time = max(time, 1e-6)
                    self.record_observation(
                        ProfileObservation(
                            app=model.name,
                            stage=stage.index,
                            input_gb=float(size),
                            threads=int(threads),
                            execution_time=time,
                            ram_gb=stage.ram_gb,
                        )
                    )
                    n += 1
        return n

    def fitted_stage_models(self, app: str, ram_gb: float = 4.0) -> list[StageModel]:
        """Stage models recovered from the recorded profile data."""
        profile = self.profile(app)
        if not profile.stage_indices:
            raise KnowledgeBaseError(f"no profile data for application {app!r}")
        return [
            profile.stage(i).to_stage_model(ram_gb=ram_gb)
            for i in profile.stage_indices
        ]

    # -- semantic queries ------------------------------------------------------
    def query(self, sparql: str) -> list[dict[str, Any]]:
        """Run a SPARQL-subset query against the semantic store."""
        return execute_query(self.ontology.store, sparql)

    def ranked_instances(
        self,
        app: str,
        min_size_gb: float = 0.0,
        max_size_gb: float = float("inf"),
        limit: Optional[int] = None,
    ) -> list[dict[str, Any]]:
        """Application instances ranked by execution time then input size.

        This is the paper's Data Broker query: "The selected GATK instances
        are ranked according to the values of their execution time and the
        size of input files."
        """
        limit_clause = f"LIMIT {limit}" if limit is not None else ""
        upper = 1e18 if max_size_gb == float("inf") else max_size_gb
        sparql = f"""
        PREFIX scan: <{SCAN.base}>
        SELECT ?instance ?size ?etime ?cpu ?ram
        WHERE {{
            ?instance rdf:type scan:Application .
            ?instance scan:appName "{app}" .
            ?instance scan:inputFileSize ?size .
            ?instance scan:eTime ?etime .
            OPTIONAL {{ ?instance scan:CPU ?cpu . }}
            OPTIONAL {{ ?instance scan:RAM ?ram . }}
            FILTER (?size >= {min_size_gb} && ?size <= {upper})
        }}
        ORDER BY ASC(?etime) ASC(?size)
        {limit_clause}
        """
        return self.query(sparql)

    def resource_requirements(self, app: str) -> dict[str, float]:
        """Aggregate CPU/RAM requirements seen for *app* (max over runs)."""
        rows = self.ranked_instances(app)
        if not rows:
            raise KnowledgeBaseError(f"no instances recorded for {app!r}")
        return {
            "cpu": max(float(r.get("cpu", 1)) for r in rows),
            "ram_gb": max(float(r.get("ram", 1.0)) for r in rows),
        }

    def instance_count(self, app: Optional[str] = None) -> int:
        """Number of Application individuals (optionally for one app)."""
        return len(self.ontology.application_instances(app))


def _trailing_int(name: str) -> int:
    """The numeric suffix of an individual name like 'GATK12' (0 if none)."""
    digits = ""
    for char in reversed(name):
        if char.isdigit():
            digits = char + digits
        else:
            break
    return int(digits) if digits else 0


class PersistentKnowledgeBase(SCANKnowledgeBase):
    """A knowledge base that round-trips through Turtle on disk.

    The paper's KB is durable -- "the knowledge base will be expanded by
    using information from logs of each task running on the SCAN platform"
    across runs.  ``save()`` writes the semantic store as Turtle;
    ``load()`` rebuilds a KB from it, reconstructing the quantitative
    profiles and the GATK1/GATK2/... naming counters from the stored
    Application individuals.
    """

    def save(self, path) -> int:
        """Write the semantic store to *path* (Turtle); returns triples."""
        from pathlib import Path

        from repro.ontology.serializer import to_turtle

        text = to_turtle(self.ontology.store)
        Path(path).write_text(text, encoding="utf-8")
        return len(self.ontology.store)

    @classmethod
    def load(cls, path) -> "PersistentKnowledgeBase":
        """Rebuild a knowledge base from a Turtle file."""
        from pathlib import Path

        from repro.ontology.serializer import parse_turtle

        kb = cls()
        parse_turtle(Path(path).read_text(encoding="utf-8"), kb.ontology.store)
        kb._rebuild_profiles()
        return kb

    def _rebuild_profiles(self) -> None:
        """Reconstruct profiles/counters from stored Application individuals."""
        max_suffix: dict[str, int] = {}
        for ind in self.ontology.application_instances():
            app = ind.get("appName")
            stage = ind.get("stage")
            threads = ind.get("threads")
            size = ind.get("inputFileSize")
            etime = ind.get("eTime")
            if app is None:
                continue
            max_suffix[app] = max(
                max_suffix.get(app, 0), _trailing_int(ind.local_name)
            )
            if None in (stage, threads, size, etime):
                continue  # hand-authored individual without profile fields
            self.profile(app).add(
                ProfileObservation(
                    app=str(app),
                    stage=int(stage),
                    input_gb=float(size),
                    threads=int(threads),
                    execution_time=float(etime),
                    cpu=int(ind.get("CPU", threads)),
                    ram_gb=float(ind.get("RAM", 4.0)),
                )
            )
        for app, suffix in max_suffix.items():
            self._instance_counter[app] = itertools.count(suffix + 1)
