"""The knowledge plane: one versioned store of per-stage performance facts.

The paper's "smartness" claim is that decisions -- shard sizes, EET/ETT
estimates, hire-vs-wait -- come from profiled facts in the knowledge base
(Sections I, III-A.1), and Section VI's future work is to refine those
facts online.  Before this module the repo was open-loop: the scheduler's
estimator read static :class:`~repro.apps.base.ApplicationModel`
coefficients, the shard advisor and the learning allocator each kept
private side-channels, and log ingestion was an offline afterthought.

:class:`KnowledgePlane` closes that loop.  It is an epoch-stamped store of
:class:`StageFact` records (coefficients + provenance + sample counts +
confidence), persisted through the ontology triple store, and queried by
*all three* consumers through one :class:`EstimateProvider` protocol:

- the scheduler's :class:`~repro.scheduler.estimator.PipelineEstimator`
  (EET/ETT, Eq. 2) -- whose memo is invalidated by plane epoch bumps
  exactly like :class:`~repro.ontology.triples.TripleStore` epochs
  invalidate the SPARQL result cache;
- the broker's :class:`~repro.knowledge.advisor.ShardAdvisor` (shard
  sizing);
- :class:`~repro.scheduler.learning.LearnedAllocation` (cold-start
  priors, via the estimator).

:class:`OnlineRefitter` provides the feedback path: it subscribes to
:class:`~repro.core.bus.StageCompleted` events and periodically re-fits
the linear coefficients from realised durations, installing new facts
(which bumps the epoch).  Two providers ship behind the plugin registry:
``static`` (the default -- bit-identical to the pre-plane behaviour, so
golden sweep fixtures pin it) and ``adaptive`` (serves refit facts).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.analysis.amdahl import amdahl_time
from repro.analysis.regression import fit_linear
from repro.apps.base import ApplicationModel, StageModel
from repro.core.bus import EventBus, StageCompleted
from repro.core.errors import KnowledgeBaseError
from repro.core.plugins import Registry

__all__ = [
    "StageFact",
    "RefitRecord",
    "KnowledgePlane",
    "OnlineRefitter",
    "EstimateProvider",
    "StaticEstimateProvider",
    "AdaptiveEstimateProvider",
    "FactProvider",
    "WorkflowStaticProvider",
    "WorkflowAdaptiveProvider",
    "ESTIMATE_PROVIDERS",
    "make_estimate_provider",
    "make_workflow_provider",
    "fit_stage_fact",
    "diff_snapshots",
    "drifted_model",
]


@dataclass(frozen=True)
class StageFact:
    """One stage's performance model, with its pedigree.

    ``a``/``b`` are the Eq. 2 linear execution-time coefficients and ``c``
    the Amdahl parallel fraction, exactly as in
    :class:`~repro.apps.base.StageModel` -- except ``a``/``b`` are kept
    *unclamped* (raw regression output) so :meth:`predict` reproduces
    :meth:`~repro.knowledge.profiles.StageProfile.predict` float-for-float.
    ``c`` is ``None`` when no multi-threaded evidence exists.
    """

    app: str
    stage: int
    a: float
    b: float
    c: Optional[float]
    ram_gb: float = 4.0
    #: Where the coefficients came from: ``"model"`` (seeded from an
    #: analytical ApplicationModel), ``"profile"`` (offline KB regression)
    #: or ``"refit"`` (online refit from realised durations).
    provenance: str = "model"
    #: Observations behind the fit (0 for analytical seeds).
    samples: int = 0
    #: Fit quality in [0, 1]: r-squared for regressions, 1.0 for seeds.
    confidence: float = 1.0
    #: Plane epoch at which this fact was installed.
    epoch: int = 0

    def predict(self, input_gb: float, threads: int = 1) -> float:
        """Predicted execution time; mirrors ``StageProfile.predict``."""
        base = max(self.a * input_gb + self.b, 1e-6)
        if threads == 1 or self.c is None:
            return base
        return amdahl_time(base, threads, self.c)

    def to_stage_model(self, name: str = "") -> StageModel:
        """Export as a (clamped) :class:`StageModel` for Eq. 1/2 consumers."""
        return StageModel(
            index=self.stage,
            name=name or f"{self.app}-stage{self.stage}",
            a=max(self.a, 0.0),
            b=self.b,
            c=min(max(self.c if self.c is not None else 0.0, 0.0), 1.0),
            ram_gb=self.ram_gb,
        )

    def as_dict(self) -> dict[str, Any]:
        """A JSON-able record (``scan-sim kb`` output rows)."""
        return {
            "app": self.app,
            "stage": self.stage,
            "a": self.a,
            "b": self.b,
            "c": self.c,
            "ram_gb": self.ram_gb,
            "provenance": self.provenance,
            "samples": self.samples,
            "confidence": self.confidence,
            "epoch": self.epoch,
        }


@dataclass(frozen=True)
class RefitRecord:
    """Audit record of one refit: what changed, when, from how much data."""

    time: float
    app: str
    stage: int
    old_a: float
    old_b: float
    new_a: float
    new_b: float
    samples: int
    epoch: int


class KnowledgePlane:
    """Versioned store of stage facts shared by every estimate consumer.

    Every :meth:`install` bumps :attr:`epoch`; consumers that memoise
    derived values (the EET memo, the adaptive provider's model table)
    compare their stored epoch against the plane's and rebuild on
    mismatch -- the same contract as ``TripleStore.epoch`` and the SPARQL
    result cache.
    """

    def __init__(self) -> None:
        self._facts: Dict[Tuple[str, int], StageFact] = {}
        self._epoch = 0
        self.history: List[RefitRecord] = []

    @property
    def epoch(self) -> int:
        """Version counter, bumped by every :meth:`install`."""
        return self._epoch

    def __len__(self) -> int:
        return len(self._facts)

    # -- writing ------------------------------------------------------------
    def install(self, facts: Iterable[StageFact]) -> int:
        """Install *facts* as one atomic snapshot; returns the new epoch.

        Installing an empty iterable is a no-op (the epoch does not move,
        so downstream memos stay warm).
        """
        staged = list(facts)
        if not staged:
            return self._epoch
        self._epoch += 1
        for fact in staged:
            self._facts[(fact.app, fact.stage)] = replace(
                fact, epoch=self._epoch
            )
        return self._epoch

    def seed_from_model(
        self, model: ApplicationModel, provenance: str = "model"
    ) -> int:
        """Seed facts from an analytical application model's coefficients."""
        return self.install(
            StageFact(
                app=model.name,
                stage=stage.index,
                a=stage.a,
                b=stage.b,
                c=stage.c,
                ram_gb=stage.ram_gb,
                provenance=provenance,
                samples=0,
                confidence=1.0,
            )
            for stage in model.stages
        )

    def seed_from_profiles(self, kb: Any, app: str) -> int:
        """Seed facts from a knowledge base's fitted stage profiles.

        Only stages with a usable linear fit produce facts; raw slopes and
        intercepts are kept unclamped so plane predictions match
        ``StageProfile.predict`` exactly.  Stages already carrying an
        online ``refit`` fact are left alone -- on a shared plane the
        refitter's trace-derived coefficients outrank offline profile
        fits, so a broker reseed never rolls them back.
        """
        if not kb.has_profile(app):
            return self._epoch
        profile = kb.profile(app)
        facts = []
        for index in profile.stage_indices:
            current = self._facts.get((app, index))
            if current is not None and current.provenance == "refit":
                continue
            stage = profile.stage(index)
            if not stage.has_linear_fit:
                continue
            fit = stage.linear_fit
            ram = 4.0
            for obs in stage.observations:
                ram = max(ram, obs.ram_gb)
            facts.append(
                StageFact(
                    app=app,
                    stage=index,
                    a=fit.slope,
                    b=fit.intercept,
                    c=stage.parallel_fraction,
                    ram_gb=ram,
                    provenance="profile",
                    samples=len(stage),
                    confidence=max(min(fit.r_squared, 1.0), 0.0),
                )
            )
        return self.install(facts)

    # -- reading ------------------------------------------------------------
    def get(self, app: str, stage: int) -> Optional[StageFact]:
        """The fact for (*app*, *stage*), or None."""
        return self._facts.get((app, stage))

    def facts(self, app: Optional[str] = None) -> list[StageFact]:
        """All facts (optionally one app's), sorted by (app, stage)."""
        rows = [
            fact
            for key, fact in self._facts.items()
            if app is None or key[0] == app
        ]
        return sorted(rows, key=lambda f: (f.app, f.stage))

    def apps(self) -> list[str]:
        """Applications with at least one fact, sorted."""
        return sorted({app for app, _ in self._facts})

    def stage_models(self, app: str) -> list[StageModel]:
        """Clamped stage models for *app*, ordered by stage index."""
        facts = self.facts(app)
        if not facts:
            raise KnowledgeBaseError(f"knowledge plane has no facts for {app!r}")
        return [fact.to_stage_model() for fact in facts]

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able snapshot: epoch + every fact (``scan-sim kb``)."""
        return {
            "epoch": self._epoch,
            "facts": [fact.as_dict() for fact in self.facts()],
        }

    # -- persistence (ontology triple store) ---------------------------------
    def persist(self, ontology: Any) -> int:
        """Write every fact as a ``PerformanceFact`` individual.

        *ontology* is a :class:`~repro.ontology.scan_ontology.ScanOntology`;
        the facts ride the same triple store (and Turtle serialisation) as
        the paper's GATK1/GATK2/... profiling individuals.  Returns the
        number of individuals written.
        """
        cls = _fact_class(ontology)
        for fact in self.facts():
            ind = ontology.domain.individual(
                f"Fact_{fact.app}_stage{fact.stage}", cls
            )
            ind.set("appName", fact.app)
            ind.set("stage", int(fact.stage))
            ind.set("coefA", float(fact.a))
            ind.set("coefB", float(fact.b))
            ind.set("coefC", -1.0 if fact.c is None else float(fact.c))
            ind.set("RAM", float(fact.ram_gb))
            ind.set("provenance", fact.provenance)
            ind.set("samples", int(fact.samples))
            ind.set("confidence", float(fact.confidence))
            ind.set("factEpoch", int(fact.epoch))
        return len(self._facts)

    @classmethod
    def restore(cls, ontology: Any) -> "KnowledgePlane":
        """Rebuild a plane from ``PerformanceFact`` individuals."""
        plane = cls()
        fact_cls = ontology.domain.get_class("PerformanceFact")
        if fact_cls is None:
            return plane
        facts = []
        for ind in fact_cls.individuals():
            app = ind.get("appName")
            stage = ind.get("stage")
            if app is None or stage is None:
                continue
            c_raw = float(ind.get("coefC", -1.0))
            facts.append(
                StageFact(
                    app=str(app),
                    stage=int(stage),
                    a=float(ind.get("coefA", 0.0)),
                    b=float(ind.get("coefB", 0.0)),
                    c=None if c_raw < 0 else c_raw,
                    ram_gb=float(ind.get("RAM", 4.0)),
                    provenance=str(ind.get("provenance", "model")),
                    samples=int(ind.get("samples", 0)),
                    confidence=float(ind.get("confidence", 1.0)),
                )
            )
        plane.install(facts)
        return plane


def _fact_class(ontology: Any):
    """The (declared-on-demand) ``PerformanceFact`` ontology class."""
    cls = ontology.domain.get_class("PerformanceFact")
    if cls is None:
        cls = ontology.domain.declare_class("PerformanceFact")
        for prop in (
            "coefA",
            "coefB",
            "coefC",
            "provenance",
            "samples",
            "confidence",
            "factEpoch",
        ):
            ontology.domain.declare_datatype_property(prop, domain=cls)
    return cls


def diff_snapshots(
    before: dict[str, Any], after: dict[str, Any], rel_tol: float = 1e-12
) -> list[str]:
    """Human-readable changes between two :meth:`KnowledgePlane.snapshot`\\ s."""

    def _index(snap: dict[str, Any]) -> dict[tuple[str, int], dict[str, Any]]:
        return {(f["app"], f["stage"]): f for f in snap.get("facts", ())}

    old, new = _index(before), _index(after)
    lines: list[str] = []
    if before.get("epoch") != after.get("epoch"):
        lines.append(
            f"epoch: {before.get('epoch')} -> {after.get('epoch')}"
        )
    for key in sorted(set(old) | set(new)):
        app, stage = key
        if key not in old:
            fact = new[key]
            lines.append(
                f"+ {app} stage {stage}: a={fact['a']:.6g} b={fact['b']:.6g} "
                f"({fact['provenance']}, n={fact['samples']})"
            )
            continue
        if key not in new:
            lines.append(f"- {app} stage {stage}: removed")
            continue
        changes = []
        for field_name in ("a", "b", "c", "provenance", "samples"):
            ov, nv = old[key][field_name], new[key][field_name]
            if isinstance(ov, float) and isinstance(nv, float):
                scale = max(abs(ov), abs(nv), 1e-12)
                if abs(ov - nv) / scale <= rel_tol:
                    continue
                changes.append(f"{field_name}: {ov:.6g} -> {nv:.6g}")
            elif ov != nv:
                changes.append(f"{field_name}: {ov} -> {nv}")
        if changes:
            lines.append(f"~ {app} stage {stage}: " + ", ".join(changes))
    return lines


# -- online refitting --------------------------------------------------------
#: One retained observation: (input_gb, threads, duration).
_Obs = Tuple[float, int, float]


def fit_stage_fact(
    app: str,
    stage: int,
    observations: Iterable[_Obs],
    prior: Optional[StageFact] = None,
    min_samples: int = 4,
) -> Optional[StageFact]:
    """Batch-fit one stage's fact from (input_gb, threads, duration) triples.

    The fit is *deterministically order-independent*: observations are
    sorted before any floating-point accumulation, so any permutation of
    the same multiset produces bit-identical coefficients (the Hypothesis
    property in the test suite pins this).

    Multi-threaded durations are normalised back to single-threaded
    equivalents through the prior's Amdahl fraction ``c`` (online runs
    rarely execute at ``threads=1``, so the de-Amdahl step is what lets a
    production trace correct a mis-profiled ``a``/``b``).  Returns ``None``
    when the data cannot support a fit (too few points, one distinct
    size) -- the caller keeps the prior fact.
    """
    obs = sorted(observations)
    if len(obs) < max(min_samples, 2):
        return None
    c = prior.c if prior is not None else None
    ram_gb = prior.ram_gb if prior is not None else 4.0
    xs: list[float] = []
    ys: list[float] = []
    for size, threads, duration in obs:
        if threads == 1 or c is None:
            equivalent = duration
        else:
            equivalent = duration / max(c / threads + (1.0 - c), 1e-9)
        xs.append(size)
        ys.append(equivalent)
    if len(set(xs)) < 2:
        return None
    try:
        fit = fit_linear(xs, ys)
    except ValueError:
        return None
    return StageFact(
        app=app,
        stage=stage,
        a=fit.slope,
        b=fit.intercept,
        c=c,
        ram_gb=ram_gb,
        provenance="refit",
        samples=len(obs),
        confidence=max(min(fit.r_squared, 1.0), 0.0),
    )


class OnlineRefitter:
    """Streams realised stage durations back into the knowledge plane.

    Subscribe it to a bus (:meth:`attach`) and every
    :class:`~repro.core.bus.StageCompleted` event is retained; every
    ``refit_every`` observations the affected stages are re-fit
    (:func:`fit_stage_fact`) and the new facts installed, bumping the
    plane epoch so EET memos and provider model tables rebuild.

    The refitter is a passive bus subscriber: it never draws simulation
    randomness or schedules events, so attaching it cannot perturb a run's
    trajectory -- only its *estimates*.
    """

    def __init__(
        self,
        plane: KnowledgePlane,
        refit_every: int = 8,
        min_samples: int = 4,
        max_observations: int = 4096,
        metrics: Any = None,
        clock: Any = None,
        per_tier: bool = False,
    ) -> None:
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.plane = plane
        self.refit_every = refit_every
        self.min_samples = min_samples
        self.max_observations = max_observations
        #: When True, observations tagged with a tier are *also* folded
        #: into a tier-scoped fact (``app@tier``), so the plane learns
        #: per-tier coefficient sets (e.g. serverless cold environments
        #: running systematically slower than reserved metal).
        self.per_tier = per_tier
        self._clock = clock
        self._observations: Dict[Tuple[str, int], List[_Obs]] = {}
        self._dirty: set[Tuple[str, int]] = set()
        self._since_refit = 0
        self.observed = 0
        self.refits = 0
        self._refit_counter = None
        self._epoch_gauge = None
        self._error_hist = None
        if metrics is not None:
            self._refit_counter = metrics.counter(
                "knowledge_refits", "Online refits installed into the plane"
            )
            self._epoch_gauge = metrics.gauge(
                "knowledge_plane_epoch", "Current knowledge-plane epoch"
            )
            self._error_hist = metrics.histogram(
                "estimate_error_ratio",
                "Realised duration / plane-predicted duration per stage",
                buckets=(0.25, 0.5, 0.75, 0.9, 1.1, 1.25, 1.5, 2.0, 4.0),
            )

    def attach(self, bus: EventBus) -> "OnlineRefitter":
        """Subscribe to *bus*'s :class:`StageCompleted` events."""
        bus.subscribe(StageCompleted, self.on_stage_completed)
        return self

    def on_stage_completed(self, event: StageCompleted) -> None:
        self.observe(
            event.app, event.stage, event.input_gb, event.threads, event.duration
        )
        tier = getattr(event, "tier", "")
        if self.per_tier and tier:
            self.observe(
                f"{event.app}@{tier}",
                event.stage,
                event.input_gb,
                event.threads,
                event.duration,
            )

    def observe(
        self, app: str, stage: int, input_gb: float, threads: int, duration: float
    ) -> None:
        """Fold one realised duration in; refit when the cadence is due."""
        key = (app, stage)
        prior = self.plane.get(app, stage)
        if self._error_hist is not None and prior is not None:
            predicted = prior.predict(input_gb, threads)
            if predicted > 0:
                self._error_hist.observe(duration / predicted)
        retained = self._observations.setdefault(key, [])
        retained.append((float(input_gb), int(threads), float(duration)))
        if len(retained) > self.max_observations:
            del retained[0 : len(retained) - self.max_observations]
        self._dirty.add(key)
        self.observed += 1
        self._since_refit += 1
        if self._since_refit >= self.refit_every:
            self.refit()

    def refit(self) -> int:
        """Re-fit every stage touched since the last refit; returns epoch."""
        self._since_refit = 0
        facts: list[StageFact] = []
        fitted_keys: list[Tuple[str, int]] = []
        for key in sorted(self._dirty):
            app, stage = key
            prior = self.plane.get(app, stage)
            fact = fit_stage_fact(
                app,
                stage,
                self._observations[key],
                prior=prior,
                min_samples=self.min_samples,
            )
            if fact is not None:
                facts.append(fact)
                fitted_keys.append(key)
        if not facts:
            return self.plane.epoch
        now = float(self._clock()) if self._clock is not None else 0.0
        priors = {key: self.plane.get(*key) for key in fitted_keys}
        epoch = self.plane.install(facts)
        for key, fact in zip(fitted_keys, facts):
            self._dirty.discard(key)
            prior = priors[key]
            self.plane.history.append(
                RefitRecord(
                    time=now,
                    app=fact.app,
                    stage=fact.stage,
                    old_a=prior.a if prior is not None else float("nan"),
                    old_b=prior.b if prior is not None else float("nan"),
                    new_a=fact.a,
                    new_b=fact.b,
                    samples=fact.samples,
                    epoch=epoch,
                )
            )
        self.refits += 1
        if self._refit_counter is not None:
            self._refit_counter.inc()
        if self._epoch_gauge is not None:
            self._epoch_gauge.set(float(epoch))
        return epoch

    def flush(self) -> int:
        """Force a refit of everything pending (end-of-run, tests)."""
        return self.refit()


# -- providers ----------------------------------------------------------------
class EstimateProvider(Protocol):
    """The one read interface every estimate consumer goes through."""

    @property
    def epoch(self) -> int:
        """Model version; consumers invalidate memos when it moves."""
        ...

    @property
    def n_stages(self) -> int: ...

    def stage_model(self, stage: int) -> StageModel:
        """The current (clamped) model for *stage*."""
        ...

    def eet(self, stage: int, size_gb: float, threads: int) -> float:
        """Estimated execution time T_i(t, d) under the current facts."""
        ...


#: Plugin registry of estimate providers (``static`` / ``adaptive``).
ESTIMATE_PROVIDERS: "Registry[EstimateProvider]" = Registry("estimates")


@ESTIMATE_PROVIDERS.register("static")
class StaticEstimateProvider:
    """Frozen profiled coefficients: the pre-plane behaviour, exactly.

    ``eet`` delegates straight to the application model's
    ``threaded_time`` -- the same floats as before the refactor, pinned by
    the golden sweep fixtures.  The epoch never moves, so EET memos built
    over this provider are never invalidated.
    """

    def __init__(self, app: ApplicationModel, plane: Any = None, **_: Any) -> None:
        self.app = app

    @property
    def epoch(self) -> int:
        return 0

    @property
    def n_stages(self) -> int:
        return self.app.n_stages

    def stage_model(self, stage: int) -> StageModel:
        return self.app.stage(stage)

    def eet(self, stage: int, size_gb: float, threads: int) -> float:
        return self.app.stage(stage).threaded_time(threads, size_gb)


@ESTIMATE_PROVIDERS.register("adaptive")
class AdaptiveEstimateProvider:
    """Serves the knowledge plane's latest facts; re-reads after refits.

    Stage models are materialised once per plane epoch (a refit bumps the
    epoch, the next read rebuilds the table).  Stages without facts fall
    back to the application model's profiled coefficients, so a cold plane
    behaves like the static provider.
    """

    def __init__(self, app: ApplicationModel, plane: KnowledgePlane, **_: Any) -> None:
        if plane is None:
            raise KnowledgeBaseError(
                "adaptive estimate provider requires a knowledge plane"
            )
        self.app = app
        self.plane = plane
        if not plane.facts(app.name):
            plane.seed_from_model(app)
        self._models: Dict[int, StageModel] = {}
        self._models_epoch = -1

    @property
    def epoch(self) -> int:
        return self.plane.epoch

    @property
    def n_stages(self) -> int:
        return self.app.n_stages

    def _refresh(self) -> None:
        if self._models_epoch == self.plane.epoch:
            return
        models: Dict[int, StageModel] = {}
        for index in range(self.app.n_stages):
            fact = self.plane.get(self.app.name, index)
            if fact is None:
                models[index] = self.app.stage(index)
            else:
                models[index] = fact.to_stage_model(
                    name=self.app.stage(index).name
                )
        self._models = models
        self._models_epoch = self.plane.epoch

    def stage_model(self, stage: int) -> StageModel:
        self._refresh()
        return self._models[stage]

    def eet(self, stage: int, size_gb: float, threads: int) -> float:
        self._refresh()
        return self._models[stage].threaded_time(threads, size_gb)


class FactProvider:
    """An :class:`EstimateProvider` view over one app's plane facts alone.

    The broker side has no :class:`ApplicationModel` in scope (it knows
    applications by name), so its provider is backed purely by installed
    facts.  ``eet`` uses the *unclamped* :meth:`StageFact.predict`
    arithmetic, which reproduces the knowledge base's profile-fit
    predictions float-for-float -- the shard advisor's historical numbers.
    """

    def __init__(self, plane: KnowledgePlane, app: str) -> None:
        self.plane = plane
        self.app = app

    @property
    def epoch(self) -> int:
        return self.plane.epoch

    @property
    def n_stages(self) -> int:
        return len(self.plane.facts(self.app))

    def stages(self) -> list[int]:
        """Stage indices with installed facts, sorted."""
        return [fact.stage for fact in self.plane.facts(self.app)]

    def stage_model(self, stage: int) -> StageModel:
        fact = self.plane.get(self.app, stage)
        if fact is None:
            raise KnowledgeBaseError(
                f"no fact for {self.app!r} stage {stage} in the plane"
            )
        return fact.to_stage_model()

    def eet(self, stage: int, size_gb: float, threads: int) -> float:
        fact = self.plane.get(self.app, stage)
        if fact is None:
            raise KnowledgeBaseError(
                f"no fact for {self.app!r} stage {stage} in the plane"
            )
        return fact.predict(size_gb, threads)


class WorkflowStaticProvider:
    """Frozen per-node coefficients for a compiled workflow.

    The DAG analogue of :class:`StaticEstimateProvider`: ``stage_model``
    maps a node index to the node's believed :class:`StageModel` object
    itself, so a compiled *chain* serves the exact same model objects (and
    floats) as the static provider over the underlying application.
    """

    def __init__(self, workflow: Any, plane: Any = None, **_: Any) -> None:
        self.workflow = workflow

    @property
    def epoch(self) -> int:
        return 0

    @property
    def n_stages(self) -> int:
        return self.workflow.n_nodes

    def stage_model(self, stage: int) -> StageModel:
        return self.workflow.node(stage).model

    def eet(self, stage: int, size_gb: float, threads: int) -> float:
        return self.workflow.node(stage).model.threaded_time(threads, size_gb)


class WorkflowAdaptiveProvider:
    """Plane-backed estimates keyed per (workflow, step) fact scope.

    Each compiled node reads the fact installed under
    ``(node.scope, node.app_stage)`` -- for spec workflows the scope is
    ``"{workflow}/{step}"``, so two branches running the *same* tool own
    separate facts and the online refitter sharpens them independently
    (the scheduler publishes ``StageCompleted`` events under the node
    scope, which is all the refitter keys on).  Nodes without facts fall
    back to their believed model; a cold plane is seeded from the
    workflow's own coefficients, scope by scope.
    """

    def __init__(self, workflow: Any, plane: KnowledgePlane, **_: Any) -> None:
        if plane is None:
            raise KnowledgeBaseError(
                "workflow adaptive provider requires a knowledge plane"
            )
        self.workflow = workflow
        self.plane = plane
        plane.install(
            StageFact(
                app=node.scope,
                stage=node.app_stage,
                a=node.model.a,
                b=node.model.b,
                c=node.model.c,
                ram_gb=node.model.ram_gb,
                provenance="model",
                samples=0,
                confidence=1.0,
            )
            for node in workflow
            if plane.get(node.scope, node.app_stage) is None
        )
        self._models: Dict[int, StageModel] = {}
        self._models_epoch = -1

    @property
    def epoch(self) -> int:
        return self.plane.epoch

    @property
    def n_stages(self) -> int:
        return self.workflow.n_nodes

    def _refresh(self) -> None:
        if self._models_epoch == self.plane.epoch:
            return
        models: Dict[int, StageModel] = {}
        for node in self.workflow:
            fact = self.plane.get(node.scope, node.app_stage)
            if fact is None:
                models[node.index] = node.model
            else:
                models[node.index] = fact.to_stage_model(name=node.model.name)
        self._models = models
        self._models_epoch = self.plane.epoch

    def stage_model(self, stage: int) -> StageModel:
        self._refresh()
        return self._models[stage]

    def eet(self, stage: int, size_gb: float, threads: int) -> float:
        self._refresh()
        return self._models[stage].threaded_time(threads, size_gb)


def make_workflow_provider(
    kind: Any, workflow: Any, plane: Optional[KnowledgePlane] = None
) -> EstimateProvider:
    """The workflow-scoped provider matching estimate-provider *kind*.

    ``static`` and ``adaptive`` map to their DAG analogues; other kinds
    (out-of-tree providers are keyed on a single application) have no
    workflow form and are rejected.
    """
    kind = str(getattr(kind, "value", kind))
    if kind == "static":
        return WorkflowStaticProvider(workflow)
    if kind == "adaptive":
        return WorkflowAdaptiveProvider(workflow, plane)
    raise KnowledgeBaseError(
        f"estimate provider {kind!r} has no workflow-scoped form; "
        "use 'static' or 'adaptive'"
    )


def drifted_model(app: ApplicationModel, factor: float) -> ApplicationModel:
    """*app* with every stage's linear coefficients scaled by *factor*.

    Models ground-truth drift: the platform plans with the profiled
    coefficients while execution follows the drifted ones (the scheduler's
    ``actual_app`` seam).  Amdahl fractions and RAM footprints are left
    alone -- drift in a/b is what the online refitter can recover from
    production traces.
    """
    if factor <= 0:
        raise ValueError(f"drift factor must be positive, got {factor}")
    if factor == 1.0:
        return app
    stages = tuple(
        replace(stage, a=stage.a * factor, b=stage.b * factor)
        for stage in app.stages
    )
    return replace(app, stages=stages)


def make_estimate_provider(
    kind: Any,
    app: ApplicationModel,
    plane: Optional[KnowledgePlane] = None,
    **kwargs: Any,
) -> EstimateProvider:
    """Instantiate the estimate provider registered under *kind*."""
    return ESTIMATE_PROVIDERS.create(kind, app=app, plane=plane, **kwargs)
