"""The shard-size advisor.

"By querying the knowledge-base, the SCAN can determine, for example, the
most suitable file size for each type of genomic data analysis based on the
resource cost and performance requirements.  It can then suggest to
subdivide a big input data file into some number of small input files for
parallel processing ... choosing the degree of parallelism based on a user
cost policy" (paper Sections I and III-A.1).

The trade-off being optimised is real in the paper's own model: every
stage has a fixed per-task overhead ``b_i``, so more shards cost more total
overhead (and more core-time), while fewer shards mean less parallelism and
a longer makespan.  The advisor evaluates candidate shard sizes under the
user's reward function and the cloud's core price, and returns the
profit-maximising choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import KnowledgeBaseError
from repro.knowledge.kb import SCANKnowledgeBase
from repro.knowledge.plane import FactProvider, KnowledgePlane

__all__ = ["ShardAdvice", "ShardAdvisor"]


@dataclass(frozen=True)
class ShardAdvice:
    """The advisor's recommendation for one dataset."""

    shard_gb: float
    n_shards: int
    predicted_task_time: float
    predicted_makespan: float
    predicted_core_cost: float
    predicted_profit: float
    #: Where the recommendation came from: "knowledge_base" when profile
    #: data drove the optimisation, "default" when falling back.
    source: str

    def __str__(self) -> str:
        return (
            f"{self.n_shards} x {self.shard_gb:.2f} GB shards "
            f"(task {self.predicted_task_time:.1f} TU, makespan "
            f"{self.predicted_makespan:.1f} TU, {self.source})"
        )


class ShardAdvisor:
    """Profit-driven shard sizing backed by the knowledge base."""

    def __init__(
        self,
        kb: SCANKnowledgeBase,
        default_shard_gb: float = 2.0,
        min_shard_gb: float = 0.25,
        max_shards: int = 256,
        plane: Optional[KnowledgePlane] = None,
    ) -> None:
        if default_shard_gb <= 0 or min_shard_gb <= 0:
            raise ValueError("shard sizes must be positive")
        if max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        self.kb = kb
        self.default_shard_gb = default_shard_gb
        self.min_shard_gb = min_shard_gb
        self.max_shards = max_shards
        #: The knowledge plane task-time predictions resolve through.  A
        #: private plane is created when none is shared; either way the
        #: advisor reads facts, never raw profile objects, at decision
        #: time.
        self.plane = plane if plane is not None else KnowledgePlane()
        self._seeded_obs: dict[str, int] = {}

    def _provider(self, app: str) -> FactProvider:
        """The plane-backed estimate provider for *app*, freshly seeded.

        Facts are (re-)seeded from the knowledge base's profile fits
        whenever the KB gained observations since the last seed -- the
        log-ingest path keeps sharpening the fits, and the plane snapshot
        must follow.
        """
        n_obs = len(self.kb.profile(app))
        if self._seeded_obs.get(app) != n_obs:
            self.plane.seed_from_profiles(self.kb, app)
            self._seeded_obs[app] = n_obs
        return FactProvider(self.plane, app)

    def advise(
        self,
        app: str,
        total_gb: float,
        parallel_workers: int,
        core_cost_per_tu: float,
        reward_fn,
        candidate_sizes: Optional[Sequence[float]] = None,
    ) -> ShardAdvice:
        """Recommend a shard size for a *total_gb* input to *app*.

        ``reward_fn(latency_tu, records_gb)`` maps the whole-job makespan
        and size to the user's reward (see :mod:`repro.scheduler.rewards`);
        ``parallel_workers`` bounds usable concurrency.
        """
        if total_gb <= 0:
            raise ValueError("total_gb must be positive")
        if parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        if core_cost_per_tu < 0:
            raise ValueError("core_cost_per_tu must be >= 0")

        if not self.kb.has_profile(app):
            # No knowledge yet: the paper's bootstrap case ("we can just use
            # history information ... as the start point"); fall back to the
            # platform default (2 GB for GATK in the evaluation).
            return self._fixed_advice(total_gb, self.default_shard_gb, "default")

        # Facts only exist for stages whose profile supports a linear fit,
        # so the provider's stage list is exactly the old `usable` set.
        provider = self._provider(app)
        usable = provider.stages()
        if not usable:
            return self._fixed_advice(total_gb, self.default_shard_gb, "default")

        if candidate_sizes is None:
            candidate_sizes = self._candidate_sizes(app, total_gb)

        best: Optional[ShardAdvice] = None
        for shard_gb in candidate_sizes:
            shard_gb = min(shard_gb, total_gb)
            if shard_gb < self.min_shard_gb:
                continue
            n_shards = math.ceil(total_gb / shard_gb - 1e-9)
            if n_shards > self.max_shards:
                continue
            actual_shard = total_gb / n_shards
            task_time = sum(
                provider.eet(i, actual_shard, 1) for i in usable
            )
            waves = math.ceil(n_shards / parallel_workers)
            makespan = waves * task_time
            core_cost = n_shards * task_time * core_cost_per_tu
            reward = reward_fn(makespan, total_gb)
            profit = reward - core_cost
            advice = ShardAdvice(
                shard_gb=actual_shard,
                n_shards=n_shards,
                predicted_task_time=task_time,
                predicted_makespan=makespan,
                predicted_core_cost=core_cost,
                predicted_profit=profit,
                source="knowledge_base",
            )
            if best is None or profit > best.predicted_profit + 1e-9:
                best = advice
        if best is None:
            return self._fixed_advice(total_gb, self.default_shard_gb, "default")
        return best

    def _candidate_sizes(self, app: str, total_gb: float) -> list[float]:
        """Candidate shard sizes: profiled input sizes plus a standard grid.

        The profiled sizes are what the paper's SPARQL ranking surfaces --
        sizes the platform has actually seen and timed.
        """
        sizes: set[float] = {0.5, 1.0, 2.0, 4.0, 8.0}
        try:
            for row in self.kb.ranked_instances(app, limit=50):
                size = float(row["size"])
                if size > 0:
                    sizes.add(size)
        except KnowledgeBaseError:
            pass
        sizes.add(total_gb)  # "no sharding" is always a candidate
        return sorted(s for s in sizes if s <= total_gb + 1e-9) or [total_gb]

    def _fixed_advice(
        self, total_gb: float, shard_gb: float, source: str
    ) -> ShardAdvice:
        shard_gb = min(shard_gb, total_gb)
        n_shards = min(
            math.ceil(total_gb / shard_gb - 1e-9), self.max_shards
        )
        actual = total_gb / n_shards
        return ShardAdvice(
            shard_gb=actual,
            n_shards=n_shards,
            predicted_task_time=float("nan"),
            predicted_makespan=float("nan"),
            predicted_core_cost=float("nan"),
            predicted_profit=float("nan"),
            source=source,
        )
