"""Knowledge-base expansion from the platform's task log.

"In order to enrich the knowledge base, the SCAN keeps the log information
of each task scheduled to run in a cloud.  The log information will be used
to further populate the SCAN knowledge-base" (paper Section III-A.1.i).

:class:`KnowledgeIngestor` subscribes to the platform
:class:`~repro.core.events.EventLog` and converts every
``STAGE_COMPLETED`` event into a :class:`ProfileObservation`, so the KB's
fits sharpen as the platform runs -- the paper's GATK1 -> GATK2 -> GATK3 ->
GATK4 expansion happens live.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import EventKind, EventLog, PlatformEvent
from repro.knowledge.kb import SCANKnowledgeBase
from repro.knowledge.profiles import ProfileObservation

__all__ = ["KnowledgeIngestor"]


class KnowledgeIngestor:
    """Streams completed-stage events into the knowledge base."""

    #: Event detail keys a STAGE_COMPLETED event must carry to be ingested.
    REQUIRED_KEYS = ("app", "stage", "input_gb", "threads", "duration")

    def __init__(
        self,
        kb: SCANKnowledgeBase,
        log: Optional[EventLog] = None,
        sample_every: int = 1,
    ) -> None:
        """Create an ingestor; attaches to *log* immediately if given.

        ``sample_every=k`` ingests every k-th eligible event -- useful in
        long simulations where recording all ~10^5 stage completions as
        ontology individuals would bloat the store without improving fits.
        """
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.kb = kb
        self.sample_every = sample_every
        self._seen = 0
        self.ingested = 0
        self.skipped = 0
        if log is not None:
            self.attach(log)

    def attach(self, log: EventLog) -> None:
        """Subscribe to *log*."""
        log.subscribe(self._on_event)

    def _on_event(self, event: PlatformEvent) -> None:
        if event.kind is not EventKind.STAGE_COMPLETED:
            return
        if any(key not in event.detail for key in self.REQUIRED_KEYS):
            self.skipped += 1
            return
        self._seen += 1
        if (self._seen - 1) % self.sample_every != 0:
            return
        self.ingest(event)

    def ingest(self, event: PlatformEvent) -> str:
        """Force-ingest one STAGE_COMPLETED event; returns individual name."""
        obs = ProfileObservation(
            app=str(event["app"]),
            stage=int(event["stage"]),
            input_gb=float(event["input_gb"]),
            threads=int(event["threads"]),
            execution_time=float(event["duration"]),
            cpu=int(event.get("cpu", event["threads"])),
            ram_gb=float(event.get("ram_gb", 4.0)),
        )
        name = self.kb.record_observation(obs)
        self.ingested += 1
        return name

    def replay(self, log: EventLog) -> int:
        """Ingest all eligible events already in *log*; returns count."""
        before = self.ingested
        for event in log:
            self._on_event(event)
        return self.ingested - before
