"""The SCAN application knowledge base.

"Having information about applications is critical for efficiently planning
genome analysis" (paper Section II-C).  The knowledge base couples the
semantic store (:mod:`repro.ontology`) with quantitative performance
profiles:

- :mod:`repro.knowledge.profiles` -- profiled observations per (application,
  stage) and regression fits recovering the a/b/c stage models.
- :mod:`repro.knowledge.kb` -- :class:`SCANKnowledgeBase`: stores
  observations both as ontology individuals (GATK1, GATK2, ... as in the
  paper's OWL listings) and as profile data; answers SPARQL queries.
- :mod:`repro.knowledge.advisor` -- the shard-size advisor the Data Broker
  queries ("the SCAN knowledge-base will advise the appropriate shard
  size").
- :mod:`repro.knowledge.log_ingest` -- knowledge-base expansion from task
  logs ("the log information will be used to further populate the SCAN
  knowledge-base").
"""

from repro.knowledge.profiles import (
    ProfileObservation,
    StageProfile,
    ApplicationProfile,
)
from repro.knowledge.kb import SCANKnowledgeBase, PersistentKnowledgeBase
from repro.knowledge.advisor import ShardAdvisor, ShardAdvice
from repro.knowledge.log_ingest import KnowledgeIngestor

__all__ = [
    "ProfileObservation",
    "StageProfile",
    "ApplicationProfile",
    "SCANKnowledgeBase",
    "PersistentKnowledgeBase",
    "ShardAdvisor",
    "ShardAdvice",
    "KnowledgeIngestor",
]
