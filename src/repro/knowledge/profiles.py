"""Performance profiles and regression fits.

"The knowledge-base is initially created by profiling some of the most
common genome applications ... we profiled GATK performance under different
hardware configurations and with different inputs.  The datasets include
genome inputs of different sizes, ranging from 1GByte to 9GBytes.  We can
then conclude that total execution time linearly increases with the input
file size and that different GATK analysis tools scale differently with
thread count" (paper Section III-A.1.i).

A :class:`StageProfile` accumulates (input size, threads, time)
observations for one pipeline stage and recovers the paper's a/b/c model:
``a``/``b`` by OLS over single-threaded runs, ``c`` by the Amdahl inverse
fit over multi-threaded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.amdahl import amdahl_time, fit_parallel_fraction
from repro.analysis.regression import LinearFit, fit_linear
from repro.apps.base import StageModel
from repro.core.errors import KnowledgeBaseError

__all__ = ["ProfileObservation", "StageProfile", "ApplicationProfile"]


@dataclass(frozen=True)
class ProfileObservation:
    """One profiled run of one stage."""

    app: str
    stage: int
    input_gb: float
    threads: int
    execution_time: float
    cpu: int = 8
    ram_gb: float = 4.0

    def __post_init__(self) -> None:
        if self.input_gb < 0:
            raise ValueError("input_gb must be >= 0")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if self.execution_time < 0:
            raise ValueError("execution_time must be >= 0")


class StageProfile:
    """Observations and fitted model for one (application, stage)."""

    def __init__(self, app: str, stage: int) -> None:
        self.app = app
        self.stage = stage
        self._observations: list[ProfileObservation] = []
        self._fit_dirty = True
        self._linear: Optional[LinearFit] = None
        self._c: Optional[float] = None

    def add(self, obs: ProfileObservation) -> None:
        """Append one observation (invalidates cached fits)."""
        if obs.app != self.app or obs.stage != self.stage:
            raise KnowledgeBaseError(
                f"observation for ({obs.app}, {obs.stage}) added to "
                f"profile ({self.app}, {self.stage})"
            )
        self._observations.append(obs)
        self._fit_dirty = True

    def __len__(self) -> int:
        return len(self._observations)

    @property
    def observations(self) -> tuple[ProfileObservation, ...]:
        return tuple(self._observations)

    # -- fitting --------------------------------------------------------------
    def _refit(self) -> None:
        single = [o for o in self._observations if o.threads == 1]
        sizes = {o.input_gb for o in single}
        if len(single) >= 2 and len(sizes) >= 2:
            self._linear = fit_linear(
                [o.input_gb for o in single],
                [o.execution_time for o in single],
            )
        else:
            self._linear = None

        # Fit c from multi-threaded observations, normalising each to its
        # own single-threaded baseline prediction where available.
        multi = [o for o in self._observations if o.threads > 1]
        if multi and self._linear is not None:
            threads: list[int] = [1]
            times: list[float] = [1.0]  # normalised baseline point
            for o in multi:
                baseline = max(self._linear(o.input_gb), 1e-9)
                threads.append(o.threads)
                times.append(o.execution_time / baseline)
            try:
                self._c = fit_parallel_fraction(threads, times)
            except ValueError:
                self._c = None
        else:
            self._c = None
        self._fit_dirty = False

    @property
    def has_linear_fit(self) -> bool:
        if self._fit_dirty:
            self._refit()
        return self._linear is not None

    @property
    def linear_fit(self) -> LinearFit:
        if self._fit_dirty:
            self._refit()
        if self._linear is None:
            raise KnowledgeBaseError(
                f"profile ({self.app}, stage {self.stage}) lacks enough "
                "single-threaded observations for a linear fit"
            )
        return self._linear

    @property
    def parallel_fraction(self) -> Optional[float]:
        if self._fit_dirty:
            self._refit()
        return self._c

    def predict(self, input_gb: float, threads: int = 1) -> float:
        """Predicted execution time at *input_gb* and *threads*."""
        base = max(self.linear_fit(input_gb), 1e-6)
        c = self.parallel_fraction
        if threads == 1 or c is None:
            return base
        return amdahl_time(base, threads, c)

    def to_stage_model(self, name: str = "", ram_gb: float = 4.0) -> StageModel:
        """Export the fitted model as a :class:`StageModel`."""
        fit = self.linear_fit
        c = self.parallel_fraction
        return StageModel(
            index=self.stage,
            name=name or f"{self.app}-stage{self.stage}",
            a=max(fit.slope, 0.0),
            b=fit.intercept,
            c=c if c is not None else 0.0,
            ram_gb=ram_gb,
        )


class ApplicationProfile:
    """All stage profiles for one application."""

    def __init__(self, app: str) -> None:
        self.app = app
        self._stages: dict[int, StageProfile] = {}

    def stage(self, index: int) -> StageProfile:
        """The (created-on-demand) profile for one stage."""
        profile = self._stages.get(index)
        if profile is None:
            profile = StageProfile(self.app, index)
            self._stages[index] = profile
        return profile

    def add(self, obs: ProfileObservation) -> None:
        """Route an observation to its stage's profile."""
        if obs.app != self.app:
            raise KnowledgeBaseError(
                f"observation for {obs.app!r} added to profile {self.app!r}"
            )
        self.stage(obs.stage).add(obs)

    @property
    def stage_indices(self) -> list[int]:
        return sorted(self._stages)

    def __len__(self) -> int:
        return sum(len(p) for p in self._stages.values())

    def total_predicted_time(self, input_gb: float, threads_per_stage: Iterable[int]) -> float:
        """Predicted whole-pipeline time under per-stage thread counts."""
        threads = list(threads_per_stage)
        indices = self.stage_indices
        if len(threads) != len(indices):
            raise KnowledgeBaseError(
                f"{len(threads)} thread counts for {len(indices)} profiled stages"
            )
        return sum(
            self.stage(i).predict(input_gb, t) for i, t in zip(indices, threads)
        )
