"""``scan-sim``: the command-line interface to the SCAN reproduction.

Subcommands::

    scan-sim run          one simulation session, metrics to stdout
    scan-sim sweep        a Table-I-style grid sweep
    scan-sim submit       run one analysis request on the platform facade
    scan-sim serve        start the HTTP RPC front-end
    scan-sim table2       print the Table II recovery (profiling regression)
    scan-sim trace        inspect a Chrome trace written by ``run --trace-out``
    scan-sim policies     list every plugin registry and its entries
    scan-sim tiers        show a config's elastic tier stack
    scan-sim config-dump  print a named preset's resolved JSON config
    scan-sim kb           dump the knowledge plane facts, or diff snapshots

``run`` accepts the platform configuration three ways: individual flags
(the historical interface), ``--preset NAME`` (a registered preset), or
``--config FILE`` (a JSON dump, e.g. from ``config-dump``).  The three are
interchangeable: running a dumped preset file reproduces the preset run
byte-for-byte.  Out-of-tree plugin modules named in ``SCAN_SIM_PLUGINS``
(or ``scan_sim.plugins`` entry points) are imported before any subcommand
runs, so their registrations are visible everywhere.

Every subcommand takes ``--seed`` and prints deterministic results.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro._version import __version__
from repro.core.config import (
    AllocationAlgorithm,
    PlatformConfig,
    RewardScheme,
    ScalingAlgorithm,
)
from repro.core.errors import ConfigurationError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The scan-sim argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="scan-sim",
        description="SCAN (ICPP 2015) reproduction: simulate smart "
        "scheduling of genomic pipelines on a hybrid cloud.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation session")
    _common_session_args(run)
    source = run.add_mutually_exclusive_group()
    source.add_argument(
        "--config", default=None, metavar="FILE",
        help="load the full platform configuration from a JSON file "
        "(see config-dump); individual session flags are ignored",
    )
    source.add_argument(
        "--preset", default=None, metavar="NAME",
        help="use a registered configuration preset (see `scan-sim "
        "policies`); individual session flags are ignored",
    )
    run.add_argument("--json", action="store_true", help="machine-readable output")
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable summary (artifact/JSON output only)",
    )
    telem = run.add_argument_group("telemetry")
    telem.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON (open in Perfetto / "
        "chrome://tracing); implies telemetry",
    )
    telem.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write Prometheus text-exposition metrics; implies telemetry",
    )
    telem.add_argument(
        "--profile", action="store_true",
        help="profile the engine and write BENCH_telemetry.json",
    )
    telem.add_argument(
        "--profile-out", default="BENCH_telemetry.json", metavar="PATH",
        help="where --profile writes its report",
    )

    sweep = sub.add_parser("sweep", help="sweep intervals x scaling policies")
    _common_session_args(sweep)
    sweep_source = sweep.add_mutually_exclusive_group()
    sweep_source.add_argument(
        "--config", default=None, metavar="FILE",
        help="load the full platform configuration from a JSON file "
        "(see config-dump); individual session flags are ignored",
    )
    sweep_source.add_argument(
        "--preset", default=None, metavar="NAME",
        help="use a registered configuration preset (see `scan-sim "
        "policies`); individual session flags are ignored",
    )
    sweep.add_argument(
        "--intervals", default="2.0,2.5,3.0",
        help="comma-separated mean inter-arrival intervals",
    )
    sweep.add_argument("--repetitions", type=int, default=2)
    sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the grid (1 = in-process serial, "
        "0 = one per CPU core); results are identical to serial",
    )
    streaming = sweep.add_argument_group(
        "streaming results (resumable sweeps; see DESIGN.md section 5h)"
    )
    streaming.add_argument(
        "--results-out", default=None, metavar="SPEC",
        help="stream every completed repetition to this result ledger: "
        "a .jsonl path, a .db/.sqlite path, or kind:path; overrides the "
        "config's results.store",
    )
    streaming.add_argument(
        "--resume", action="store_true",
        help="continue the sweep already in the result ledger: completed "
        "repetitions are not re-run, failed ones are retried; the final "
        "report is byte-identical to an uninterrupted run",
    )

    submit = sub.add_parser(
        "submit", help="submit one analysis to the platform facade"
    )
    submit.add_argument("--size-gb", type=float, default=100.0)
    submit.add_argument("--format", default="fastq")
    submit.add_argument("--name", default="cli-sample")
    submit.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="start the HTTP RPC front-end")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--preset", default=None, metavar="NAME",
                       help="platform preset (default: paper defaults)")
    serve.add_argument("--seed", type=int, default=None,
                       help="override the platform's root seed")
    service = serve.add_argument_group(
        "service plane (multi-tenant queue; see DESIGN.md section 5g)"
    )
    service.add_argument(
        "--service", action="store_true",
        help="attach the multi-tenant service plane "
        "(tenant queues, admission control, crash recovery)",
    )
    service.add_argument(
        "--store", default="memory", metavar="SPEC",
        help="queue persistence: 'memory', a .jsonl path, a .db/.sqlite "
        "path, or kind:path (default: memory)",
    )
    service.add_argument(
        "--capacity", type=int, default=None, metavar="N",
        help="per-tenant queue capacity (default from ServiceConfig)",
    )
    service.add_argument(
        "--strategy", default=None, metavar="NAME",
        help="priority strategy (fifo, smallest_first, largest_first, "
        "weighted, deadline; see `scan-sim policies --kind priority`)",
    )
    service.add_argument(
        "--admission", default=None, choices=["reject", "shed_lowest"],
        help="what to do when a tenant queue is full",
    )
    service.add_argument(
        "--max-body-bytes", type=int, default=None, metavar="N",
        help="largest accepted HTTP request body",
    )

    sub.add_parser("table2", help="recover Table II from simulated profiling")

    trace = sub.add_parser(
        "trace", help="inspect a Chrome trace written by run --trace-out"
    )
    trace.add_argument("file", help="trace-event JSON file")
    trace.add_argument(
        "--top", type=int, default=10, help="how many longest spans to list"
    )

    policies = sub.add_parser(
        "policies", help="list plugin registries and their entries"
    )
    policies.add_argument(
        "--kind", default=None,
        help="show a single registry (allocation, scaling, reward, "
        "sharder, application, preset, ...)",
    )
    policies.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    workflows = sub.add_parser(
        "workflows",
        help="list registered workflow DAGs (steps, edges, formats)",
    )
    workflows.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    tiers = sub.add_parser(
        "tiers",
        help="show a config's elastic tier stack (backend, capacity, "
        "pricing, caps) in placement order",
    )
    tiers_source = tiers.add_mutually_exclusive_group()
    tiers_source.add_argument(
        "--config", default=None, metavar="FILE",
        help="load the full platform configuration from a JSON file "
        "(see config-dump)",
    )
    tiers_source.add_argument(
        "--preset", default=None, metavar="NAME",
        help="use a registered configuration preset (see `scan-sim "
        "policies`); defaults to the paper's two-tier stack",
    )
    tiers.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    dump = sub.add_parser(
        "config-dump",
        help="print the resolved JSON config of a registered preset",
    )
    dump.add_argument("preset", help="preset name (see `scan-sim policies`)")

    kb = sub.add_parser(
        "kb",
        help="dump the knowledge plane's facts table, or diff two snapshots",
    )
    kb.add_argument(
        "--diff", nargs=2, default=None, metavar=("BEFORE", "AFTER"),
        help="diff two snapshot JSON files (written by --snapshot-out) "
        "instead of running a session",
    )
    kb.add_argument("--preset", default=None, metavar="NAME",
                    help="run this preset's session before dumping")
    kb.add_argument("--estimates", default=None, metavar="PROVIDER",
                    help="estimate provider (static, adaptive)")
    kb.add_argument("--duration", type=float, default=None,
                    help="override the session duration (TU)")
    kb.add_argument("--seed", type=int, default=0)
    kb.add_argument("--json", action="store_true",
                    help="print the snapshot as JSON instead of a table")
    kb.add_argument(
        "--snapshot-out", default=None, metavar="PATH",
        help="also write the snapshot JSON here (feed to --diff later)",
    )

    return parser


def _common_session_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=600.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--interval", type=float, default=2.5)
    # No argparse `choices`: out-of-tree policies loaded via
    # SCAN_SIM_PLUGINS are addressable by name, and unknown names get a
    # ConfigurationError listing everything registered (see `policies`).
    parser.add_argument(
        "--allocation", default="greedy",
        help=f"allocation policy (built-in: "
             f"{', '.join(a.value for a in AllocationAlgorithm)})",
    )
    parser.add_argument(
        "--scaling", default="predictive",
        help=f"scaling policy (built-in: "
             f"{', '.join(s.value for s in ScalingAlgorithm)})",
    )
    parser.add_argument(
        "--reward", default="time",
        help=f"reward scheme (built-in: "
             f"{', '.join(r.value for r in RewardScheme)})",
    )
    parser.add_argument("--public-cost", type=float, default=50.0)
    parser.add_argument("--size-unit-gb", type=float, default=1.0)
    parser.add_argument(
        "--estimates", default=None, metavar="PROVIDER",
        help="estimate provider behind the knowledge plane (built-in: "
        "static, adaptive); overrides --preset/--config too",
    )
    parser.add_argument(
        "--workflow", default=None, metavar="NAME",
        help="run a registered workflow DAG instead of the application's "
        "linear chain (see `scan-sim workflows`); overrides "
        "--preset/--config too",
    )
    chaos = parser.add_argument_group("chaos / resilience")
    chaos.add_argument(
        "--mtbf", type=float, default=None,
        help="mean time between VM crashes (TU); default: no crashes",
    )
    chaos.add_argument(
        "--p-boot-fail", type=float, default=0.0,
        help="probability a deployed VM dies during boot",
    )
    chaos.add_argument(
        "--p-deploy-fail", type=float, default=0.0,
        help="probability a CELAR deploy bounces transiently",
    )
    chaos.add_argument(
        "--p-straggler", type=float, default=0.0,
        help="probability a task execution straggles (heavy-tailed slowdown)",
    )
    chaos.add_argument(
        "--p-corrupt", type=float, default=0.0,
        help="probability a completed stage is retroactively corrupt",
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=0,
        help="retry budget per stage task (0 = retry forever)",
    )
    chaos.add_argument(
        "--no-resilience", action="store_true",
        help="disable retries/speculation/breaker (chaos ablation baseline)",
    )


def _policy_name(enum_cls, name):
    """Coerce *name* to its enum when built-in, else keep the raw string.

    Raw strings flow through ``with_overrides`` untouched and resolve at
    the registry, so plugin policies work from the command line.
    """
    try:
        return enum_cls(name)
    except ValueError:
        return name


def _session_config(args: argparse.Namespace) -> PlatformConfig:
    return PlatformConfig.paper_defaults().with_overrides(
        simulation={"duration": args.duration},
        workload={
            "mean_interarrival": args.interval,
            "size_unit_gb": args.size_unit_gb,
        },
        reward={"scheme": _policy_name(RewardScheme, args.reward)},
        cloud={"public_core_cost": args.public_cost},
        scheduler={
            "allocation": _policy_name(AllocationAlgorithm, args.allocation),
            "scaling": _policy_name(ScalingAlgorithm, args.scaling),
        },
        faults={
            "mtbf_tu": args.mtbf,
            "p_boot_fail": args.p_boot_fail,
            "p_deploy_fail": args.p_deploy_fail,
            "p_straggler": args.p_straggler,
            "p_corrupt": args.p_corrupt,
        },
        resilience={
            "enabled": not args.no_resilience,
            "max_attempts": args.max_attempts,
        },
    )


def _apply_estimates_flag(
    config: PlatformConfig, args: argparse.Namespace
) -> PlatformConfig:
    """Overlay ``--estimates`` onto *config* (wins over preset/file)."""
    provider = getattr(args, "estimates", None)
    if provider is None:
        return config
    return config.with_overrides(knowledge={"provider": provider})


def _apply_workflow_flag(
    config: PlatformConfig, args: argparse.Namespace
) -> PlatformConfig:
    """Overlay ``--workflow`` onto *config* (wins over preset/file)."""
    workflow = getattr(args, "workflow", None)
    if workflow is None:
        return config
    return config.with_overrides(workflow=workflow)


def _resolve_run_config(args: argparse.Namespace) -> PlatformConfig:
    """run's config, from --config / --preset / individual flags."""
    if args.config is not None:
        try:
            with open(args.config) as fh:
                text = fh.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read config file {args.config!r}: {exc}"
            ) from exc
        return PlatformConfig.from_json(text).validate()
    if args.preset is not None:
        from repro.core.presets import make_preset

        return make_preset(args.preset)
    return _session_config(args)


def cmd_run(args: argparse.Namespace) -> int:
    """Run one simulation session and print its metrics."""
    from repro.sim.session import SimulationSession

    config = _apply_workflow_flag(
        _apply_estimates_flag(_resolve_run_config(args), args), args
    )
    telemetry_on = bool(args.trace_out or args.metrics_out or args.profile)
    if telemetry_on:
        config = config.with_overrides(
            telemetry={"enabled": True, "profile": args.profile}
        )
    session = SimulationSession(config)
    result = session.run(seed=args.seed)
    _write_telemetry_artifacts(session, args)
    if args.json:
        print(json.dumps(result.as_dict(), default=str, indent=2))
    elif not args.quiet:
        print(f"completed runs      : {result.completed_runs}/{result.submitted_runs}")
        print(f"mean profit per run : {result.mean_profit_per_run:.1f} CU")
        print(f"reward-to-cost      : {result.reward_to_cost:.2f}")
        print(f"mean latency        : {result.mean_latency:.1f} TU")
        print(f"latency p95         : {result.latency_p95:.1f} TU")
        print(f"private utilization : {result.private_utilization:.2f}")
        print(f"hires (priv/pub)    : {result.hires_private}/{result.hires_public}")
        print(f"repools             : {result.repools}")
        if any(result.resilience_counters().values()):
            from repro.sim.report import render_resilience_summary

            print(render_resilience_summary(result, title="chaos / resilience"))
    return 0


def _write_telemetry_artifacts(session, args: argparse.Namespace) -> None:
    """Write trace / metrics / profile files from the session's hub.

    Paths are reported on stderr so ``--json`` stdout stays parseable.
    """
    hub = getattr(session, "telemetry", None)
    if hub is None:
        return
    if args.trace_out and hub.tracer is not None:
        hub.tracer.write(args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.metrics_out and hub.metrics is not None:
        hub.metrics.write(args.metrics_out)
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.profile and hub.profiler is not None:
        hub.profiler.write(args.profile_out, tracer=hub.tracer)
        print(f"profile written to {args.profile_out}", file=sys.stderr)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep intervals x scaling policies and print the series.

    ``--jobs N`` fans the grid across a process pool; the printed table is
    identical to the serial run (deterministic per-cell seeds, ordered
    collection -- see :mod:`repro.sim.parallel`).  ``--results-out``
    streams every completed repetition to an append-only ledger and makes
    the sweep resumable with ``--resume`` after a crash or kill -- again
    with a byte-identical final table (see :mod:`repro.sim.results`).
    """
    from repro.sim.report import render_series, rows_to_series
    from repro.sim.sweep import SweepSpec, run_sweep

    intervals = [float(x) for x in args.intervals.split(",") if x.strip()]
    if not intervals:
        print("no intervals given", file=sys.stderr)
        return 2
    spec = SweepSpec(
        allocation=(_policy_name(AllocationAlgorithm, args.allocation),),
        scaling=tuple(ScalingAlgorithm),
        mean_interarrival=tuple(intervals),
        reward_scheme=(_policy_name(RewardScheme, args.reward),),
        public_core_cost=(args.public_cost,),
    )
    base = _apply_workflow_flag(
        _apply_estimates_flag(_resolve_run_config(args), args), args
    )
    store_spec = args.results_out or base.results.store or None
    if args.resume and store_spec is None:
        print(
            "scan-sim: --resume needs a result ledger; pass --results-out "
            "or a config with results.store set",
            file=sys.stderr,
        )
        return 2
    store = None
    if store_spec is not None:
        from repro.sim.results import make_result_store

        store = make_result_store(store_spec, fsync=base.results.fsync)
    try:
        if args.jobs == 1:
            rows = run_sweep(
                base,
                spec,
                repetitions=args.repetitions,
                base_seed=args.seed,
                results=store,
                resume=args.resume,
            )
        else:
            from repro.sim.parallel import run_sweep_parallel

            rows = run_sweep_parallel(
                base,
                spec,
                repetitions=args.repetitions,
                base_seed=args.seed,
                jobs=args.jobs,
                results=store,
                resume=args.resume,
            )
    finally:
        if store is not None:
            store.close()
    series = rows_to_series(rows, "scaling", "mean_profit_per_run")
    print(
        render_series(
            "interval",
            [f"{x:.2f}" for x in intervals],
            series,
            title="mean profit per run by horizontal-scaling policy",
            precision=0,
        )
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one analysis to the platform facade and run it."""
    from repro.core.platform import SCANPlatform
    from repro.genomics.datasets import DataFormat, DatasetDescriptor

    try:
        fmt = DataFormat(args.format)
    except ValueError:
        print(f"unknown format {args.format!r}", file=sys.stderr)
        return 2
    platform = SCANPlatform(PlatformConfig.paper_defaults())
    platform.bootstrap_knowledge()
    request = platform.submit_analysis(
        DatasetDescriptor.from_size(args.name, fmt, args.size_gb)
    )
    print(f"advice : {request.brokered.advice}")
    platform.run_until_complete(request)
    print(f"latency: {request.latency():.1f} TU")
    print(f"output : {request.merged_output}")
    for key, value in platform.metrics().items():
        print(f"  {key:20s} {value:.2f}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the HTTP RPC front-end and block until Ctrl-C."""
    import dataclasses

    from repro.core.platform import SCANPlatform
    from repro.core.rpc import ScanRpcServer

    if args.preset is not None:
        from repro.core.presets import make_preset

        config = make_preset(args.preset)
    else:
        config = PlatformConfig.paper_defaults()
    if args.seed is not None:
        config = dataclasses.replace(
            config,
            simulation=dataclasses.replace(config.simulation, seed=args.seed),
        )
    platform = SCANPlatform(config)
    platform.bootstrap_knowledge()
    plane = None
    if args.service:
        from repro.service import ServiceConfig, ServicePlane

        overrides = {
            key: value
            for key, value in (
                ("tenant_capacity", args.capacity),
                ("priority_strategy", args.strategy),
                ("admission", args.admission),
                ("store", args.store),
                ("max_body_bytes", args.max_body_bytes),
            )
            if value is not None
        }
        plane = ServicePlane(platform, config=ServiceConfig(**overrides))
        recovered = plane.recovered
        if recovered.accepted:
            print(
                f"recovered {len(recovered.queued)} queued job(s) "
                f"({len(recovered.interrupted)} interrupted) and "
                f"{len(recovered.finished)} finished from {args.store}"
            )
    server = ScanRpcServer(platform, host=args.host, port=args.port, plane=plane)
    server.start()
    mode = "service plane" if plane is not None else "platform RPC"
    print(f"SCAN {mode} listening on {server.address} (Ctrl-C to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_table2(_args: argparse.Namespace) -> int:
    """Print Table II recovered from simulated profiling."""
    from repro.apps.gatk import GATK_STAGES, build_gatk_model
    from repro.knowledge.kb import SCANKnowledgeBase
    from repro.sim.report import render_table

    kb = SCANKnowledgeBase()
    kb.bootstrap_from_model(build_gatk_model())
    rows = [
        [i + 1, name, a, fit.a, b, fit.b, c, fit.c]
        for i, ((name, a, b, c, _r), fit) in enumerate(
            zip(GATK_STAGES, kb.fitted_stage_models("gatk"))
        )
    ]
    print(
        render_table(
            ["stage", "tool", "a", "a_fit", "b", "b_fit", "c", "c_fit"],
            rows,
            title="Table II recovered by regression over simulated profiling",
            precision=2,
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarise a Chrome trace-event JSON file."""
    from repro.sim.report import render_table

    try:
        with open(args.file) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read trace {args.file!r}: {exc}", file=sys.stderr)
        return 2
    events = data.get("traceEvents", []) if isinstance(data, dict) else data

    lanes: dict[int, str] = {}
    counts: dict[str, int] = {}
    spans = []
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "thread_name":
                lanes[ev.get("tid", 0)] = ev.get("args", {}).get("name", "")
            continue
        cat = ev.get("cat", "?")
        counts[cat] = counts.get(cat, 0) + 1
        if ph == "X":
            spans.append(ev)

    print(
        render_table(
            ["category", "events"],
            sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])),
            title=f"{args.file}: {sum(counts.values())} events, "
            f"{len(lanes)} lanes",
        )
    )
    spans.sort(key=lambda ev: -ev.get("dur", 0.0))
    rows = [
        [
            ev.get("name", "?"),
            ev.get("cat", "?"),
            lanes.get(ev.get("tid", 0), str(ev.get("tid", 0))),
            f"{ev.get('ts', 0.0) / 1e6:.3f}",
            f"{ev.get('dur', 0.0) / 1e6:.3f}",
        ]
        for ev in spans[: max(args.top, 0)]
    ]
    if rows:
        print()
        print(
            render_table(
                ["span", "cat", "lane", "start_tu", "dur_tu"],
                rows,
                title=f"top {len(rows)} longest spans",
            )
        )
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    """List every plugin registry (or one ``--kind``) and its entries."""
    from repro.core.plugins import all_registries, get_registry

    if args.kind is not None:
        registries = {args.kind: get_registry(args.kind)}
    else:
        registries = all_registries()
    if args.json:
        print(
            json.dumps(
                {kind: reg.names() for kind, reg in registries.items()},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for kind, registry in registries.items():
        print(f"{kind} ({len(registry)}):")
        for name in registry.names():
            print(f"  {name}")
    return 0


def cmd_workflows(args: argparse.Namespace) -> int:
    """List every registered workflow spec with its compiled shape.

    Each workflow is compiled (against the default application registry)
    so the listing shows what the scheduler would actually run: node
    count, chain-or-DAG shape, entry/terminal steps, and per-step
    application, data formats and edges.
    """
    from repro.workflows.compiled import compile_spec
    from repro.workflows.library import WORKFLOWS, make_workflow

    summaries = []
    for name in WORKFLOWS.names():
        spec = make_workflow(name)
        compiled = compile_spec(spec)
        summary = compiled.describe()
        summary["registered_as"] = name
        summary["step_edges"] = sorted(
            [parent, child]
            for parent in spec.topological_order
            for child in spec.children(parent)
        )
        summary["step_apps"] = {
            step_name: {
                "app": step.app,
                "input": spec.app_of(step_name).input_format.value,
                "output": spec.app_of(step_name).output_format.value,
                "output_ratio": step.output_ratio,
            }
            for step_name, step in spec.steps.items()
        }
        summaries.append(summary)
    if args.json:
        print(json.dumps(summaries, indent=2, sort_keys=True))
        return 0
    for summary in summaries:
        shape = "chain" if summary["chain"] else "dag"
        print(
            f"{summary['registered_as']}: {summary['name']} "
            f"({summary['nodes']} nodes, {shape})"
        )
        for step_name, info in sorted(summary["step_apps"].items()):
            print(
                f"  step {step_name}: {info['app']} "
                f"[{info['input']} -> {info['output']}, "
                f"ratio {info['output_ratio']}]"
            )
        for parent, child in summary["step_edges"]:
            print(f"  edge {parent} -> {child}")
    return 0


def cmd_tiers(args: argparse.Namespace) -> int:
    """Dump the configured tier stack in placement order.

    Nothing is simulated: the stack is built against a throwaway
    environment purely for its configuration view, so this works for
    any preset or dumped config file -- including out-of-tree tier
    backends registered via plugins.
    """
    from repro.cloud.tiers import tier_stack_description

    if args.config is not None:
        try:
            with open(args.config) as fh:
                config = PlatformConfig.from_json(fh.read())
        except (OSError, ValueError) as exc:
            print(f"cannot read config {args.config!r}: {exc}", file=sys.stderr)
            return 2
    elif args.preset is not None:
        from repro.core.presets import make_preset

        config = make_preset(args.preset)
    else:
        config = PlatformConfig.paper_defaults()
    stack = tier_stack_description(config.cloud)
    if args.json:
        print(json.dumps(
            {"placement": config.cloud.placement, "tiers": stack},
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"placement: {config.cloud.placement}")
    for position, desc in enumerate(stack):
        kind = "elastic" if desc["elastic"] else "base"
        print(
            f"  [{position}] {desc['name']} ({desc['backend']}, {kind}): "
            f"{desc['capacity_cores']} cores "
            f"@ {desc['core_cost_per_tu']} CU/core/TU"
        )
        for cap, value in sorted(desc["caps"].items()):
            print(f"        {cap} = {value}")
    return 0


def cmd_config_dump(args: argparse.Namespace) -> int:
    """Print one preset's fully-resolved config as round-trippable JSON."""
    from repro.core.presets import make_preset

    print(make_preset(args.preset).to_json())
    return 0


def cmd_kb(args: argparse.Namespace) -> int:
    """Dump the knowledge plane's facts table, or diff two snapshots.

    Without ``--diff`` this runs one session and prints every fact the
    plane holds afterwards (stage, coefficients, provenance, samples,
    confidence, epoch).  With ``--diff BEFORE AFTER`` it compares two
    snapshot files written by ``--snapshot-out`` and prints the changed
    facts -- a poor man's ``watch`` over the refit loop.
    """
    from repro.knowledge.plane import diff_snapshots

    if args.diff is not None:
        snapshots = []
        for path in args.diff:
            try:
                with open(path) as fh:
                    snapshots.append(json.load(fh))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"cannot read snapshot {path!r}: {exc}", file=sys.stderr)
                return 2
        lines = diff_snapshots(snapshots[0], snapshots[1])
        if not lines:
            print("no changes")
        for line in lines:
            print(line)
        return 0

    from repro.sim.session import SimulationSession

    config = PlatformConfig.paper_defaults()
    if args.preset is not None:
        from repro.core.presets import make_preset

        config = make_preset(args.preset)
    config = _apply_estimates_flag(config, args)
    if args.duration is not None:
        config = config.with_overrides(simulation={"duration": args.duration})
    session = SimulationSession(config)
    session.run(seed=args.seed)
    plane = session.plane
    if plane is not None and not plane.facts(session.app.name):
        # The static provider reads the application model directly and
        # never writes the plane; seed it now so the dump shows the facts
        # the estimates actually came from.
        plane.seed_from_model(session.app)
    if plane is None:
        print("no knowledge plane in this session", file=sys.stderr)
        return 2
    snapshot = plane.snapshot()
    if args.snapshot_out:
        with open(args.snapshot_out, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        print(f"snapshot written to {args.snapshot_out}", file=sys.stderr)
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    from repro.sim.report import render_table

    rows = [
        [
            fact["app"],
            fact["stage"],
            f"{fact['a']:.4f}",
            f"{fact['b']:.4f}",
            "-" if fact["c"] is None else f"{fact['c']:.4f}",
            fact["provenance"],
            fact["samples"],
            f"{fact['confidence']:.2f}",
            fact["epoch"],
        ]
        for fact in snapshot["facts"]
    ]
    print(
        render_table(
            ["app", "stage", "a", "b", "c", "provenance",
             "samples", "confidence", "epoch"],
            rows,
            title=f"knowledge plane @ epoch {snapshot['epoch']} "
            f"({len(rows)} facts)",
        )
    )
    return 0


_COMMANDS = {
    "run": cmd_run,
    "sweep": cmd_sweep,
    "submit": cmd_submit,
    "serve": cmd_serve,
    "table2": cmd_table2,
    "trace": cmd_trace,
    "policies": cmd_policies,
    "workflows": cmd_workflows,
    "tiers": cmd_tiers,
    "config-dump": cmd_config_dump,
    "kb": cmd_kb,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        from repro.core.plugins import load_plugins

        load_plugins()
        return _COMMANDS[args.command](args)
    except ConfigurationError as exc:
        print(f"scan-sim: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
