"""``scan-sim``: the command-line interface to the SCAN reproduction.

Subcommands::

    scan-sim run       one simulation session, metrics to stdout
    scan-sim sweep     a Table-I-style grid sweep
    scan-sim submit    run one analysis request on the platform facade
    scan-sim serve     start the HTTP RPC front-end
    scan-sim table2    print the Table II recovery (profiling regression)

Every subcommand takes ``--seed`` and prints deterministic results.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core.config import (
    AllocationAlgorithm,
    PlatformConfig,
    RewardScheme,
    ScalingAlgorithm,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The scan-sim argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="scan-sim",
        description="SCAN (ICPP 2015) reproduction: simulate smart "
        "scheduling of genomic pipelines on a hybrid cloud.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation session")
    _common_session_args(run)
    run.add_argument("--json", action="store_true", help="machine-readable output")

    sweep = sub.add_parser("sweep", help="sweep intervals x scaling policies")
    _common_session_args(sweep)
    sweep.add_argument(
        "--intervals", default="2.0,2.5,3.0",
        help="comma-separated mean inter-arrival intervals",
    )
    sweep.add_argument("--repetitions", type=int, default=2)

    submit = sub.add_parser(
        "submit", help="submit one analysis to the platform facade"
    )
    submit.add_argument("--size-gb", type=float, default=100.0)
    submit.add_argument("--format", default="fastq")
    submit.add_argument("--name", default="cli-sample")
    submit.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="start the HTTP RPC front-end")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)

    sub.add_parser("table2", help="recover Table II from simulated profiling")

    return parser


def _common_session_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=600.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--interval", type=float, default=2.5)
    parser.add_argument(
        "--allocation", default="greedy",
        choices=[a.value for a in AllocationAlgorithm],
    )
    parser.add_argument(
        "--scaling", default="predictive",
        choices=[s.value for s in ScalingAlgorithm],
    )
    parser.add_argument(
        "--reward", default="time", choices=[r.value for r in RewardScheme]
    )
    parser.add_argument("--public-cost", type=float, default=50.0)
    parser.add_argument("--size-unit-gb", type=float, default=1.0)
    chaos = parser.add_argument_group("chaos / resilience")
    chaos.add_argument(
        "--mtbf", type=float, default=None,
        help="mean time between VM crashes (TU); default: no crashes",
    )
    chaos.add_argument(
        "--p-boot-fail", type=float, default=0.0,
        help="probability a deployed VM dies during boot",
    )
    chaos.add_argument(
        "--p-deploy-fail", type=float, default=0.0,
        help="probability a CELAR deploy bounces transiently",
    )
    chaos.add_argument(
        "--p-straggler", type=float, default=0.0,
        help="probability a task execution straggles (heavy-tailed slowdown)",
    )
    chaos.add_argument(
        "--p-corrupt", type=float, default=0.0,
        help="probability a completed stage is retroactively corrupt",
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=0,
        help="retry budget per stage task (0 = retry forever)",
    )
    chaos.add_argument(
        "--no-resilience", action="store_true",
        help="disable retries/speculation/breaker (chaos ablation baseline)",
    )


def _session_config(args: argparse.Namespace) -> PlatformConfig:
    return PlatformConfig.paper_defaults().with_overrides(
        simulation={"duration": args.duration},
        workload={
            "mean_interarrival": args.interval,
            "size_unit_gb": args.size_unit_gb,
        },
        reward={"scheme": RewardScheme(args.reward)},
        cloud={"public_core_cost": args.public_cost},
        scheduler={
            "allocation": AllocationAlgorithm(args.allocation),
            "scaling": ScalingAlgorithm(args.scaling),
        },
        faults={
            "mtbf_tu": args.mtbf,
            "p_boot_fail": args.p_boot_fail,
            "p_deploy_fail": args.p_deploy_fail,
            "p_straggler": args.p_straggler,
            "p_corrupt": args.p_corrupt,
        },
        resilience={
            "enabled": not args.no_resilience,
            "max_attempts": args.max_attempts,
        },
    )


def cmd_run(args: argparse.Namespace) -> int:
    """Run one simulation session and print its metrics."""
    from repro.sim.session import SimulationSession

    result = SimulationSession(_session_config(args)).run(seed=args.seed)
    if args.json:
        print(json.dumps(result.as_dict(), default=str, indent=2))
    else:
        print(f"completed runs      : {result.completed_runs}/{result.submitted_runs}")
        print(f"mean profit per run : {result.mean_profit_per_run:.1f} CU")
        print(f"reward-to-cost      : {result.reward_to_cost:.2f}")
        print(f"mean latency        : {result.mean_latency:.1f} TU")
        print(f"private utilization : {result.private_utilization:.2f}")
        print(f"hires (priv/pub)    : {result.hires_private}/{result.hires_public}")
        print(f"repools             : {result.repools}")
        if any(result.resilience_counters().values()):
            from repro.sim.report import render_resilience_summary

            print(render_resilience_summary(result, title="chaos / resilience"))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep intervals x scaling policies and print the series."""
    from repro.sim.report import render_series
    from repro.sim.session import run_repetitions
    from repro.analysis.stats import aggregate_runs

    intervals = [float(x) for x in args.intervals.split(",") if x.strip()]
    if not intervals:
        print("no intervals given", file=sys.stderr)
        return 2
    series = {}
    for scaling in ScalingAlgorithm:
        points = []
        for interval in intervals:
            config = _session_config(args).with_overrides(
                workload={"mean_interarrival": interval},
                scheduler={"scaling": scaling},
            )
            results = run_repetitions(
                config, repetitions=args.repetitions, base_seed=args.seed
            )
            stats = aggregate_runs([r.metrics() for r in results])
            points.append(stats["mean_profit_per_run"])
        series[scaling.value] = points
    print(
        render_series(
            "interval",
            [f"{x:.2f}" for x in intervals],
            series,
            title="mean profit per run by horizontal-scaling policy",
            precision=0,
        )
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one analysis to the platform facade and run it."""
    from repro.core.platform import SCANPlatform
    from repro.genomics.datasets import DataFormat, DatasetDescriptor

    try:
        fmt = DataFormat(args.format)
    except ValueError:
        print(f"unknown format {args.format!r}", file=sys.stderr)
        return 2
    platform = SCANPlatform(PlatformConfig.paper_defaults())
    platform.bootstrap_knowledge()
    request = platform.submit_analysis(
        DatasetDescriptor.from_size(args.name, fmt, args.size_gb)
    )
    print(f"advice : {request.brokered.advice}")
    platform.run_until_complete(request)
    print(f"latency: {request.latency():.1f} TU")
    print(f"output : {request.merged_output}")
    for key, value in platform.metrics().items():
        print(f"  {key:20s} {value:.2f}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the HTTP RPC front-end and block until Ctrl-C."""
    from repro.core.platform import SCANPlatform
    from repro.core.rpc import ScanRpcServer

    platform = SCANPlatform(PlatformConfig.paper_defaults())
    platform.bootstrap_knowledge()
    server = ScanRpcServer(platform, host=args.host, port=args.port)
    server.start()
    print(f"SCAN RPC listening on {server.address} (Ctrl-C to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_table2(_args: argparse.Namespace) -> int:
    """Print Table II recovered from simulated profiling."""
    from repro.apps.gatk import GATK_STAGES, build_gatk_model
    from repro.knowledge.kb import SCANKnowledgeBase
    from repro.sim.report import render_table

    kb = SCANKnowledgeBase()
    kb.bootstrap_from_model(build_gatk_model())
    rows = [
        [i + 1, name, a, fit.a, b, fit.b, c, fit.c]
        for i, ((name, a, b, c, _r), fit) in enumerate(
            zip(GATK_STAGES, kb.fitted_stage_models("gatk"))
        )
    ]
    print(
        render_table(
            ["stage", "tool", "a", "a_fit", "b", "b_fit", "c", "c_fit"],
            rows,
            title="Table II recovered by regression over simulated profiling",
            precision=2,
        )
    )
    return 0


_COMMANDS = {
    "run": cmd_run,
    "sweep": cmd_sweep,
    "submit": cmd_submit,
    "serve": cmd_serve,
    "table2": cmd_table2,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
