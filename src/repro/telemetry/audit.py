"""Scheduler decision audit log: every hire-or-wait choice, explained.

The paper's predictive scaler (Eq. 1) compares the reward the queue would
lose by waiting against the public-tier premium; a sweep that flips from
"wait" to "hire" is only explainable if the inputs to that comparison were
recorded.  This module keeps one :class:`ScalingDecisionRecord` per
decision -- the capped wait, per-job ETT/reward terms, tier prices and
premium captured by :class:`~repro.scheduler.scaling.DecisionExplanation`
-- and :func:`replay_decision` re-derives the choice from the record plus
the reward function alone, proving the log is sufficient to explain it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterator, Optional

from repro.scheduler.rewards import RewardFunction
from repro.scheduler.scaling import DecisionExplanation, ScalingDecision

__all__ = [
    "ScalingDecisionRecord",
    "DecisionAuditLog",
    "decision_label",
    "replay_decision",
]


def decision_label(decision: ScalingDecision) -> str:
    """Canonical string for a decision: ``hire_<tier>`` or ``wait``.

    For the default two-tier stack this yields the historical
    ``hire_private`` / ``hire_public`` labels unchanged.
    """
    if not decision.hire:
        return "wait"
    return f"hire_{decision.tier}"


@dataclass(frozen=True)
class ScalingDecisionRecord:
    """One audited hire-or-wait choice, with its Eq. 1 inputs."""

    time: float
    stage: int
    task_uid: int
    job_uid: int
    decision: str
    explanation: Optional[DecisionExplanation] = None

    def as_dict(self) -> dict:
        return asdict(self)


class DecisionAuditLog:
    """Append-only record of scaling decisions, capped to bound memory."""

    def __init__(self, max_records: int = 200_000) -> None:
        self.max_records = max_records
        self._records: list[ScalingDecisionRecord] = []
        self.dropped = 0
        #: Totals per decision label, kept even past the cap.
        self.counts: dict[str, int] = {}

    def add(self, record: ScalingDecisionRecord) -> None:
        self.counts[record.decision] = self.counts.get(record.decision, 0) + 1
        if len(self._records) >= self.max_records:
            self.dropped += 1
            return
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ScalingDecisionRecord]:
        return iter(self._records)

    @property
    def records(self) -> tuple[ScalingDecisionRecord, ...]:
        return tuple(self._records)

    def of_decision(self, label: str) -> list[ScalingDecisionRecord]:
        """All retained records with the given decision label."""
        return [r for r in self._records if r.decision == label]

    def write_jsonl(self, path: str) -> None:
        """One JSON object per decision, in arrival order."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(json.dumps(record.as_dict()) + "\n")


def replay_decision(
    record: ScalingDecisionRecord, reward: RewardFunction
) -> str:
    """Re-derive the hire-or-wait choice from a logged record.

    Only the record's explanation and the reward function are consulted --
    no estimator, queue or infrastructure -- mirroring each policy's
    decision procedure over the captured inputs.  For predictive records
    the Eq. 1 sum is recomputed from the logged per-job ``(ett_now,
    records)`` terms and compared against the logged premium.
    """
    explanation = record.explanation
    if explanation is None:
        raise ValueError(f"record for task {record.task_uid} has no explanation")
    if explanation.private_free:
        return "hire_private"
    if explanation.policy == "never":
        return "wait"
    if not explanation.public_available or explanation.public_capacity is False:
        return "wait"
    if explanation.policy == "always":
        return "hire_public"
    # Predictive: Eq. 1 over the logged terms vs. the logged premium.
    wait = explanation.wait
    if wait is None or wait <= 0.0 or explanation.premium is None:
        return "wait"
    dc = 0.0
    for term in explanation.terms:
        dc += reward(max(term.ett_now, 0.0), term.records) - reward(
            max(term.ett_now + wait, 0.0), term.records
        )
    return "hire_public" if dc > explanation.premium else "wait"
