"""Simulation self-measurement: events/sec, heap depth, module shares.

The profiler answers "how fast is the simulator itself?" -- the
prerequisite for any future hot-path optimisation to prove a win.  It
wraps :meth:`Environment.step` with a counting/timing shim (an *instance*
attribute that shadows the class method, so the kernel needs no changes),
samples the event-calendar depth every N steps, and at the end of a run
writes ``BENCH_telemetry.json`` with:

- ``events_per_sec``: calendar events processed per wall second;
- ``heap``: mean/peak calendar depth over the sampled steps;
- ``module_wall_share``: fraction of wall time spent per component,
  derived from the tracer's synchronous-span accounting with the engine
  as the remainder (an inclusive approximation: a span's wall time
  includes the callees it invokes).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Optional

from repro.desim.engine import Environment
from repro.telemetry.tracing import SpanTracer

__all__ = ["EngineProbe", "SimulationProfiler", "PROFILE_SCHEMA"]

PROFILE_SCHEMA = "scan-sim-profile/1"


class EngineProbe:
    """Counts and times every :meth:`Environment.step`; samples the heap.

    Installation sets ``env.step`` as an instance attribute shadowing the
    class method -- :meth:`Environment.run` dispatches through ``self.step``
    so every event passes through the shim.  The shim only counts, times
    and (every ``sample_every`` steps) reads ``len(env._queue)``; it never
    schedules events or draws random numbers, so simulated results are
    untouched.
    """

    def __init__(
        self,
        env: Environment,
        tracer: Optional[SpanTracer] = None,
        sample_every: int = 64,
        wall: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.env = env
        self.tracer = tracer
        self.sample_every = sample_every
        self._wall = wall
        self.steps = 0
        self.wall_in_step = 0.0
        self.heap_samples = 0
        self.heap_depth_sum = 0
        self.peak_heap = 0
        self._orig_step = env.step
        self._installed = True
        env.step = self._step  # type: ignore[method-assign]

    def _step(self) -> None:
        t0 = self._wall()
        try:
            self._orig_step()
        finally:
            self.wall_in_step += self._wall() - t0
            self.steps += 1
            if self.steps % self.sample_every == 0:
                depth = len(self.env._queue)
                self.heap_samples += 1
                self.heap_depth_sum += depth
                if depth > self.peak_heap:
                    self.peak_heap = depth
                if self.tracer is not None:
                    self.tracer.counter(
                        "engine.heap_depth", "engine", {"depth": depth}
                    )

    def uninstall(self) -> None:
        """Restore the class method (idempotent)."""
        if self._installed:
            del self.env.step  # type: ignore[method-assign]
            self._installed = False

    @property
    def mean_heap_depth(self) -> float:
        if self.heap_samples == 0:
            return 0.0
        return self.heap_depth_sum / self.heap_samples


class SimulationProfiler:
    """Wall-clock self-measurement for one simulation run."""

    def __init__(self, sample_every: int = 64) -> None:
        self.sample_every = sample_every
        self.probe: Optional[EngineProbe] = None
        self._wall0: Optional[float] = None
        self.wall_total = 0.0
        self.sim_duration: Optional[float] = None

    def install(self, env: Environment, tracer: Optional[SpanTracer] = None) -> None:
        """Attach the engine probe to *env* (call before the run starts)."""
        self.probe = EngineProbe(env, tracer, self.sample_every)

    def start(self) -> None:
        self._wall0 = time.perf_counter()

    def stop(self, sim_duration: Optional[float] = None) -> None:
        if self._wall0 is not None:
            self.wall_total = time.perf_counter() - self._wall0
            self._wall0 = None
        if sim_duration is not None:
            self.sim_duration = sim_duration
        if self.probe is not None:
            self.probe.uninstall()

    # -- reporting ---------------------------------------------------------
    def report(self, tracer: Optional[SpanTracer] = None) -> dict[str, Any]:
        """The profile as a JSON-ready dict (``BENCH_telemetry.json``)."""
        steps = self.probe.steps if self.probe is not None else 0
        wall = self.wall_total
        events_per_sec = steps / wall if wall > 0 else 0.0
        out: dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "sim_duration_tu": self.sim_duration,
            "wall_seconds": round(wall, 6),
            "engine_steps": steps,
            "events_per_sec": round(events_per_sec, 3),
            "heap": {
                "samples": self.probe.heap_samples if self.probe else 0,
                "mean_depth": round(self.probe.mean_heap_depth, 3)
                if self.probe
                else 0.0,
                "peak_depth": self.probe.peak_heap if self.probe else 0,
            },
        }
        if tracer is not None:
            shares: dict[str, float] = {}
            accounted = 0.0
            for cat, seconds in sorted(tracer.wall_by_category.items()):
                share = seconds / wall if wall > 0 else 0.0
                shares[cat] = round(share, 6)
                accounted += seconds
            # The engine (heap pops, callback dispatch, generator resumes)
            # is everything the synchronous spans did not claim.
            if wall > 0:
                shares["engine"] = round(max(wall - accounted, 0.0) / wall, 6)
            out["module_wall_share"] = shares
            out["span_counts"] = dict(sorted(tracer.count_by_category.items()))
            out["trace_events"] = tracer.n_events
            out["dropped_events"] = tracer.dropped
        return out

    def write(self, path: str, tracer: Optional[SpanTracer] = None) -> None:
        """Serialise :meth:`report` to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.report(tracer), fh, indent=2)
            fh.write("\n")
