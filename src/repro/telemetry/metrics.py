"""Metrics registry: counters, gauges, histograms; Prometheus exposition.

The paper's platform is driven by measured facts, and the ROADMAP's
production north star needs a scrape surface: this module provides the
standard triad -- monotone counters, set-anywhere gauges and fixed-bucket
histograms -- each optionally labelled, collected in a
:class:`MetricsRegistry` whose :meth:`~MetricsRegistry.expose` renders the
Prometheus text exposition format (text/plain; version 0.0.4).

Adapters absorb the simulation's existing instrumentation
(:class:`~repro.desim.monitor.Monitor`,
:class:`~repro.desim.monitor.TimeWeightedMonitor`,
:class:`~repro.desim.monitor.CounterMonitor`) so a session's series land
in the same registry as the live scheduler counters.
"""

from __future__ import annotations

import math
import re
from typing import Mapping, Optional, Sequence

from repro.desim.monitor import CounterMonitor, Monitor, TimeWeightedMonitor

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_TU",
    "POP_LATENCY_BUCKETS_S",
    "absorb_monitor",
    "absorb_time_weighted",
    "absorb_counter_monitor",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets for pipeline latencies (TU).
LATENCY_BUCKETS_TU = (5.0, 10.0, 20.0, 40.0, 60.0, 90.0, 120.0, 200.0, 400.0)

#: Wall-clock buckets (seconds) for service-plane queue waits: sub-ms
#: in-memory pops up through minutes of backlog.
POP_LATENCY_BUCKETS_S = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared base: a named family of labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def _labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, by: float = 1.0, **labels: str) -> None:
        """Add *by* (must be >= 0) to the child named by *labels*."""
        if by < 0:
            raise ValueError(f"counter {self.name} cannot decrease (by={by})")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + by

    def value(self, **labels: str) -> float:
        """Current count of one child (0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def samples(self):
        for key in sorted(self._values):
            yield self.name, self._labels_of(key), self._values[key]


class Gauge(_Metric):
    """A value that can go anywhere (queue depth, utilisation, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, by: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + by

    def dec(self, by: float = 1.0, **labels: str) -> None:
        self.inc(-by, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self):
        for key in sorted(self._values):
            yield self.name, self._labels_of(key), self._values[key]


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are upper bounds; a ``+Inf`` bucket is implicit.  Each
    child tracks cumulative bucket counts plus ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} buckets must strictly increase")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; do not pass it")
        self.buckets = bounds
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}
        self._totals: dict[tuple[str, ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation (NaN observations are ignored)."""
        if math.isnan(value):
            return
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        return self._totals.get(self._key(labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def samples(self):
        for key in sorted(self._counts):
            labels = self._labels_of(key)
            cumulative = 0
            for bound, n in zip(self.buckets, self._counts[key]):
                cumulative += n
                yield (
                    f"{self.name}_bucket",
                    {**labels, "le": _format_value(bound)},
                    float(cumulative),
                )
            cumulative += self._counts[key][-1]
            yield f"{self.name}_bucket", {**labels, "le": "+Inf"}, float(cumulative)
            yield f"{self.name}_sum", labels, self._sums[key]
            yield f"{self.name}_count", labels, float(cumulative)


class MetricsRegistry:
    """A named collection of metrics with one text exposition surface."""

    def __init__(self, prefix: str = "scan_") -> None:
        self.prefix = prefix
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric) or existing.labelnames != metric.labelnames:
                raise ValueError(
                    f"metric {metric.name!r} already registered with a "
                    "different type or label set"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get-or-create a counter (idempotent for identical signatures)."""
        metric = self._register(Counter(self.prefix + name, help, labelnames))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get-or-create a gauge."""
        metric = self._register(Gauge(self.prefix + name, help, labelnames))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_TU,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        """Get-or-create a fixed-bucket histogram."""
        metric = self._register(
            Histogram(self.prefix + name, help, buckets, labelnames)
        )
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric named ``prefix+name``, or None."""
        return self._metrics.get(self.prefix + name)

    def __len__(self) -> int:
        return len(self._metrics)

    def expose(self) -> str:
        """Prometheus text exposition (one HELP/TYPE block per family)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Write the exposition snapshot to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.expose())


# -- adapters over the desim monitors -------------------------------------

def absorb_monitor(
    registry: MetricsRegistry, monitor: Monitor, name: str, help: str = ""
) -> None:
    """Summarise a :class:`Monitor` into gauges (count/mean/percentiles)."""
    summary = monitor.summary()
    gauge = registry.gauge(name, help or f"summary of monitor {monitor.name!r}",
                           labelnames=("stat",))
    for stat, value in summary.items():
        gauge.set(value, stat=stat)


def absorb_time_weighted(
    registry: MetricsRegistry,
    monitor: TimeWeightedMonitor,
    name: str,
    now: float,
    help: str = "",
) -> None:
    """Absorb a :class:`TimeWeightedMonitor`: level, peak, mean, integral."""
    gauge = registry.gauge(
        name, help or f"time-weighted series {monitor.name!r}", labelnames=("stat",)
    )
    gauge.set(monitor.level, stat="level")
    gauge.set(monitor.peak, stat="peak")
    gauge.set(monitor.time_average(now), stat="time_average")
    gauge.set(monitor.integral(now), stat="integral")


def absorb_counter_monitor(
    registry: MetricsRegistry, monitor: CounterMonitor, name: str, help: str = ""
) -> None:
    """Absorb a :class:`CounterMonitor` as one labelled counter family."""
    counter = registry.counter(
        name, help or "event counters", labelnames=("event",)
    )
    for key, value in monitor.as_dict().items():
        already = counter.value(event=key)
        if value > already:
            counter.inc(value - already, event=key)
