"""TelemetryHub: the single handle the platform threads everywhere.

One hub owns at most one of each instrument -- span tracer, metrics
registry, decision audit log, simulation profiler -- as configured by
:class:`~repro.core.config.TelemetryConfig`.  The determinism contract is
structural: :meth:`TelemetryHub.from_config` returns ``None`` when
telemetry is disabled, and every integration point guards with
``if hub is not None`` (usually caching ``hub.tracer`` etc. as a local),
so a disabled run executes exactly the code it executed before this
subsystem existed.  Enabled instruments only *read* the simulation --
no RNG draws, no scheduled events -- so sim-time results never change.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import TelemetryConfig
from repro.desim.engine import Environment
from repro.telemetry.audit import DecisionAuditLog
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import SimulationProfiler
from repro.telemetry.tracing import SpanTracer

__all__ = ["TelemetryHub"]


class TelemetryHub:
    """Owns the per-run telemetry instruments selected by the config."""

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        if config is None:
            config = TelemetryConfig(enabled=True)
        self.config = config
        self.tracer: Optional[SpanTracer] = (
            SpanTracer(max_events=config.max_trace_events) if config.trace else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.metrics else None
        )
        self.audit: Optional[DecisionAuditLog] = (
            DecisionAuditLog() if config.audit else None
        )
        self.profiler: Optional[SimulationProfiler] = (
            SimulationProfiler(sample_every=config.step_sample_every)
            if config.profile
            else None
        )

    @staticmethod
    def from_config(config: Optional[TelemetryConfig]) -> Optional["TelemetryHub"]:
        """The no-op fast path: ``None`` unless telemetry is enabled."""
        if config is None or not config.enabled:
            return None
        return TelemetryHub(config)

    def bind(self, env: Environment) -> None:
        """Point the instruments at a live environment (each run)."""
        if self.tracer is not None:
            self.tracer.bind_clock(lambda: env.now)
        if self.profiler is not None:
            self.profiler.install(env, self.tracer)
