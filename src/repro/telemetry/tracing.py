"""Span tracing with Chrome trace-event export.

The tracer records *spans* -- named, categorised intervals with free-form
attributes -- against two clocks at once:

- **sim time** (the session's ``Environment.now``), which becomes the
  span's position and extent on the exported timeline; and
- **wall time** (``time.perf_counter``), which feeds the profiler's
  per-module time-share accounting.

Spans never touch the simulation: they draw no random numbers, schedule
no events and only *read* the clock, so a traced run's simulated results
are identical to an untraced one.

The export format is the Chrome trace-event JSON array ("X" complete
events plus "M" metadata, "i" instants and "C" counters), which loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
One "thread" lane is assigned per worker / stage queue / control track so
the scheduler's parallelism is visible as stacked lanes.

Sim time is exported at 1 TU = 1 second (10^6 trace microseconds), so a
600 TU session reads as a 10-minute timeline.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Optional

__all__ = [
    "Span",
    "SpanTracer",
    "LANE_CONTROL",
    "lane_for_stage",
    "lane_for_worker",
    "TU_TO_US",
]

#: Trace microseconds per simulated TU (1 TU renders as 1 second).
TU_TO_US = 1_000_000.0

#: Lane (tid) of engine/session-level control spans.
LANE_CONTROL = 0


def lane_for_stage(stage: int) -> int:
    """The lane carrying stage *stage*'s queue activity."""
    return 100 + stage


def lane_for_worker(uid: int) -> int:
    """The lane carrying worker *uid*'s boot and task executions."""
    return 1000 + uid


class Span:
    """One open interval; closed by the tracer's context manager."""

    __slots__ = ("name", "cat", "lane", "args", "sync", "t0", "wall0")

    def __init__(
        self,
        name: str,
        cat: str,
        lane: int,
        args: Optional[dict[str, Any]],
        sync: bool,
        t0: float,
        wall0: float,
    ) -> None:
        self.name = name
        self.cat = cat
        self.lane = lane
        self.args = args
        self.sync = sync
        self.t0 = t0
        self.wall0 = wall0


class _SpanContext:
    """Context manager returned by :meth:`SpanTracer.span`.

    Works across ``yield`` inside simulation processes: the span stays
    open while the process is suspended and closes (even on Interrupt)
    when the ``with`` block unwinds.
    """

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span, error=exc is not None)


class SpanTracer:
    """Records spans/instants/counters; exports Chrome trace-event JSON.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *simulated* time.
        Rebindable via :meth:`bind_clock` once the environment exists.
    wall:
        Wall-clock source (default ``time.perf_counter``).
    max_events:
        Hard cap on retained events; past it new events are counted in
        ``dropped`` instead of stored, so a runaway trace cannot exhaust
        memory.  Wall-time accounting keeps running either way.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        wall: Callable[[], float] = time.perf_counter,
        max_events: int = 1_000_000,
    ) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._wall = wall
        self.max_events = max_events
        self._events: list[dict[str, Any]] = []
        self._lane_names: dict[int, str] = {}
        #: Wall seconds accumulated per category, synchronous spans only.
        self.wall_by_category: dict[str, float] = {}
        #: Span/instant counts per category (kept even past max_events).
        self.count_by_category: dict[str, int] = {}
        self.dropped = 0

    # -- clock ------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a live simulation clock (``env.now``)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # -- lanes ------------------------------------------------------------
    def lane(self, tid: int, label: str) -> int:
        """Name a lane (idempotent); emitted as thread_name metadata."""
        if tid not in self._lane_names:
            self._lane_names[tid] = label
        return tid

    # -- recording --------------------------------------------------------
    def span(
        self,
        name: str,
        cat: str,
        lane: int = LANE_CONTROL,
        args: Optional[dict[str, Any]] = None,
        sync: bool = True,
    ) -> _SpanContext:
        """Open a span closed by the returned context manager.

        ``sync=True`` (the default) marks a span whose body runs without
        suspending -- its wall time is attributed to the category's module
        share.  Spans that stretch across simulated time (task executions,
        VM boots, the whole run) must pass ``sync=False``: their wall
        clock mostly measures *other* components running while they sleep.
        """
        return _SpanContext(
            self, Span(name, cat, lane, args, sync, self._clock(), self._wall())
        )

    def _close(self, span: Span, error: bool = False) -> None:
        t1 = self._clock()
        wall_dur = self._wall() - span.wall0
        if span.sync:
            self.wall_by_category[span.cat] = (
                self.wall_by_category.get(span.cat, 0.0) + wall_dur
            )
        self.count_by_category[span.cat] = (
            self.count_by_category.get(span.cat, 0) + 1
        )
        args = dict(span.args) if span.args else {}
        args["wall_us"] = round(wall_dur * 1e6, 3)
        if error:
            args["error"] = True
        self._push(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.t0 * TU_TO_US,
                "dur": max(t1 - span.t0, 0.0) * TU_TO_US,
                "pid": 1,
                "tid": span.lane,
                "args": args,
            }
        )

    def instant(
        self,
        name: str,
        cat: str,
        lane: int = LANE_CONTROL,
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """A zero-duration marker (scheduler decisions, faults, ...)."""
        self.count_by_category[cat] = self.count_by_category.get(cat, 0) + 1
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": self._clock() * TU_TO_US,
                "pid": 1,
                "tid": lane,
                "s": "t",
                "args": dict(args) if args else {},
            }
        )

    def counter(
        self, name: str, cat: str, values: dict[str, float], lane: int = LANE_CONTROL
    ) -> None:
        """A counter sample; Perfetto renders these as value tracks."""
        self._push(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": self._clock() * TU_TO_US,
                "pid": 1,
                "tid": lane,
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    def _push(self, event: dict[str, Any]) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    # -- export -----------------------------------------------------------
    @property
    def n_events(self) -> int:
        return len(self._events)

    def categories(self) -> set[str]:
        """Categories recorded so far."""
        return set(self.count_by_category)

    def to_chrome_trace(self) -> dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object."""
        meta: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "scan-sim"},
            }
        ]
        for tid in sorted(self._lane_names):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": self._lane_names[tid]},
                }
            )
            # sort_index keeps lanes in control/queue/worker order.
            meta.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        return {
            "traceEvents": meta + self._events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tu_to_us": TU_TO_US,
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: str) -> None:
        """Serialise the trace to *path* as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh)
