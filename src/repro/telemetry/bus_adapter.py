"""Telemetry adapters over the simulation event bus.

Scheduler-side metric counters, the scaling-decision audit log and the
decision trace instants used to be inline scheduler code behind
``if self._metrics is not None`` guards.  They are now ordinary
:class:`~repro.core.bus.EventBus` subscribers wired up at assembly time:
the scheduler publishes typed events, these adapters translate them into
the telemetry instruments.  Subscribers are passive -- they never draw
RNG or schedule engine events -- so attaching them leaves simulated
results bit-identical (the telemetry determinism contract, unchanged).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bus import (
    EventBus,
    JobCompleted,
    ScalingDecisionMade,
    TaskFinished,
    TaskStarted,
    WorkerHired,
)
from repro.telemetry.audit import ScalingDecisionRecord, decision_label

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.telemetry.audit import DecisionAuditLog
    from repro.telemetry.hub import TelemetryHub
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.tracing import SpanTracer

__all__ = [
    "attach_hub",
    "attach_metrics_adapter",
    "attach_audit_adapter",
    "attach_decision_trace_adapter",
]


def attach_hub(bus: EventBus, hub: "TelemetryHub") -> None:
    """Subscribe every instrument the hub carries to *bus*."""
    if hub.metrics is not None:
        attach_metrics_adapter(bus, hub.metrics)
    if hub.audit is not None:
        attach_audit_adapter(bus, hub.audit)
    if hub.tracer is not None:
        attach_decision_trace_adapter(bus, hub.tracer)


def attach_metrics_adapter(bus: EventBus, registry: "MetricsRegistry") -> None:
    """Scheduler metric instruments, fed from bus events.

    Creates the same instruments (names, labels, buckets) the scheduler
    used to own, so exposition output is unchanged.
    """
    decisions = registry.counter(
        "scheduler_scaling_decisions_total",
        "hire-or-wait outcomes from the horizontal-scaling policy",
        labelnames=("decision",),
    )
    hires = registry.counter(
        "scheduler_hires_total",
        "workers hired, by cloud tier",
        labelnames=("tier",),
    )
    tasks = registry.counter(
        "scheduler_task_outcomes_total",
        "stage-task executions by outcome",
        labelnames=("outcome",),
    )
    stage_wait = registry.histogram(
        "scheduler_stage_wait_tu",
        "queue wait of dispatched stage tasks (TU)",
        buckets=(0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0),
    )
    job_latency = registry.histogram(
        "scheduler_job_latency_tu",
        "end-to-end latency of completed pipeline runs (TU)",
    )

    bus.subscribe(
        ScalingDecisionMade,
        lambda e: decisions.inc(decision=decision_label(e.decision)),
    )
    bus.subscribe(WorkerHired, lambda e: hires.inc(tier=e.tier))
    bus.subscribe(TaskFinished, lambda e: tasks.inc(outcome=e.outcome))

    def on_started(event: TaskStarted) -> None:
        # Speculative duplicates would double-count the queue-wait signal.
        if not event.speculative:
            stage_wait.observe(event.wait)

    bus.subscribe(TaskStarted, on_started)
    bus.subscribe(JobCompleted, lambda e: job_latency.observe(e.latency))


def attach_audit_adapter(bus: EventBus, audit: "DecisionAuditLog") -> None:
    """Record every published hire-or-wait choice in the audit log."""

    def on_decision(event: ScalingDecisionMade) -> None:
        audit.add(
            ScalingDecisionRecord(
                time=event.time,
                stage=event.stage,
                task_uid=event.task_uid,
                job_uid=event.job_uid,
                decision=decision_label(event.decision),
                explanation=event.decision.explanation,
            )
        )

    bus.subscribe(ScalingDecisionMade, on_decision)


def attach_decision_trace_adapter(bus: EventBus, tracer: "SpanTracer") -> None:
    """Decision instants and job-completion instants on the trace."""
    from repro.telemetry.tracing import lane_for_stage

    def on_decision(event: ScalingDecisionMade) -> None:
        label = decision_label(event.decision)
        args: dict = {"job": event.job, "decision": label}
        explanation = event.decision.explanation
        if explanation is not None and explanation.premium is not None:
            args["delay_cost"] = explanation.delay_cost
            args["premium"] = explanation.premium
            args["wait"] = explanation.wait
        tracer.instant(
            f"decision.{label}",
            "scheduler",
            lane=lane_for_stage(event.stage),
            args=args,
        )

    bus.subscribe(ScalingDecisionMade, on_decision)

    def on_completed(event: JobCompleted) -> None:
        tracer.instant(
            "job.completed",
            "scheduler",
            args={
                "job": event.job,
                "latency": event.latency,
                "reward": event.reward,
            },
        )

    bus.subscribe(JobCompleted, on_completed)
