"""repro.telemetry: tracing, metrics, decision audit and profiling.

The observability layer for the SCAN reproduction.  Everything here is
*passive*: instruments read the simulation's clocks and state but draw no
random numbers and schedule no events, so enabling telemetry never
changes simulated results, and disabling it (the default --
``TelemetryHub.from_config`` returns ``None``) leaves the platform
running the exact pre-telemetry code paths.

Parts
-----
- :mod:`~repro.telemetry.tracing` -- sim-time + wall-time spans with
  Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).
- :mod:`~repro.telemetry.metrics` -- counters/gauges/histograms with a
  Prometheus-style text exposition and adapters over the desim monitors.
- :mod:`~repro.telemetry.audit` -- every scheduler hire-or-wait decision
  with its Eq. 1 delay-cost inputs, replayable offline.
- :mod:`~repro.telemetry.profiler` -- events/sec, heap depth and
  per-module wall-time shares (``BENCH_telemetry.json``).
- :mod:`~repro.telemetry.hub` -- the :class:`TelemetryHub` handle that
  the session/platform threads through every component.
"""

from repro.telemetry.audit import (
    DecisionAuditLog,
    ScalingDecisionRecord,
    decision_label,
    replay_decision,
)
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    absorb_counter_monitor,
    absorb_monitor,
    absorb_time_weighted,
)
from repro.telemetry.profiler import EngineProbe, SimulationProfiler
from repro.telemetry.tracing import (
    LANE_CONTROL,
    Span,
    SpanTracer,
    TU_TO_US,
    lane_for_stage,
    lane_for_worker,
)

__all__ = [
    "Counter",
    "DecisionAuditLog",
    "EngineProbe",
    "Gauge",
    "Histogram",
    "LANE_CONTROL",
    "MetricsRegistry",
    "ScalingDecisionRecord",
    "SimulationProfiler",
    "Span",
    "SpanTracer",
    "TU_TO_US",
    "TelemetryHub",
    "absorb_counter_monitor",
    "absorb_monitor",
    "absorb_time_weighted",
    "decision_label",
    "lane_for_stage",
    "lane_for_worker",
    "replay_decision",
]
