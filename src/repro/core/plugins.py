"""Plugin registries: the pluggable half of the control plane.

Every named, swappable component family in the platform -- allocation
policies, scaling policies, reward functions, record sharders, application
models, config presets -- is constructed through a string-keyed
:class:`Registry`.  The enum ``if/elif`` factories of earlier revisions are
now thin ``registry.create(name, ...)`` lookups, which means:

- adding a policy is *registration*, not *editing the assembly core*: a new
  backend registers itself under a name and every construction site (CLI,
  session builder, workflow engine, platform facade) picks it up;
- out-of-tree code can register policies without touching this package at
  all -- see :func:`load_plugins`;
- unknown names fail uniformly with :class:`ConfigurationError` listing
  what *is* registered, instead of a per-factory ad-hoc exception.

The registries themselves live next to the component family that owns them
(``repro.scheduler.allocation.ALLOCATION_POLICIES`` and so on); this module
provides the generic machinery plus the global registry-of-registries that
``scan-sim policies`` and :func:`load_plugins` operate on.
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Callable, Dict, Generic, Iterator, Optional, TypeVar

from repro.core.errors import ConfigurationError

__all__ = [
    "Registry",
    "all_registries",
    "get_registry",
    "load_plugins",
    "PLUGIN_ENV_VAR",
    "PLUGIN_GROUP",
]

T = TypeVar("T")

#: Environment variable naming plugin modules to import (``:``- or
#: ``,``-separated), e.g. ``SCAN_SIM_PLUGINS=mylab.policies:mylab.apps``.
PLUGIN_ENV_VAR = "SCAN_SIM_PLUGINS"

#: Entry-point group scanned by :func:`load_plugins` when the running
#: distribution metadata declares one.
PLUGIN_GROUP = "scan_sim.plugins"

#: Global registry-of-registries, keyed by kind (``"allocation"``,
#: ``"scaling"``, ...).  Populated as each component module imports.
_REGISTRIES: "Dict[str, Registry[Any]]" = {}


class Registry(Generic[T]):
    """A string-keyed factory registry for one component family.

    Entries are factories: callables invoked by :meth:`create` with
    whatever arguments the construction site passes through.  Classes
    register naturally (the class *is* its factory); so do plain
    functions and lambdas.
    """

    def __init__(self, kind: str) -> None:
        if not kind:
            raise ValueError("registry kind must be non-empty")
        self.kind = kind
        self._factories: Dict[str, Callable[..., T]] = {}
        if kind in _REGISTRIES:
            raise ValueError(f"registry kind {kind!r} already exists")
        _REGISTRIES[kind] = self

    # -- registration ------------------------------------------------------
    def register(
        self, name: str, factory: Optional[Callable[..., T]] = None
    ) -> Callable[..., T]:
        """Register *factory* under *name*; usable as a decorator.

        Re-registration replaces (last writer wins), so plugins may
        deliberately override a built-in by reusing its name.
        """
        if not name:
            raise ConfigurationError(
                f"{self.kind} registry: name must be non-empty"
            )
        if factory is None:

            def decorator(obj: Callable[..., T]) -> Callable[..., T]:
                self._factories[name] = obj
                return obj

            return decorator
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove *name*; unknown names raise :class:`ConfigurationError`."""
        if name not in self._factories:
            raise self._unknown(name)
        del self._factories[name]

    # -- lookup ------------------------------------------------------------
    def get(self, name: str) -> Callable[..., T]:
        """The factory registered under *name* (no instantiation)."""
        key = self._key(name)
        try:
            return self._factories[key]
        except KeyError:
            raise self._unknown(key) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> T:
        """Instantiate the component registered under *name*."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return self._key(name) in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"

    @staticmethod
    def _key(name: Any) -> str:
        # str-valued enums (AllocationAlgorithm etc.) key by their value,
        # so construction sites can pass either the enum or the raw name.
        value = getattr(name, "value", name)
        return value if isinstance(value, str) else str(value)

    def _unknown(self, name: str) -> ConfigurationError:
        known = ", ".join(self.names()) or "(none)"
        return ConfigurationError(
            f"unknown {self.kind} {name!r}; registered: {known}"
        )


def all_registries() -> Dict[str, "Registry[Any]"]:
    """Every live registry, keyed by kind (import side effects included).

    Importing :mod:`repro.scheduler` / :mod:`repro.broker` / :mod:`repro.apps`
    is what populates the built-in entries, so force those imports here --
    ``scan-sim policies`` must list the full picture regardless of what the
    caller already imported.
    """
    for module in (
        "repro.scheduler.allocation",
        "repro.scheduler.scaling",
        "repro.scheduler.rewards",
        "repro.cloud.tiers",
        "repro.broker.sharders",
        "repro.apps.registry",
        "repro.core.presets",
        "repro.knowledge.plane",
        "repro.service.queue",
        "repro.service.store",
        "repro.sim.results",
        "repro.workload.arrivals",
        "repro.workflows.library",
    ):
        importlib.import_module(module)
    return dict(sorted(_REGISTRIES.items()))


def get_registry(kind: str) -> "Registry[Any]":
    """The registry for *kind*; unknown kinds raise ConfigurationError."""
    registries = all_registries()
    try:
        return registries[kind]
    except KeyError:
        known = ", ".join(registries) or "(none)"
        raise ConfigurationError(
            f"unknown registry kind {kind!r}; registered: {known}"
        ) from None


def load_plugins(modules: Optional[list[str]] = None) -> list[str]:
    """Import out-of-tree plugin modules so their registrations run.

    Sources, in order:

    1. *modules* given explicitly by the caller;
    2. the :data:`PLUGIN_ENV_VAR` environment variable (``:``/``,``-separated
       module paths);
    3. installed-distribution entry points in the :data:`PLUGIN_GROUP`
       group, when importlib metadata is available.

    A plugin module registers its components at import time with the
    ``@REGISTRY.register("name")`` decorator -- exactly how the built-ins
    do it.  Returns the list of module/entry-point names loaded; a module
    that fails to import raises :class:`ConfigurationError` naming it.
    """
    loaded: list[str] = []
    wanted = list(modules) if modules else []
    env = os.environ.get(PLUGIN_ENV_VAR, "")
    for chunk in env.replace(",", ":").split(":"):
        if chunk.strip():
            wanted.append(chunk.strip())
    for module in wanted:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            raise ConfigurationError(
                f"cannot import plugin module {module!r}: {exc}"
            ) from exc
        loaded.append(module)
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8 fallback, never hit
        return loaded
    try:
        eps = entry_points(group=PLUGIN_GROUP)
    except TypeError:  # pragma: no cover - legacy (<3.10) signature
        eps = entry_points().get(PLUGIN_GROUP, ())  # type: ignore[call-arg]
    for ep in eps:
        try:
            ep.load()
        except Exception as exc:  # noqa: BLE001 - surface as config error
            raise ConfigurationError(
                f"plugin entry point {ep.name!r} failed to load: {exc}"
            ) from exc
        loaded.append(f"entry-point:{ep.name}")
    return loaded
