"""Named deployment presets: whole-platform configs behind one string.

A preset is a registered factory returning a validated
:class:`~repro.core.config.PlatformConfig`; ``scan-sim run --preset NAME``
runs it, ``scan-sim config-dump NAME`` prints its resolved JSON, and
``scan-sim run --config dump.json`` reproduces the preset run
byte-for-byte (the round-trip CI smoke job checks exactly that).

Out-of-tree presets register like any other plugin::

    from repro.core.presets import PRESETS

    @PRESETS.register("mylab")
    def _mylab():
        return PlatformConfig.paper_defaults().with_overrides(...)
"""

from __future__ import annotations

from repro.core.config import (
    PlatformConfig,
    RewardScheme,
    TierConfig,
)
from repro.core.plugins import Registry

__all__ = ["PRESETS", "make_preset", "preset_names"]

#: Plugin registry of deployment presets (``() -> PlatformConfig``).
PRESETS: "Registry[PlatformConfig]" = Registry("preset")


@PRESETS.register("paper")
def _paper() -> PlatformConfig:
    """Table III exactly: the paper's fixed evaluation configuration."""
    return PlatformConfig.paper_defaults()


@PRESETS.register("smoke")
def _smoke() -> PlatformConfig:
    """A fast deterministic session for CI smoke tests (120 TU, 2 reps)."""
    return PlatformConfig.paper_defaults().with_overrides(
        simulation={"duration": 120.0, "repetitions": 2},
    )


@PRESETS.register("busy")
def _busy() -> PlatformConfig:
    """The paper's 'very busy system' end of Table I (interval 2.0)."""
    return PlatformConfig.paper_defaults().with_overrides(
        workload={"mean_interarrival": 2.0},
    )


@PRESETS.register("throughput")
def _throughput() -> PlatformConfig:
    """Throughput-oriented reward scheme (Section II-D, second family)."""
    return PlatformConfig.paper_defaults().with_overrides(
        reward={"scheme": RewardScheme.THROUGHPUT},
    )


@PRESETS.register("chaos")
def _chaos() -> PlatformConfig:
    """Fault injection on, bounded retries: the resilience showcase."""
    return PlatformConfig.paper_defaults().with_overrides(
        faults={
            "mtbf_tu": 40.0,
            "p_boot_fail": 0.05,
            "p_deploy_fail": 0.05,
            "p_straggler": 0.1,
            "p_corrupt": 0.02,
        },
        resilience={"max_attempts": 3},
    )


@PRESETS.register("drift")
def _drift() -> PlatformConfig:
    """Mis-specified profiles: the platform plans with 2x-pessimistic
    stage coefficients (ground truth runs at half the profiled time).

    Under the throughput reward the marginal value of saved time is
    ``d * Rscale / ETT^2``, so over-estimated ETTs make the static
    provider under-value threads and leave easy speedups on the table.
    The adaptive provider refits a/b from completed-stage observations
    and recovers the lost profit -- the knowledge plane's showcase
    experiment (EXPERIMENTS.md, model-drift row).
    """
    return PlatformConfig.paper_defaults().with_overrides(
        knowledge={"model_drift": 0.5},
        reward={"scheme": RewardScheme.THROUGHPUT},
        simulation={"duration": 2000.0, "repetitions": 3},
    )


@PRESETS.register("overnight")
def _overnight() -> PlatformConfig:
    """Long resumable sweeps: every repetition streamed to a durable
    JSONL ledger (fsync per record), so a full-grid overnight run that
    dies at 3am resumes from its last completed repetition with
    ``scan-sim sweep --preset overnight --resume``.
    """
    return PlatformConfig.paper_defaults().with_overrides(
        results={"store": "sweep_results.jsonl", "fsync": True},
    )


@PRESETS.register("fanout")
def _fanout() -> PlatformConfig:
    """The STAR fan-out DAG (align -> {germline, somatic} -> integrate)
    run natively by the scheduler: jobs carry the compiled workflow,
    branch steps queue independently after alignment, and the estimator
    prices remaining work by critical path instead of stage sum.  Short
    duration: this is the DAG plumbing's CI-runnable showcase.
    """
    return PlatformConfig.paper_defaults().with_overrides(
        workflow="star_fanout",
        simulation={"duration": 120.0, "repetitions": 2},
    )


@PRESETS.register("serverless_burst")
def _serverless_burst() -> PlatformConfig:
    """A three-tier stack with a FaaS burst tier (Arjona et al. style).

    Reserved metal takes the base load; a serverless tier absorbs bursts
    at a discount over on-demand but pays per-invocation charges, a
    cold start, and hard per-allocation caps (16 cores, 30 TU) -- tasks
    that exceed the caps are rejected at placement and overflow to
    on-demand.  Short duration: the multi-tier CI-runnable showcase.
    """
    return PlatformConfig.paper_defaults().with_overrides(
        cloud={
            "tiers": (
                TierConfig(
                    name="private", backend="reserved",
                    capacity_cores=624, core_cost_per_tu=5.0,
                ),
                TierConfig(
                    name="faas", backend="serverless",
                    capacity_cores=1_000_000, core_cost_per_tu=35.0,
                    invocation_cost=2.0, cold_start_tu=0.25,
                    max_cores_per_allocation=16, max_duration_tu=30.0,
                ),
                TierConfig(
                    name="public", backend="on_demand",
                    capacity_cores=1_000_000, core_cost_per_tu=50.0,
                ),
            ),
        },
        simulation={"duration": 120.0, "repetitions": 2},
    )


@PRESETS.register("spot_saver")
def _spot_saver() -> PlatformConfig:
    """A three-tier stack with a deeply discounted preemptible tier.

    The spot tier undercuts on-demand 5x but is reclaimed with
    price-correlated intensity (MTBF 60 TU at the on-demand reference
    price, so ~12 TU at the 10 CU discount); evicted tasks ride the
    ordinary retry path (bounded attempts), with on-demand as the
    fallback when spot capacity is exhausted.
    """
    return PlatformConfig.paper_defaults().with_overrides(
        cloud={
            "tiers": (
                TierConfig(
                    name="private", backend="reserved",
                    capacity_cores=624, core_cost_per_tu=5.0,
                ),
                TierConfig(
                    name="spot", backend="spot",
                    capacity_cores=2048, core_cost_per_tu=10.0,
                    eviction_mtbf_tu=60.0, reference_cost_per_tu=50.0,
                ),
                TierConfig(
                    name="public", backend="on_demand",
                    capacity_cores=1_000_000, core_cost_per_tu=50.0,
                ),
            ),
        },
        resilience={"max_attempts": 5},
        simulation={"duration": 120.0, "repetitions": 2},
    )


@PRESETS.register("observed")
def _observed() -> PlatformConfig:
    """Telemetry fully on (tracing + metrics + audit); same sim results."""
    return PlatformConfig.paper_defaults().with_overrides(
        telemetry={"enabled": True},
    )


def make_preset(name: str) -> PlatformConfig:
    """The validated config of preset *name*.

    Unknown names raise :class:`~repro.core.errors.ConfigurationError`
    listing the registered presets.
    """
    return PRESETS.create(name).validate()


def preset_names() -> list[str]:
    """Registered preset names, sorted."""
    return PRESETS.names()
