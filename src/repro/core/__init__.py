"""SCAN platform core: configuration, events, errors and the facade.

:class:`~repro.core.platform.SCANPlatform` wires the Data Broker, Scheduler,
Workers, knowledge base and the simulated cloud into the integrated platform
of the paper's Figure 2.
"""

from repro.core.config import (
    PlatformConfig,
    SimulationConfig,
    RewardConfig,
    CloudConfig,
    WorkloadConfig,
    SchedulerConfig,
    BrokerConfig,
    FaultConfig,
    ResilienceConfig,
    RewardScheme,
    AllocationAlgorithm,
    ScalingAlgorithm,
)
from repro.core.errors import (
    SCANError,
    ConfigurationError,
    SchedulingError,
    BrokerError,
    KnowledgeBaseError,
    TransientDeployError,
)
from repro.core.events import PlatformEvent, EventKind, EventLog

__all__ = [
    "PlatformConfig",
    "SimulationConfig",
    "RewardConfig",
    "CloudConfig",
    "WorkloadConfig",
    "SchedulerConfig",
    "BrokerConfig",
    "FaultConfig",
    "ResilienceConfig",
    "RewardScheme",
    "AllocationAlgorithm",
    "ScalingAlgorithm",
    "SCANError",
    "ConfigurationError",
    "SchedulingError",
    "BrokerError",
    "KnowledgeBaseError",
    "TransientDeployError",
    "PlatformEvent",
    "EventKind",
    "EventLog",
]
