"""Typed simulation event bus: deterministic synchronous pub/sub.

Cross-cutting observers (telemetry adapters, fault bookkeeping, live
monitors, dead-letter accounting) used to be threaded through constructor
chains as bespoke hooks.  They are now subscribers on an :class:`EventBus`
carrying the dataclass events below; the scheduler and pools *publish*,
and whoever cares *subscribes* -- assembly code decides the wiring.

Determinism contract:

- delivery is synchronous and in subscription order -- no queues, no
  threads, no reordering, so a run's observable behaviour is a pure
  function of its seed regardless of how many observers are attached;
- subscribers must be passive with respect to the simulation: they may
  record, count and export, but never draw from the simulation's RNG
  streams or schedule engine events (the telemetry rules, generalised);
- the no-subscriber fast path is hard: ``publish`` on an event type with
  no handlers is a dict probe and an early return, and publishers guard
  event *construction* behind ``type in bus`` so a run with no observers
  allocates nothing.  Disabled runs are therefore bit-identical to builds
  without the bus at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Type

__all__ = [
    "BusEvent",
    "TaskQueued",
    "TaskStarted",
    "TaskFinished",
    "StageCompleted",
    "TaskRetryScheduled",
    "TaskDeadLettered",
    "JobCompleted",
    "JobFailed",
    "ServiceJobAccepted",
    "ServiceJobRejected",
    "ServiceJobPopped",
    "ServiceJobFinished",
    "WorkerHired",
    "WorkerRepooled",
    "WorkerFailed",
    "WorkerEvicted",
    "DeployFailed",
    "PlacementRejected",
    "ScalingDecisionMade",
    "FaultInjected",
    "EventBus",
    "EventCounter",
    "EventRecorder",
]


@dataclass(frozen=True)
class BusEvent:
    """Base class: every bus event is stamped with simulation time."""

    time: float


# -- task lifecycle ---------------------------------------------------------
@dataclass(frozen=True)
class TaskQueued(BusEvent):
    """A stage task entered its queue (first attempt or retry)."""

    job: str
    stage: int
    attempt: int
    speculative: bool


@dataclass(frozen=True)
class TaskStarted(BusEvent):
    """A stage task began executing on a worker."""

    job: str
    stage: int
    threads: int
    worker: int
    tier: str
    wait: float
    attempt: int
    speculative: bool
    straggled: bool


@dataclass(frozen=True)
class TaskFinished(BusEvent):
    """An execution attempt ended; ``outcome`` says how.

    Outcomes: ``completed``, ``vm_failure``, ``corrupted``,
    ``speculative_loss``.
    """

    job: str
    stage: int
    outcome: str
    worker: int
    tier: str


@dataclass(frozen=True)
class StageCompleted(BusEvent):
    """A stage execution attempt completed successfully.

    This is the knowledge plane's feedback signal: it carries the realised
    duration alongside the stage-model axes (input GB, threads), so online
    refitters and learning policies can fold the observation back into
    their models.  ``input_gb`` is the job's stage-model input size (the
    x-axis of the Eq. 2 linear fits), not the reward-unit job size.
    """

    job: str
    app: str
    stage: int
    input_gb: float
    threads: int
    duration: float
    #: The job object itself (learning subscribers read per-job state).
    job_obj: Any = field(compare=False, default=None)
    #: Tier the attempt ran on ("" when the publisher predates tiers);
    #: lets per-tier learners scope their coefficient fits.
    tier: str = ""


@dataclass(frozen=True)
class TaskRetryScheduled(BusEvent):
    """A failed attempt will re-enter its queue after backoff."""

    job: str
    stage: int
    attempt: int
    delay: float
    reason: str


@dataclass(frozen=True)
class TaskDeadLettered(BusEvent):
    """A task exhausted its retry budget; carries the task for quarantine."""

    job: str
    stage: int
    attempts: int
    reason: str
    #: The quarantined task object itself (dead-letter subscribers keep it).
    task: Any = field(compare=False)


# -- job lifecycle ----------------------------------------------------------
@dataclass(frozen=True)
class JobCompleted(BusEvent):
    """A pipeline run finished all stages and was paid its reward."""

    job: str
    latency: float
    reward: float
    size: float


@dataclass(frozen=True)
class JobFailed(BusEvent):
    """A pipeline run was abandoned (dead-lettered stage)."""

    job: str
    stage: int
    reason: str


# -- service plane (multi-tenant front door) --------------------------------
@dataclass(frozen=True)
class ServiceJobAccepted(BusEvent):
    """Admission control accepted a tenant's job into its queue."""

    tenant: str
    uid: str
    size_gb: float
    depth: int


@dataclass(frozen=True)
class ServiceJobRejected(BusEvent):
    """Admission control bounced (or shed) a tenant's job.

    Reasons: ``queue_full``, ``shed``, ``duplicate``, ``tenant_suspended``.
    """

    tenant: str
    uid: str
    reason: str


@dataclass(frozen=True)
class ServiceJobPopped(BusEvent):
    """A worker/pump leased the best-priority job off a tenant's queue."""

    tenant: str
    uid: str
    wait_s: float


@dataclass(frozen=True)
class ServiceJobFinished(BusEvent):
    """A leased job resolved (``completed`` / ``failed`` / ``requeued``)."""

    tenant: str
    uid: str
    outcome: str


# -- worker / cloud state ---------------------------------------------------
@dataclass(frozen=True)
class WorkerHired(BusEvent):
    """A fresh worker was deployed for a stage."""

    tier: str
    cores: int
    stage: int


@dataclass(frozen=True)
class WorkerRepooled(BusEvent):
    """An idle worker was resized to serve a different shape."""

    worker: int
    cores: int
    stage: int


@dataclass(frozen=True)
class WorkerFailed(BusEvent):
    """A busy worker's VM died under its task."""

    worker: int
    tier: str
    cores: int


@dataclass(frozen=True)
class WorkerEvicted(BusEvent):
    """A spot-tier worker was reclaimed by the provider mid-lease.

    Distinct from :class:`WorkerFailed` (a crash): evictions are a
    price-correlated fault stream, and observers tracking spot viability
    need to tell reclaim pressure apart from hardware failure.  The
    victim's task flows through the same retry/dead-letter machinery.
    """

    worker: int
    tier: str
    cores: int


@dataclass(frozen=True)
class DeployFailed(BusEvent):
    """A CELAR deploy request bounced transiently."""

    tier: str
    cores: int
    stage: int
    breaker_opened: bool


@dataclass(frozen=True)
class PlacementRejected(BusEvent):
    """A tier refused an allocation request.

    ``reason`` is ``capacity`` (not enough free cores) or a backend cap
    (``max_cores_per_allocation`` / ``max_duration_tu`` for serverless).
    """

    tier: str
    cores: int
    reason: str


# -- decisions and faults ---------------------------------------------------
@dataclass(frozen=True)
class ScalingDecisionMade(BusEvent):
    """One hire-or-wait choice.

    ``decision`` is the :class:`~repro.scheduler.scaling.ScalingDecision`
    itself (carrying its Eq. 1 explanation when one was captured);
    subscribers derive labels/records from it.
    """

    stage: int
    task_uid: int
    job_uid: int
    job: str
    decision: Any = field(compare=False)


@dataclass(frozen=True)
class FaultInjected(BusEvent):
    """The chaos layer perturbed an execution (straggler, corruption)."""

    kind: str
    job: str
    stage: int
    detail: float = 0.0


Handler = Callable[[Any], None]


class EventBus:
    """Synchronous, deterministic pub/sub over the dataclasses above.

    Handlers subscribe per event *type* (exact type, no subclass
    dispatch -- publishing is a single dict probe).  Publication order is
    event order; delivery order is subscription order.
    """

    __slots__ = ("_handlers",)

    def __init__(self) -> None:
        self._handlers: Dict[Type[Any], List[Handler]] = {}

    def subscribe(self, event_type: Type[Any], handler: Handler) -> Handler:
        """Invoke *handler* for every future event of exactly *event_type*."""
        self._handlers.setdefault(event_type, []).append(handler)
        return handler

    def unsubscribe(self, event_type: Type[Any], handler: Handler) -> None:
        """Remove one subscription; unknown handlers are ignored."""
        handlers = self._handlers.get(event_type)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._handlers[event_type]

    def publish(self, event: Any) -> None:
        """Deliver *event* to its subscribers (no-op without any)."""
        handlers = self._handlers.get(type(event))
        if not handlers:
            return
        for handler in handlers:
            handler(event)

    def __contains__(self, event_type: Type[Any]) -> bool:
        # The publisher-side guard: `if TaskStarted in bus:` skips event
        # construction entirely on the no-subscriber path.
        return event_type in self._handlers

    @property
    def active(self) -> bool:
        """Whether any subscription exists at all."""
        return bool(self._handlers)

    def subscriptions(self) -> Dict[str, int]:
        """Handler counts by event-type name (diagnostics)."""
        return {t.__name__: len(h) for t, h in self._handlers.items()}


# -- generic subscribers ----------------------------------------------------
class EventCounter:
    """Counts events by type name -- the simplest possible observer."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def attach(
        self, bus: EventBus, event_types: Optional[list[type]] = None
    ) -> "EventCounter":
        """Subscribe to *event_types* (default: every event type here)."""
        if event_types is None:
            event_types = _ALL_EVENT_TYPES
        for event_type in event_types:
            bus.subscribe(event_type, self._observe)
        return self

    def _observe(self, event: Any) -> None:
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1


class EventRecorder:
    """Retains every received event in publication order (tests, replay)."""

    def __init__(self) -> None:
        self.events: List[Any] = []

    def attach(
        self, bus: EventBus, event_types: Optional[list[type]] = None
    ) -> "EventRecorder":
        """Subscribe to *event_types* (default: every event type here)."""
        if event_types is None:
            event_types = _ALL_EVENT_TYPES
        for event_type in event_types:
            bus.subscribe(event_type, self.events.append)
        return self

    def of_type(self, event_type: type) -> List[Any]:
        """Recorded events of exactly *event_type*, in order."""
        return [e for e in self.events if type(e) is event_type]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.events)


_ALL_EVENT_TYPES: List[type] = [
    TaskQueued,
    TaskStarted,
    TaskFinished,
    StageCompleted,
    TaskRetryScheduled,
    TaskDeadLettered,
    JobCompleted,
    JobFailed,
    ServiceJobAccepted,
    ServiceJobRejected,
    ServiceJobPopped,
    ServiceJobFinished,
    WorkerHired,
    WorkerRepooled,
    WorkerFailed,
    WorkerEvicted,
    DeployFailed,
    PlacementRejected,
    ScalingDecisionMade,
    FaultInjected,
]
