"""Configuration dataclasses encoding the paper's Tables I and III.

Every simulation parameter in the evaluation (Section IV) is represented
here with its paper default:

- Table I (swept): resource-allocation algorithm, horizontal-scaling
  algorithm, mean job inter-arrival interval, reward scheme, public-tier
  core cost.
- Table III (fixed): simulation length 10 000 TU; private tier core cost
  5 CU/TU; Rmax 400 CU; Rpenalty 15 CU; Rscale 15 000 CU/TU; instance sizes
  1/2/4/8/16 cores; mean 3 jobs per arrival event (variance 2); mean job
  size 5 (variance 1).

Units follow the paper: TU = (abstract) time unit, CU = cost unit.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.core.errors import ConfigurationError

__all__ = [
    "RewardScheme",
    "AllocationAlgorithm",
    "ScalingAlgorithm",
    "RewardConfig",
    "TierConfig",
    "CloudConfig",
    "WorkloadConfig",
    "SchedulerConfig",
    "BrokerConfig",
    "FaultConfig",
    "ResilienceConfig",
    "TelemetryConfig",
    "KnowledgeConfig",
    "SimulationConfig",
    "ResultsConfig",
    "PlatformConfig",
]


class RewardScheme(str, enum.Enum):
    """Task-completion reward function family (paper Section II-D)."""

    TIME = "time"
    THROUGHPUT = "throughput"


class AllocationAlgorithm(str, enum.Enum):
    """Resource allocation algorithm (Table I, row 1).

    - GREEDY: each stage independently picks the thread count maximising its
      own marginal profit at the moment it starts.
    - LONG_TERM: plans thread counts for the whole pipeline using profiled
      stage models, once per job at submission.
    - LONG_TERM_ADAPTIVE: like LONG_TERM but replans at stage boundaries
      using observed queue states.
    - BEST_CONSTANT: the best single fixed execution plan found by offline
      search; every run uses that plan (the paper's baseline).
    """

    GREEDY = "greedy"
    LONG_TERM = "long_term"
    LONG_TERM_ADAPTIVE = "long_term_adaptive"
    BEST_CONSTANT = "best_constant"
    #: Extension (paper Section VI future work): online bandit learning of
    #: per-stage thread profits.  Not part of the Table I grid.
    LEARNED = "learned"


class ScalingAlgorithm(str, enum.Enum):
    """Horizontal-scaling algorithm (Table I, row 2).

    - ALWAYS: whenever the private tier is full, hire public workers
      immediately for any queued task.
    - NEVER: never hire public workers; queue until a private worker frees.
    - PREDICTIVE: hire public workers only when the delay cost (Eq. 1) of
      waiting exceeds the hire cost.
    """

    ALWAYS = "always"
    NEVER = "never"
    PREDICTIVE = "predictive"


@dataclass(frozen=True)
class RewardConfig:
    """Reward-function constants (Table III and Section II-D)."""

    scheme: RewardScheme = RewardScheme.TIME
    #: Per-record reward ceiling for the time scheme (CU).
    rmax: float = 400.0
    #: Per-record, per-TU delay penalty for the time scheme (CU).
    rpenalty: float = 15.0
    #: Throughput-scheme scaling factor (CU * TU).
    rscale: float = 15_000.0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.rmax <= 0:
            raise ConfigurationError(f"rmax must be positive, got {self.rmax}")
        if self.rpenalty < 0:
            raise ConfigurationError(f"rpenalty must be >= 0, got {self.rpenalty}")
        if self.rscale <= 0:
            raise ConfigurationError(f"rscale must be positive, got {self.rscale}")


@dataclass(frozen=True)
class TierConfig:
    """One tier of an explicit N-tier stack (``CloudConfig.tiers``).

    ``backend`` names a ``TIER_BACKENDS`` registry entry (``reserved``,
    ``on_demand``, ``serverless``, ``spot``, or a plugin); fields a
    backend does not understand are ignored by its factory, so one shape
    serves every backend.
    """

    #: Tier name (unique within the stack; "private"-named tiers get the
    #: private fault/crash profile, all others the elastic profile).
    name: str = ""
    #: ``TIER_BACKENDS`` registry key.
    backend: str = "on_demand"
    #: Core capacity of the tier.
    capacity_cores: int = 1_000_000
    #: Cost per core per TU (CU).
    core_cost_per_tu: float = 0.0
    #: Serverless: flat charge per allocation (CU).
    invocation_cost: float = 0.0
    #: Serverless: cold-start latency added to the boot penalty (TU).
    cold_start_tu: float = 0.0
    #: Serverless: per-allocation core cap (None = uncapped).
    max_cores_per_allocation: "int | None" = None
    #: Serverless: per-allocation duration cap (TU; None = uncapped).
    max_duration_tu: "float | None" = None
    #: Spot: mean time between evictions at the reference price (TU);
    #: None for non-spot backends.
    eviction_mtbf_tu: "float | None" = None
    #: Spot: the price the eviction MTBF was quoted at; the effective
    #: MTBF scales by ``core_cost_per_tu / reference_cost_per_tu``
    #: (cheaper spot capacity is reclaimed more often).
    reference_cost_per_tu: "float | None" = None

    # Only name/backend/capacity/cost are universal; backend-specific
    # knobs serialize sparsely so stacks stay compact.
    _SPARSE_FIELDS = frozenset({
        "invocation_cost", "cold_start_tu", "max_cores_per_allocation",
        "max_duration_tu", "eviction_mtbf_tu", "reference_cost_per_tu",
    })

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if not self.name:
            raise ConfigurationError("tier name must be non-empty")
        if not self.backend:
            raise ConfigurationError(f"tier {self.name}: backend must be named")
        if self.capacity_cores < 0:
            raise ConfigurationError(f"tier {self.name}: capacity must be >= 0")
        if self.core_cost_per_tu < 0:
            raise ConfigurationError(f"tier {self.name}: cost must be >= 0")
        if self.invocation_cost < 0:
            raise ConfigurationError(
                f"tier {self.name}: invocation_cost must be >= 0"
            )
        if self.cold_start_tu < 0:
            raise ConfigurationError(
                f"tier {self.name}: cold_start_tu must be >= 0"
            )
        if (
            self.max_cores_per_allocation is not None
            and self.max_cores_per_allocation < 1
        ):
            raise ConfigurationError(
                f"tier {self.name}: max_cores_per_allocation must be >= 1"
            )
        if self.max_duration_tu is not None and self.max_duration_tu <= 0:
            raise ConfigurationError(
                f"tier {self.name}: max_duration_tu must be positive"
            )
        if self.eviction_mtbf_tu is not None and self.eviction_mtbf_tu <= 0:
            raise ConfigurationError(
                f"tier {self.name}: eviction_mtbf_tu must be positive"
            )
        if (
            self.reference_cost_per_tu is not None
            and self.reference_cost_per_tu <= 0
        ):
            raise ConfigurationError(
                f"tier {self.name}: reference_cost_per_tu must be positive"
            )


@dataclass(frozen=True)
class CloudConfig:
    """Two-tier hybrid cloud (Section IV-A, Tables I and III)."""

    #: Cores available in the bounded private tier.
    private_cores: int = 624
    #: Private-tier cost (CU per core per TU).
    private_core_cost: float = 5.0
    #: Public-tier cost (CU per core per TU); Table I sweeps {20, 50, 80, 110}.
    public_core_cost: float = 50.0
    #: Public-tier capacity; effectively unbounded in the paper.
    public_cores: int = 1_000_000
    #: Hirable instance shapes, in cores (Table III).
    instance_sizes: tuple[int, ...] = (1, 2, 4, 8, 16)
    #: VM (re)start penalty in TU.  The paper pays "the 30 second startup
    #: penalty" whenever a worker is re-pooled to a different thread count;
    #: with the paper's 1 TU ~ 1 minute convention this is 0.5 TU.
    startup_penalty_tu: float = 0.5
    #: RAM per private node (GB), per Section IV-A.
    node_ram_gb: int = 64
    #: Mean time between VM failures (TU); None disables failure
    #: injection (the paper's evaluation assumes reliable workers).
    vm_mtbf_tu: "float | None" = None
    #: Explicit N-tier stack, in order.  Empty keeps the legacy two-tier
    #: fields above (the paper's private/public pair); non-empty replaces
    #: them entirely.
    tiers: tuple[TierConfig, ...] = ()
    #: ``TIER_PLACEMENT`` registry key; ``cheapest_first`` reproduces the
    #: paper's private-first placement on the default stack.
    placement: str = "cheapest_first"

    # Serialized sparsely so configs recorded before the N-tier refactor
    # fingerprint and round-trip unchanged.
    _SPARSE_FIELDS = frozenset({"tiers", "placement"})

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.vm_mtbf_tu is not None and self.vm_mtbf_tu <= 0:
            raise ConfigurationError("vm_mtbf_tu must be positive or None")
        if self.private_cores < 0:
            raise ConfigurationError("private_cores must be >= 0")
        if self.public_cores < 0:
            raise ConfigurationError("public_cores must be >= 0")
        if self.private_core_cost < 0 or self.public_core_cost < 0:
            raise ConfigurationError("core costs must be >= 0")
        if not self.instance_sizes:
            raise ConfigurationError("instance_sizes must be non-empty")
        if any(s <= 0 for s in self.instance_sizes):
            raise ConfigurationError("instance sizes must be positive")
        if tuple(sorted(self.instance_sizes)) != tuple(self.instance_sizes):
            raise ConfigurationError("instance_sizes must be sorted ascending")
        if self.startup_penalty_tu < 0:
            raise ConfigurationError("startup_penalty_tu must be >= 0")
        if not self.placement:
            raise ConfigurationError("placement must be named")
        seen: set[str] = set()
        for tier in self.tiers:
            tier.validate()
            if tier.name in seen:
                raise ConfigurationError(f"duplicate tier name {tier.name!r}")
            seen.add(tier.name)


@dataclass(frozen=True)
class WorkloadConfig:
    """Batched stochastic workload (Tables I and III).

    Arrival events occur with exponential inter-arrival times; each event
    carries a batch of jobs whose count and sizes are drawn from truncated
    normal distributions with the paper's means and variances.
    """

    #: Mean job inter-arrival interval (TU); Table I sweeps 2.0 .. 3.0.
    mean_interarrival: float = 2.5
    #: Mean number of jobs per arrival event.
    jobs_per_arrival_mean: float = 3.0
    #: Variance of jobs per arrival event.
    jobs_per_arrival_var: float = 2.0
    #: Mean job size (arbitrary units; 1 unit ~ 1 GB of input).
    job_size_mean: float = 5.0
    #: Variance of job size.
    job_size_var: float = 1.0
    #: GB of pipeline input per job-size unit.  The paper gives job sizes
    #: in "arbitrary units" and never states the mapping into the E_i(d)
    #: input-size axis; this knob is that free parameter.  The Figure 4
    #: benchmark calibrates it so the paper's own workload description
    #: holds (interval 2.0 = "very busy system where much public resource
    #: hiring is necessary", 3.0 = private tier "rarely if ever fully
    #: occupied").
    size_unit_gb: float = 1.0
    #: Arrival generator (an ``ARRIVAL_PROCESSES`` registry key);
    #: ``"batch_poisson"`` is the paper's stochastic process, ``"trace"``
    #: replays a recorded JSONL arrival log.
    arrival_process: str = "batch_poisson"
    #: Path of the JSONL trace replayed by ``arrival_process = "trace"``.
    arrival_trace: str = ""

    # Serialized sparsely (omitted at their defaults) so configs recorded
    # before these knobs existed fingerprint and round-trip unchanged.
    _SPARSE_FIELDS = frozenset({"arrival_process", "arrival_trace"})

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.size_unit_gb <= 0:
            raise ConfigurationError("size_unit_gb must be positive")
        if self.mean_interarrival <= 0:
            raise ConfigurationError("mean_interarrival must be positive")
        if self.jobs_per_arrival_mean <= 0:
            raise ConfigurationError("jobs_per_arrival_mean must be positive")
        if self.jobs_per_arrival_var < 0 or self.job_size_var < 0:
            raise ConfigurationError("variances must be >= 0")
        if self.job_size_mean <= 0:
            raise ConfigurationError("job_size_mean must be positive")
        if not self.arrival_process:
            raise ConfigurationError("arrival_process must be named")
        if self.arrival_process == "trace" and not self.arrival_trace:
            raise ConfigurationError(
                "arrival_process 'trace' needs arrival_trace (a JSONL path)"
            )


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler policy knobs (Table I rows 1-2 plus estimator internals)."""

    allocation: AllocationAlgorithm = AllocationAlgorithm.GREEDY
    scaling: ScalingAlgorithm = ScalingAlgorithm.PREDICTIVE
    #: EWMA smoothing factor for per-stage queue-time estimates (EQT_i).
    eqt_alpha: float = 0.3
    #: Look-ahead window used by the predictive scaler when evaluating the
    #: delay cost of not hiring (TU).
    predictive_horizon: float = 5.0
    #: Thread counts considered by allocation algorithms; mirrors the
    #: hirable instance sizes by default.
    thread_choices: tuple[int, ...] = (1, 2, 4, 8, 16)
    #: Idle workers are terminated after this long without work (TU).
    idle_timeout_tu: float = 2.0
    #: Whether an idle worker may be re-pooled (resized to a different
    #: vCPU count, paying the restart penalty) instead of hiring anew.
    repool_allowed: bool = True

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if not 0.0 < self.eqt_alpha <= 1.0:
            raise ConfigurationError("eqt_alpha must lie in (0, 1]")
        if self.predictive_horizon <= 0:
            raise ConfigurationError("predictive_horizon must be positive")
        if not self.thread_choices or any(t < 1 for t in self.thread_choices):
            raise ConfigurationError("thread_choices must be positive ints")
        if self.idle_timeout_tu < 0:
            raise ConfigurationError("idle_timeout_tu must be >= 0")


@dataclass(frozen=True)
class BrokerConfig:
    """Data Broker policy (Section III-A.1)."""

    #: Preferred shard size for GATK inputs (GB); "the inputs will be 2GB
    #: for each task" in the evaluation.
    default_shard_gb: float = 2.0
    #: Whether shard size is taken from the knowledge base when profile
    #: data exists (True) or always the fixed default (False).
    use_knowledge_base: bool = True
    #: Smallest shard worth creating (GB); splitting below this wastes more
    #: in per-task overhead than parallelism recovers.
    min_shard_gb: float = 0.25
    #: Largest number of shards a single job may be split into.
    max_shards_per_job: int = 256

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.default_shard_gb <= 0:
            raise ConfigurationError("default_shard_gb must be positive")
        if self.min_shard_gb <= 0 or self.min_shard_gb > self.default_shard_gb:
            raise ConfigurationError(
                "min_shard_gb must be in (0, default_shard_gb]"
            )
        if self.max_shards_per_job < 1:
            raise ConfigurationError("max_shards_per_job must be >= 1")


@dataclass(frozen=True)
class FaultConfig:
    """Chaos-layer fault streams (all disabled by default).

    Each stream draws from its own named RNG stream, so enabling one fault
    class never perturbs the draws of another (or of the workload): a run
    with every probability at zero is bit-identical to a run without the
    fault layer at all.
    """

    #: Mean time between VM crashes (TU).  ``None`` falls back to the
    #: legacy ``CloudConfig.vm_mtbf_tu`` knob; both ``None`` disables
    #: crash injection.
    mtbf_tu: "float | None" = None
    #: Public-tier crash MTBF (TU); defaults to ``mtbf_tu`` (spot-market
    #: instances often die sooner, so the knob is separate).
    public_mtbf_tu: "float | None" = None
    #: Probability a deployed VM dies during its boot sequence.
    p_boot_fail: float = 0.0
    #: Probability a CELAR deploy request fails transiently (private tier,
    #: and public tier unless overridden below).
    p_deploy_fail: float = 0.0
    #: Public-tier deploy failure probability; defaults to ``p_deploy_fail``.
    p_deploy_fail_public: "float | None" = None
    #: Probability a task's execution straggles (heavy-tailed slowdown).
    p_straggler: float = 0.0
    #: Pareto tail index of the straggler multiplier (smaller = heavier).
    straggler_alpha: float = 1.5
    #: Minimum slowdown factor of a straggling task.
    straggler_min_factor: float = 2.0
    #: Probability a completed stage is retroactively invalid (staging /
    #: shard corruption) and must re-execute.
    p_corrupt: float = 0.0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.mtbf_tu is not None and self.mtbf_tu <= 0:
            raise ConfigurationError("mtbf_tu must be positive or None")
        if self.public_mtbf_tu is not None and self.public_mtbf_tu <= 0:
            raise ConfigurationError("public_mtbf_tu must be positive or None")
        for name in ("p_boot_fail", "p_deploy_fail", "p_straggler", "p_corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {p}")
        if self.p_deploy_fail_public is not None and not (
            0.0 <= self.p_deploy_fail_public <= 1.0
        ):
            raise ConfigurationError("p_deploy_fail_public must lie in [0, 1]")
        if self.straggler_alpha <= 1.0:
            raise ConfigurationError(
                "straggler_alpha must exceed 1 (finite mean slowdown)"
            )
        if self.straggler_min_factor < 1.0:
            raise ConfigurationError("straggler_min_factor must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Scheduler resilience mechanisms (retry budgets, backoff, dead-letter
    quarantine, speculative re-execution, public-tier circuit breaker).

    Enabled by default; with no faults injected the mechanisms are inert,
    so a fault-free session is bit-identical to one without them.
    """

    #: Master switch.  Disabled = chaos with no safety net: a failed
    #: execution immediately dead-letters its job (no retries), no
    #: speculation, no circuit breaker, no deploy re-arming -- the
    #: ablation baseline the chaos benchmark compares against.
    enabled: bool = True
    #: Executions a stage task may consume before it is dead-lettered and
    #: its job fails.  0 retries forever (the seed's legacy behaviour).
    max_attempts: int = 0
    #: First retry is delayed this long (TU); doubles per attempt.
    retry_base_delay_tu: float = 0.25
    #: Multiplier applied to the retry delay per additional attempt.
    retry_backoff_factor: float = 2.0
    #: Ceiling on the per-retry delay (TU).
    retry_max_delay_tu: float = 8.0
    #: Re-dispatch delay after a transient deploy failure (TU).
    deploy_retry_delay_tu: float = 0.5
    #: Whether the straggler watchdog may launch speculative duplicates.
    speculation_enabled: bool = True
    #: A running task is a suspected straggler once it exceeds this factor
    #: times the estimator's predicted duration.
    straggler_factor: float = 3.0
    #: Whether repeated public-tier deploy failures trip a circuit breaker.
    breaker_enabled: bool = True
    #: Consecutive public deploy failures that open the breaker.
    breaker_threshold: int = 3
    #: How long an open breaker rejects public hires before one half-open
    #: probe is allowed (TU).
    breaker_cooldown_tu: float = 20.0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.max_attempts < 0:
            raise ConfigurationError("max_attempts must be >= 0 (0 = unbounded)")
        if self.retry_base_delay_tu < 0 or self.retry_max_delay_tu < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ConfigurationError("retry_backoff_factor must be >= 1")
        if self.deploy_retry_delay_tu <= 0:
            raise ConfigurationError("deploy_retry_delay_tu must be positive")
        if self.straggler_factor <= 1.0:
            raise ConfigurationError("straggler_factor must exceed 1")
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_tu <= 0:
            raise ConfigurationError("breaker_cooldown_tu must be positive")


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability layer (`repro.telemetry`): tracing, metrics, audit,
    profiling.

    Disabled by default, and *structurally* disabled: with
    ``enabled=False`` the session never constructs a ``TelemetryHub``, so
    every integration point short-circuits on ``hub is None`` and a run
    is bit-identical to one on a build without the telemetry subsystem.
    Enabled instruments are passive (no RNG draws, no scheduled events),
    so sim-time results are unchanged either way.
    """

    #: Master switch; False means no hub, no instruments, no overhead.
    enabled: bool = False
    #: Record spans/instants/counters for Chrome-trace export.
    trace: bool = True
    #: Maintain the Prometheus-style metrics registry.
    metrics: bool = True
    #: Record every scheduler hire-or-wait decision with Eq. 1 inputs.
    audit: bool = True
    #: Install the engine probe + wall-clock profiler (BENCH output).
    profile: bool = False
    #: The profiler samples event-calendar depth every N engine steps.
    step_sample_every: int = 64
    #: Hard cap on retained trace events (excess counted, not stored).
    max_trace_events: int = 1_000_000

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.step_sample_every < 1:
            raise ConfigurationError("step_sample_every must be >= 1")
        if self.max_trace_events < 1:
            raise ConfigurationError("max_trace_events must be >= 1")


@dataclass(frozen=True)
class KnowledgeConfig:
    """Knowledge plane (`repro.knowledge.plane`): the shared store of
    per-stage performance facts behind every estimate.

    With the default ``static`` provider the plane is a pass-through over
    the profiled application model -- estimates are bit-identical to a
    build without the plane.  The ``adaptive`` provider re-fits stage
    coefficients online from completed-stage observations and bumps the
    plane epoch, invalidating the estimator's EET memo.
    """

    #: Estimate-provider registry key ("static" or "adaptive"; plugins may
    #: register more).
    provider: str = "static"
    #: The online refitter re-fits after this many new observations.
    refit_every: int = 8
    #: Minimum observations per stage before a refit replaces the prior.
    min_samples: int = 4
    #: Retained observations per stage (oldest dropped beyond this).
    max_observations: int = 4096
    #: Ground-truth drift factor: executed stage durations use profiled
    #: linear coefficients scaled by this factor while planning still uses
    #: the unscaled profile.  1.0 = no drift (the paper's assumption);
    #: the ``drift`` preset mis-specifies the profile to exercise the
    #: adaptive provider's recovery.
    model_drift: float = 1.0
    #: When True the online refitter also learns per-tier coefficient
    #: sets (scoped ``app@tier``), so estimates can reflect systematic
    #: per-tier performance differences.  Off by default: the fact scope
    #: and observation volume are unchanged from the two-tier era.
    per_tier: bool = False

    # Serialized sparsely: configs predating the knob round-trip unchanged.
    _SPARSE_FIELDS = frozenset({"per_tier"})

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if not self.provider:
            raise ConfigurationError("knowledge provider must be named")
        if self.refit_every < 1:
            raise ConfigurationError("refit_every must be >= 1")
        if self.min_samples < 2:
            raise ConfigurationError("min_samples must be >= 2")
        if self.max_observations < self.min_samples:
            raise ConfigurationError(
                "max_observations must be >= min_samples"
            )
        if self.model_drift <= 0:
            raise ConfigurationError("model_drift must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Session-level controls (Table III row 1 plus reproducibility)."""

    #: Simulated duration (TU).
    duration: float = 10_000.0
    #: Root seed for all random streams.
    seed: int = 0
    #: Independent repetitions per configuration (the paper uses 10).
    repetitions: int = 10
    #: Initial transient to exclude from steady-state metrics (TU).
    warmup: float = 0.0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if not 0.0 <= self.warmup < self.duration:
            raise ConfigurationError("warmup must lie in [0, duration)")


@dataclass(frozen=True)
class ResultsConfig:
    """Streaming sweep-result sink (:mod:`repro.sim.results`).

    With the default empty ``store`` sweeps run fully in memory, exactly
    as before.  Naming a store spec turns on the append-only result
    ledger: every completed (cell, repetition) is persisted as it
    finishes and the sweep becomes resumable with ``--resume``.
    """

    #: Result-store spec: ``""`` (off), ``memory``, a JSONL path, a
    #: ``.db``/``.sqlite`` path, or an explicit ``jsonl:PATH``/
    #: ``sqlite:PATH``.  The CLI's ``--results-out`` overrides this.
    store: str = ""
    #: fsync the JSONL ledger after every record.  Durable against power
    #: loss, not just process death -- at a per-record write cost.
    fsync: bool = False

    def validate(self) -> None:
        """Raise ConfigurationError on invalid fields."""
        if self.store:
            prefix = self.store.split(":", 1)[0]
            if ":" in self.store and prefix not in ("jsonl", "sqlite") \
                    and len(prefix) > 1:  # allow Windows drive letters
                raise ConfigurationError(
                    f"unknown result-store kind {prefix!r}; "
                    f"expected jsonl or sqlite"
                )


# -- serialization helpers ---------------------------------------------------
#: Enum-valued fields across the section dataclasses (field name -> enum).
_ENUM_FIELDS: dict[str, type[enum.Enum]] = {
    "scheme": RewardScheme,
    "allocation": AllocationAlgorithm,
    "scaling": ScalingAlgorithm,
}

#: Registry kind backing each enum field, for out-of-tree policy names.
_ENUM_REGISTRY_KINDS: dict[str, str] = {
    "scheme": "reward",
    "allocation": "allocation",
    "scaling": "scaling",
}

#: Fields holding a tuple of nested config dataclasses (field name ->
#: element class); serialized as lists of sparse dicts.
_TUPLE_DATACLASS_FIELDS: dict[str, type] = {
    "tiers": TierConfig,
}


def _section_to_dict(section: Any) -> dict[str, Any]:
    """One config section as plain JSON-serializable values.

    Fields a section lists in ``_SPARSE_FIELDS`` are omitted while at
    their declared default, so adding an opt-in knob does not perturb
    the serialized form (or the fingerprint) of older configs.
    """
    sparse = getattr(type(section), "_SPARSE_FIELDS", frozenset())
    out: dict[str, Any] = {}
    for f in fields(section):
        value = getattr(section, f.name)
        if f.name in sparse and value == f.default:
            continue
        if isinstance(value, enum.Enum):
            value = value.value
        elif f.name in _TUPLE_DATACLASS_FIELDS:
            value = [_section_to_dict(item) for item in value]
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def _section_from_dict(cls: type, data: Mapping[str, Any], where: str) -> Any:
    """Rebuild one config section, coercing JSON shapes back to Python.

    Lists become tuples, enum values become enum members; unknown keys and
    unknown enum values raise :class:`ConfigurationError` naming what *is*
    valid.
    """
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in config "
            f"section {where!r}; known: {', '.join(sorted(known))}"
        )
    kwargs = {
        name: _coerce_field(name, value, where)
        for name, value in data.items()
    }
    return cls(**kwargs)


def _coerce_field(name: str, value: Any, where: str) -> Any:
    """One section field coerced from JSON/override shape to Python.

    Shared by :meth:`PlatformConfig.from_dict` and
    :meth:`PlatformConfig.with_overrides` so dict-shaped nested configs
    (e.g. ``cloud={"tiers": [{"name": ...}, ...]}``) and raw enum/policy
    names behave identically on both paths.
    """
    enum_cls = _ENUM_FIELDS.get(name)
    if enum_cls is not None and not isinstance(value, enum_cls):
        try:
            value = enum_cls(value)
        except ValueError:
            # Not a built-in: out-of-tree policies registered through
            # load_plugins() stay addressable by raw name in config
            # files, so consult the registry before rejecting.
            from repro.core.plugins import get_registry

            registry = get_registry(_ENUM_REGISTRY_KINDS[name])
            if value not in registry:
                valid = ", ".join(registry.names())
                raise ConfigurationError(
                    f"unknown {where}.{name} {value!r}; "
                    f"registered: {valid}"
                ) from None
    elif name in _TUPLE_DATACLASS_FIELDS and isinstance(value, (list, tuple)):
        element_cls = _TUPLE_DATACLASS_FIELDS[name]
        value = tuple(
            item
            if isinstance(item, element_cls)
            else _section_from_dict(element_cls, item, f"{where}.{name}[{i}]")
            for i, item in enumerate(value)
        )
    elif isinstance(value, list):
        value = tuple(value)
    return value


@dataclass(frozen=True)
class PlatformConfig:
    """Complete SCAN platform configuration."""

    reward: RewardConfig = field(default_factory=RewardConfig)
    cloud: CloudConfig = field(default_factory=CloudConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    broker: BrokerConfig = field(default_factory=BrokerConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    knowledge: KnowledgeConfig = field(default_factory=KnowledgeConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    results: ResultsConfig = field(default_factory=ResultsConfig)
    #: Name of the application pipeline to run (registry key).
    application: str = "gatk"
    #: Name of the workflow DAG to run (a ``WORKFLOWS`` registry key).
    #: Empty means "the application's own linear chain" -- the legacy
    #: shape, serialized identically to configs that predate DAGs.
    workflow: str = ""

    def validate(self) -> "PlatformConfig":
        """Validate all sections; returns self for chaining."""
        self.reward.validate()
        self.cloud.validate()
        self.workload.validate()
        self.scheduler.validate()
        self.broker.validate()
        self.faults.validate()
        self.resilience.validate()
        self.telemetry.validate()
        self.knowledge.validate()
        self.simulation.validate()
        self.results.validate()
        if not self.application:
            raise ConfigurationError("application must be named")
        return self

    def with_overrides(self, **sections: Mapping[str, Any]) -> "PlatformConfig":
        """A copy with per-section field overrides.

        Example::

            cfg.with_overrides(workload={"mean_interarrival": 2.0},
                               scheduler={"scaling": ScalingAlgorithm.ALWAYS})
        """
        updates: dict[str, Any] = {}
        for section, fields in sections.items():
            current = getattr(self, section, None)
            if current is None:
                raise ConfigurationError(f"unknown config section {section!r}")
            if isinstance(fields, Mapping):
                coerced = {
                    name: _coerce_field(name, value, section)
                    for name, value in fields.items()
                }
                updates[section] = replace(current, **coerced)
            else:
                updates[section] = fields
        return replace(self, **updates)

    @staticmethod
    def paper_defaults() -> "PlatformConfig":
        """The exact fixed configuration of Table III."""
        return PlatformConfig().validate()

    # -- serialization -----------------------------------------------------
    #: Section fields, in declaration order (everything but ``application``).
    _SECTIONS = (
        "reward", "cloud", "workload", "scheduler", "broker",
        "faults", "resilience", "telemetry", "knowledge", "simulation",
        "results",
    )

    def to_dict(self) -> dict[str, Any]:
        """The whole deployment as one plain, JSON-serializable dict.

        Lossless: :meth:`from_dict` rebuilds an equal config (enums to
        their string values, tuples to lists, ``None`` passed through).
        """
        out: dict[str, Any] = {
            name: _section_to_dict(getattr(self, name))
            for name in self._SECTIONS
        }
        out["application"] = self.application
        if self.workflow:
            out["workflow"] = self.workflow
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformConfig":
        """Rebuild a config from :meth:`to_dict` output (or any subset).

        Absent sections/keys keep their defaults; unknown sections, keys
        or enum values raise :class:`ConfigurationError` naming the valid
        choices.
        """
        section_classes: dict[str, type] = {
            "reward": RewardConfig,
            "cloud": CloudConfig,
            "workload": WorkloadConfig,
            "scheduler": SchedulerConfig,
            "broker": BrokerConfig,
            "faults": FaultConfig,
            "resilience": ResilienceConfig,
            "telemetry": TelemetryConfig,
            "knowledge": KnowledgeConfig,
            "simulation": SimulationConfig,
            "results": ResultsConfig,
        }
        unknown = sorted(
            set(data) - set(section_classes) - {"application", "workflow"}
        )
        if unknown:
            raise ConfigurationError(
                f"unknown config section(s) {', '.join(map(repr, unknown))}; "
                f"known: application, workflow, "
                f"{', '.join(sorted(section_classes))}"
            )
        kwargs: dict[str, Any] = {}
        for name, section_cls in section_classes.items():
            if name in data:
                section = data[name]
                if not isinstance(section, Mapping):
                    raise ConfigurationError(
                        f"config section {name!r} must be a mapping, "
                        f"got {type(section).__name__}"
                    )
                kwargs[name] = _section_from_dict(section_cls, section, name)
        if "application" in data:
            kwargs["application"] = data["application"]
        if "workflow" in data:
            kwargs["workflow"] = data["workflow"]
        return cls(**kwargs)

    def to_json(self, indent: "int | None" = 2) -> str:
        """The config as a JSON document (one serializable artifact)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PlatformConfig":
        """Parse :meth:`to_json` output back into a config."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid config JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"config JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)
