"""Structured platform events and the event log.

Every significant platform action (job submitted, shard created, task
queued, worker hired, stage completed, pipeline finished) is appended to an
:class:`EventLog`.  The log serves two roles from the paper:

1. It is the raw material for knowledge-base expansion: "the SCAN keeps the
   log information of each task scheduled to run in a cloud.  The log
   information will be used to further populate the SCAN knowledge-base"
   (Section III-A.1.i).
2. It is the measurement channel for the evaluation metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["EventKind", "PlatformEvent", "EventLog"]


class EventKind(str, enum.Enum):
    """Platform event taxonomy."""

    JOB_SUBMITTED = "job_submitted"
    JOB_COMPLETED = "job_completed"
    SHARD_CREATED = "shard_created"
    SHARDS_MERGED = "shards_merged"
    TASK_QUEUED = "task_queued"
    TASK_STARTED = "task_started"
    TASK_COMPLETED = "task_completed"
    STAGE_COMPLETED = "stage_completed"
    WORKER_HIRED = "worker_hired"
    WORKER_RELEASED = "worker_released"
    WORKER_REPOOLED = "worker_repooled"
    VM_BOOT_STARTED = "vm_boot_started"
    VM_READY = "vm_ready"
    WORKER_FAILED = "worker_failed"
    WORKER_EVICTED = "worker_evicted"
    TASK_RETRIED = "task_retried"
    TASK_RETRY_SCHEDULED = "task_retry_scheduled"
    TASK_DEAD_LETTERED = "task_dead_lettered"
    JOB_FAILED = "job_failed"
    SPECULATIVE_LAUNCHED = "speculative_launched"
    SPECULATIVE_WON = "speculative_won"
    SPECULATIVE_LOST = "speculative_lost"
    DEPLOY_FAILED = "deploy_failed"
    BOOT_FAILED = "boot_failed"
    STAGE_CORRUPTED = "stage_corrupted"
    BREAKER_OPEN = "breaker_open"
    BREAKER_CLOSED = "breaker_closed"
    KB_UPDATED = "kb_updated"
    REWARD_PAID = "reward_paid"
    COST_INCURRED = "cost_incurred"


@dataclass(frozen=True)
class PlatformEvent:
    """A single timestamped platform event with free-form detail fields."""

    time: float
    kind: EventKind
    detail: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.detail[key]

    def get(self, key: str, default: Any = None) -> Any:
        """A detail field, or *default* when absent."""
        return self.detail.get(key, default)


class EventLog:
    """Append-only, time-ordered log of :class:`PlatformEvent`.

    Supports subscriptions so the knowledge base can ingest task-completion
    records as they happen rather than post-hoc.
    """

    def __init__(self, capture: bool = True) -> None:
        """With ``capture=False`` events are delivered to subscribers but
        not stored -- long simulations emit hundreds of thousands of events,
        and sessions that only need live metrics can skip the memory."""
        self._events: list[PlatformEvent] = []
        self._subscribers: list[Callable[[PlatformEvent], None]] = []
        self.capture = capture

    def emit(self, time: float, kind: EventKind, **detail: Any) -> PlatformEvent:
        """Record an event and notify subscribers."""
        event = PlatformEvent(time=float(time), kind=kind, detail=detail)
        if self.capture:
            if self._events and time < self._events[-1].time - 1e-9:
                raise ValueError(
                    f"event at t={time} precedes log head t={self._events[-1].time}"
                )
            self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[PlatformEvent], None]) -> None:
        """Register *callback* to be invoked on every future event."""
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[PlatformEvent]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> list[PlatformEvent]:
        """All events of the given kind, in time order."""
        return [e for e in self._events if e.kind is kind]

    def between(self, start: float, end: float) -> list[PlatformEvent]:
        """Events with start <= time < end."""
        return [e for e in self._events if start <= e.time < end]

    def counts(self) -> dict[EventKind, int]:
        """Event counts per kind."""
        out: dict[EventKind, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out
