"""HTTP RPC front-end for the SCAN platform and its service plane.

The paper's prototype scheduler "is implemented in Python, using the
CherryPy web framework to process HTTP requests.  Its interface is realized
using HTTP RPCs" (Section III-B).  This module provides that surface with
only the standard library: a threaded :mod:`http.server` exposing the
platform's verbs as JSON-over-HTTP endpoints.

Endpoints
---------
``GET  /health``            liveness probe
``GET  /metrics``           platform metrics snapshot (JSON); with an
                            ``Accept: text/plain`` header and a service
                            plane attached, the tenant-labelled
                            Prometheus exposition instead
``GET  /requests``          all analysis requests (id, status, latency)
``GET  /requests/<id>``     one request's detail
``GET  /workers``           worker-pool population
``POST /submit``            body {"name", "size_gb", "format"} -> request id
``POST /advance``           body {"until": t} or {} -> run the simulation
``POST /kb/query``          body {"sparql": "..."} -> result rows

Service-plane endpoints (when a :class:`~repro.service.plane.ServicePlane`
is attached):

``POST /tenants/<id>/jobs`` submit a job to a tenant's priority queue;
                            202 on admission, 429 when the queue is full,
                            503 while the tenant's breaker is open,
                            409 on a duplicate uid
``GET  /tenants``           every tenant with queue depth and breaker state
``GET  /tenants/<id>/queue``one tenant's queue in pop order
``POST /pop``               body {"tenant": ...?} -> lease the best job
``POST /finish``            body {"uid", "outcome"?} -> resolve a lease
``POST /drain``             body {"max_jobs"?, "until"?} -> pump + run +
                            reconcile
``GET  /service/state``     global accounting (the recovery invariant)

Error contract (RPC hardening): every error body is structured JSON --
``{"error": {"code": <stable string>, "message": <human text>}}`` -- with
``bad_json`` (400), ``bad_request`` (400), ``bad_route`` (400),
``payload_too_large`` (413), ``length_required`` (411), ``queue_full``
(429), ``tenant_suspended`` (503), ``duplicate`` (409), ``not_found``
(404 on service routes) and ``internal`` (500).  Request bodies are read
*bounded*: an oversize ``Content-Length`` is refused before a byte is
read, and a socket read timeout frees the handler thread from clients
that declare more bytes than they send.

The simulated platform is single-threaded; a lock serialises handler
access so concurrent HTTP clients cannot interleave simulation steps.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Optional

from repro.core.errors import SCANError
from repro.core.platform import AnalysisRequest, SCANPlatform
from repro.genomics.datasets import DataFormat, DatasetDescriptor
from repro.ontology.sparql import SparqlError
from repro.ontology.triples import IRI

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.service.plane import ServicePlane

__all__ = ["ScanRpcServer", "RpcError", "DEFAULT_MAX_BODY_BYTES"]

#: Default request-body ceiling (bytes); ServiceConfig can override.
DEFAULT_MAX_BODY_BYTES = 1_048_576


class RpcError(SCANError):
    """An RPC-layer failure with an HTTP status and a stable error code."""

    def __init__(
        self, message: str, status: int = 400, code: str = "bad_request"
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _jsonable(value: Any) -> Any:
    """Coerce platform values (IRIs, enums) into JSON-encodable ones."""
    if isinstance(value, IRI):
        return str(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "value") and not isinstance(value, (int, float)):
        return value.value  # enums
    return value


#: Admission-decision reason -> (HTTP status, error code).
_ADMISSION_STATUS = {
    "queue_full": (429, "queue_full"),
    "duplicate": (409, "duplicate"),
    "tenant_suspended": (503, "tenant_suspended"),
}


class ScanRpcServer:
    """A threaded HTTP JSON-RPC wrapper around one :class:`SCANPlatform`.

    Usage::

        server = ScanRpcServer(platform, port=0)   # 0 = ephemeral port
        server.start()
        ... urllib / curl against http://127.0.0.1:{server.port} ...
        server.stop()

    Attaching a service plane (``plane=ServicePlane(platform, ...)``)
    adds the tenant-scoped queue endpoints.
    """

    def __init__(
        self,
        platform: SCANPlatform,
        host: str = "127.0.0.1",
        port: int = 0,
        plane: "Optional[ServicePlane]" = None,
        max_body_bytes: Optional[int] = None,
        read_timeout_s: Optional[float] = None,
    ):
        self.platform = platform
        self.plane = plane
        if max_body_bytes is None:
            max_body_bytes = (
                plane.config.max_body_bytes
                if plane is not None
                else DEFAULT_MAX_BODY_BYTES
            )
        if read_timeout_s is None:
            read_timeout_s = (
                plane.config.read_timeout_s if plane is not None else 10.0
            )
        self.max_body_bytes = max_body_bytes
        self.read_timeout_s = read_timeout_s
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a background thread."""
        if self._thread is not None:
            raise RpcError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="scan-rpc", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.plane is not None:
            self.plane.close()

    # -- RPC verbs (called under the lock) -----------------------------------
    def _rpc_health(self) -> dict:
        payload = {"status": "ok", "now": self.platform.env.now}
        if self.plane is not None:
            payload["service"] = True
            payload["queued"] = self.plane.queue.depth()
        return payload

    def _rpc_metrics(self) -> dict:
        metrics = _jsonable(self.platform.metrics())
        if self.plane is not None:
            stats = self.plane.queue.stats()
            metrics["service"] = _jsonable(stats)
        return metrics

    def _rpc_requests(self) -> list:
        return [self._request_summary(r) for r in self.platform.requests]

    def _rpc_request_detail(self, uid: int) -> dict:
        for request in self.platform.requests:
            if request.uid == uid:
                detail = self._request_summary(request)
                detail["shards"] = [
                    {"name": s.name, "size_gb": s.size_gb, "path": s.path}
                    for s in request.brokered.plan
                ]
                detail["jobs"] = [
                    {
                        "name": job.name,
                        "state": job.state.value,
                        "stage": job.current_stage,
                        "n_stages": job.n_stages,
                    }
                    for job in request.jobs
                ]
                return detail
        raise RpcError(f"no request with id {uid}")

    def _rpc_workers(self) -> dict:
        pools = self.platform.scheduler.pools
        return {
            "idle": [
                {"uid": w.uid, "class": w.worker_class, "cores": w.cores,
                 "tier": w.tier}
                for w in pools.idle_workers
            ],
            "busy": [
                {"uid": w.uid, "class": w.worker_class, "cores": w.cores,
                 "tier": w.tier}
                for w in sorted(pools.busy_workers, key=lambda w: w.uid)
            ],
            "booting": sum(pools.booting_for_stage.values()),
            "hires": dict(pools.hires),
            "repools": pools.repools,
        }

    @staticmethod
    def _job_fields(body: dict) -> tuple[str, float, str]:
        try:
            name = str(body["name"])
            size_gb = float(body["size_gb"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RpcError(
                f"submit requires name and size_gb: {exc}"
            ) from exc
        if size_gb <= 0:
            raise RpcError(f"size_gb must be positive, got {size_gb}")
        fmt_text = str(body.get("format", "fastq"))
        try:
            DataFormat(fmt_text)
        except ValueError:
            raise RpcError(f"unknown format {fmt_text!r}") from None
        return name, size_gb, fmt_text

    def _rpc_submit(self, body: dict) -> dict:
        name, size_gb, fmt_text = self._job_fields(body)
        dataset = DatasetDescriptor.from_size(
            name, DataFormat(fmt_text), size_gb
        )
        request = self.platform.submit_analysis(dataset)
        return self._request_summary(request)

    def _rpc_advance(self, body: dict) -> dict:
        until = body.get("until")
        if until is not None:
            try:
                until = float(until)
            except (TypeError, ValueError) as exc:
                raise RpcError(f"bad until: {exc}") from exc
            if until < self.platform.env.now:
                raise RpcError(
                    f"until={until} is in the simulated past "
                    f"(now={self.platform.env.now})"
                )
        self.platform.run(until=until)
        return {"now": self.platform.env.now}

    def _rpc_kb_query(self, body: dict) -> dict:
        sparql = body.get("sparql")
        if not isinstance(sparql, str) or not sparql.strip():
            raise RpcError("kb/query requires a 'sparql' string")
        try:
            rows = self.platform.kb.query(sparql)
        except SparqlError as exc:
            raise RpcError(f"bad SPARQL: {exc}") from exc
        return {"rows": _jsonable(rows)}

    def _request_summary(self, request: AnalysisRequest) -> dict:
        summary = {
            "id": request.uid,
            "dataset": request.dataset.name,
            "size_gb": request.dataset.size_gb,
            "n_subtasks": request.n_subtasks,
            "complete": request.is_complete,
            "advice": str(request.brokered.advice),
        }
        if request.completed_at is not None:
            summary["latency"] = request.latency()
        return summary

    # -- service-plane verbs -------------------------------------------------
    def _require_plane(self) -> "ServicePlane":
        if self.plane is None:
            raise RpcError(
                "no service plane attached (start with scan-sim serve "
                "--service)",
                status=404,
                code="not_found",
            )
        return self.plane

    @staticmethod
    def _job_summary(job) -> dict:
        return {
            "uid": job.uid,
            "tenant": job.tenant,
            "name": job.name,
            "size_gb": job.size_gb,
            "format": job.data_format,
            "weight": job.weight,
            "deadline": job.deadline,
            "seq": job.seq,
            "attempts": job.attempts,
        }

    def _rpc_tenant_submit(self, tenant: str, body: dict) -> tuple[int, dict]:
        plane = self._require_plane()
        name, size_gb, fmt_text = self._job_fields(body)
        try:
            weight = float(body.get("weight", 1.0))
            deadline = (
                None if body.get("deadline") is None
                else float(body["deadline"])
            )
        except (TypeError, ValueError) as exc:
            raise RpcError(f"bad weight/deadline: {exc}") from exc
        uid = body.get("uid")
        if uid is not None:
            uid = str(uid)
        decision, job = plane.submit(
            tenant,
            name=name,
            size_gb=size_gb,
            data_format=fmt_text,
            weight=weight,
            deadline=deadline,
            uid=uid,
        )
        if not decision.accepted:
            status, code = _ADMISSION_STATUS.get(
                decision.reason, (429, decision.reason)
            )
            raise RpcError(
                f"job rejected for tenant {tenant!r}: {decision.reason}",
                status=status,
                code=code,
            )
        return 202, {
            "accepted": True,
            "job": self._job_summary(job),
            "depth": plane.queue.depth(tenant),
            "shed": None if decision.shed is None else decision.shed.uid,
        }

    def _rpc_tenants(self) -> dict:
        plane = self._require_plane()
        return {
            "tenants": [
                plane.tenant_status(tenant) for tenant in plane.tenants()
            ]
        }

    def _rpc_tenant_queue(self, tenant: str) -> dict:
        plane = self._require_plane()
        status = plane.tenant_status(tenant)
        status["jobs"] = [
            self._job_summary(job)
            for job in plane.queue.snapshot(tenant, limit=100)
        ]
        return status

    def _rpc_pop(self, body: dict) -> dict:
        plane = self._require_plane()
        tenant = body.get("tenant")
        if tenant is not None:
            tenant = str(tenant)
        job = plane.pop(tenant=tenant)
        if job is None:
            return {"job": None}
        return {"job": self._job_summary(job)}

    def _rpc_finish(self, body: dict) -> dict:
        plane = self._require_plane()
        uid = body.get("uid")
        if not isinstance(uid, str) or not uid:
            raise RpcError("finish requires a 'uid' string")
        outcome = str(body.get("outcome", "completed"))
        if outcome not in ("completed", "failed"):
            raise RpcError(
                f"outcome must be completed or failed, got {outcome!r}"
            )
        try:
            job = plane.finish(uid, outcome)
        except SCANError as exc:
            raise RpcError(str(exc), status=404, code="not_found") from exc
        return {"finished": self._job_summary(job), "outcome": outcome}

    def _rpc_drain(self, body: dict) -> dict:
        plane = self._require_plane()
        max_jobs = body.get("max_jobs")
        if max_jobs is not None:
            try:
                max_jobs = int(max_jobs)
            except (TypeError, ValueError) as exc:
                raise RpcError(f"bad max_jobs: {exc}") from exc
            if max_jobs < 1:
                raise RpcError("max_jobs must be >= 1")
        until = body.get("until")
        if until is not None:
            try:
                until = float(until)
            except (TypeError, ValueError) as exc:
                raise RpcError(f"bad until: {exc}") from exc
            if until < self.platform.env.now:
                raise RpcError(
                    f"until={until} is in the simulated past "
                    f"(now={self.platform.env.now})"
                )
        outcomes = plane.drain(max_jobs=max_jobs, until=until)
        return {
            "outcomes": outcomes,
            "now": self.platform.env.now,
            "queued": plane.queue.depth(),
            "in_flight": len(plane._in_flight),
        }

    def _rpc_service_state(self) -> dict:
        return _jsonable(self._require_plane().state_summary())

    # -- HTTP plumbing -----------------------------------------------------------
    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            # A stalled client (Content-Length larger than what it sends)
            # hits this socket timeout instead of pinning its thread.
            timeout = server.read_timeout_s

            # Silence per-request stderr logging.
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def _reply(
                self, status: int, payload: Any, content_type: str = None
            ) -> None:
                if content_type is None:
                    body = json.dumps(payload).encode("utf-8")
                    content_type = "application/json"
                else:
                    body = payload.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _reply_error(self, status: int, code: str, message: str) -> None:
                self._reply(
                    status, {"error": {"code": code, "message": message}}
                )

            def _read_body(self) -> Optional[dict]:
                """Bounded, validated body read; None means already replied."""
                raw_length = self.headers.get("Content-Length")
                if raw_length is None:
                    return {}
                try:
                    length = int(raw_length)
                except ValueError:
                    self._reply_error(
                        400, "bad_request",
                        f"invalid Content-Length {raw_length!r}",
                    )
                    return None
                if length < 0:
                    self._reply_error(
                        400, "bad_request", "negative Content-Length"
                    )
                    return None
                if length > server.max_body_bytes:
                    # Refuse before reading a byte; close the connection
                    # since the unread body would desync keep-alive.
                    self.close_connection = True
                    self._reply_error(
                        413, "payload_too_large",
                        f"body of {length} bytes exceeds the "
                        f"{server.max_body_bytes}-byte limit",
                    )
                    return None
                raw = self.rfile.read(length) if length else b"{}"
                try:
                    body = json.loads(raw or b"{}")
                except json.JSONDecodeError as exc:
                    self._reply_error(400, "bad_json", f"bad JSON: {exc}")
                    return None
                if not isinstance(body, dict):
                    self._reply_error(
                        400, "bad_json",
                        f"body must be a JSON object, got "
                        f"{type(body).__name__}",
                    )
                    return None
                return body

            def _dispatch(self, method: str) -> None:
                path = self.path.split("?", 1)[0].rstrip("/")
                body: dict = {}
                if method == "POST":
                    maybe_body = self._read_body()
                    if maybe_body is None:
                        return
                    body = maybe_body
                try:
                    with server._lock:
                        result = self._route(method, path, body)
                except RpcError as exc:
                    self._reply_error(exc.status, exc.code, str(exc))
                except Exception as exc:  # surface simulation errors as 500
                    self._reply_error(
                        500, "internal", f"{type(exc).__name__}: {exc}"
                    )
                else:
                    if isinstance(result, tuple):
                        status, payload = result
                        self._reply(status, payload)
                    elif isinstance(result, str):
                        self._reply(
                            200, result, content_type="text/plain; version=0.0.4"
                        )
                    else:
                        self._reply(200, result)

            def _route(self, method: str, path: str, body: dict) -> Any:
                if method == "GET":
                    if path == "/health":
                        return server._rpc_health()
                    if path == "/metrics":
                        accept = self.headers.get("Accept", "")
                        if server.plane is not None and (
                            "text/plain" in accept
                        ):
                            return server.plane.metrics_text()
                        return server._rpc_metrics()
                    if path == "/requests":
                        return server._rpc_requests()
                    if path.startswith("/requests/"):
                        tail = path.rsplit("/", 1)[1]
                        try:
                            uid = int(tail)
                        except ValueError:
                            raise RpcError(f"bad request id {tail!r}") from None
                        return server._rpc_request_detail(uid)
                    if path == "/workers":
                        return server._rpc_workers()
                    if path == "/tenants":
                        return server._rpc_tenants()
                    if path.startswith("/tenants/") and path.endswith("/queue"):
                        tenant = path[len("/tenants/"):-len("/queue")]
                        if tenant and "/" not in tenant:
                            return server._rpc_tenant_queue(tenant)
                    if path == "/service/state":
                        return server._rpc_service_state()
                if method == "POST":
                    if path == "/submit":
                        return server._rpc_submit(body)
                    if path == "/advance":
                        return server._rpc_advance(body)
                    if path == "/kb/query":
                        return server._rpc_kb_query(body)
                    if path.startswith("/tenants/") and path.endswith("/jobs"):
                        tenant = path[len("/tenants/"):-len("/jobs")]
                        if tenant and "/" not in tenant:
                            return server._rpc_tenant_submit(tenant, body)
                    if path == "/pop":
                        return server._rpc_pop(body)
                    if path == "/finish":
                        return server._rpc_finish(body)
                    if path == "/drain":
                        return server._rpc_drain(body)
                raise RpcError(
                    f"no route for {method} {path}", code="bad_route"
                )

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                self._dispatch("GET")

            def do_POST(self) -> None:  # noqa: N802
                self._dispatch("POST")

        return Handler
