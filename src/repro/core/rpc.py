"""HTTP RPC front-end for the SCAN platform.

The paper's prototype scheduler "is implemented in Python, using the
CherryPy web framework to process HTTP requests.  Its interface is realized
using HTTP RPCs" (Section III-B).  This module provides that surface with
only the standard library: a threaded :mod:`http.server` exposing the
platform's verbs as JSON-over-HTTP endpoints.

Endpoints
---------
``GET  /health``            liveness probe
``GET  /metrics``           platform metrics snapshot
``GET  /requests``          all analysis requests (id, status, latency)
``GET  /requests/<id>``     one request's detail
``GET  /workers``           worker-pool population
``POST /submit``            body {"name", "size_gb", "format"} -> request id
``POST /advance``           body {"until": t} or {} -> run the simulation
``POST /kb/query``          body {"sparql": "..."} -> result rows

The simulated platform is single-threaded; a lock serialises handler
access so concurrent HTTP clients cannot interleave simulation steps.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.core.errors import SCANError
from repro.core.platform import AnalysisRequest, SCANPlatform
from repro.genomics.datasets import DataFormat, DatasetDescriptor
from repro.ontology.sparql import SparqlError
from repro.ontology.triples import IRI

__all__ = ["ScanRpcServer", "RpcError"]


class RpcError(SCANError):
    """An RPC-layer failure (bad route, malformed body)."""


def _jsonable(value: Any) -> Any:
    """Coerce platform values (IRIs, enums) into JSON-encodable ones."""
    if isinstance(value, IRI):
        return str(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "value") and not isinstance(value, (int, float)):
        return value.value  # enums
    return value


class ScanRpcServer:
    """A threaded HTTP JSON-RPC wrapper around one :class:`SCANPlatform`.

    Usage::

        server = ScanRpcServer(platform, port=0)   # 0 = ephemeral port
        server.start()
        ... urllib / curl against http://127.0.0.1:{server.port} ...
        server.stop()
    """

    def __init__(self, platform: SCANPlatform, host: str = "127.0.0.1", port: int = 0):
        self.platform = platform
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a background thread."""
        if self._thread is not None:
            raise RpcError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="scan-rpc", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- RPC verbs (called under the lock) -----------------------------------
    def _rpc_health(self) -> dict:
        return {"status": "ok", "now": self.platform.env.now}

    def _rpc_metrics(self) -> dict:
        return _jsonable(self.platform.metrics())

    def _rpc_requests(self) -> list:
        return [self._request_summary(r) for r in self.platform.requests]

    def _rpc_request_detail(self, uid: int) -> dict:
        for request in self.platform.requests:
            if request.uid == uid:
                detail = self._request_summary(request)
                detail["shards"] = [
                    {"name": s.name, "size_gb": s.size_gb, "path": s.path}
                    for s in request.brokered.plan
                ]
                detail["jobs"] = [
                    {
                        "name": job.name,
                        "state": job.state.value,
                        "stage": job.current_stage,
                        "n_stages": job.n_stages,
                    }
                    for job in request.jobs
                ]
                return detail
        raise RpcError(f"no request with id {uid}")

    def _rpc_workers(self) -> dict:
        pools = self.platform.scheduler.pools
        return {
            "idle": [
                {"uid": w.uid, "class": w.worker_class, "cores": w.cores,
                 "tier": w.tier.value}
                for w in pools.idle_workers
            ],
            "busy": [
                {"uid": w.uid, "class": w.worker_class, "cores": w.cores,
                 "tier": w.tier.value}
                for w in sorted(pools.busy_workers, key=lambda w: w.uid)
            ],
            "booting": sum(pools.booting_for_stage.values()),
            "hires": {t.value: n for t, n in pools.hires.items()},
            "repools": pools.repools,
        }

    def _rpc_submit(self, body: dict) -> dict:
        try:
            name = str(body["name"])
            size_gb = float(body["size_gb"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RpcError(f"submit requires name and size_gb: {exc}") from exc
        fmt_text = str(body.get("format", "fastq"))
        try:
            fmt = DataFormat(fmt_text)
        except ValueError:
            raise RpcError(f"unknown format {fmt_text!r}") from None
        dataset = DatasetDescriptor.from_size(name, fmt, size_gb)
        request = self.platform.submit_analysis(dataset)
        return self._request_summary(request)

    def _rpc_advance(self, body: dict) -> dict:
        until = body.get("until")
        if until is not None:
            until = float(until)
            if until < self.platform.env.now:
                raise RpcError(
                    f"until={until} is in the simulated past "
                    f"(now={self.platform.env.now})"
                )
        self.platform.run(until=until)
        return {"now": self.platform.env.now}

    def _rpc_kb_query(self, body: dict) -> dict:
        sparql = body.get("sparql")
        if not isinstance(sparql, str) or not sparql.strip():
            raise RpcError("kb/query requires a 'sparql' string")
        try:
            rows = self.platform.kb.query(sparql)
        except SparqlError as exc:
            raise RpcError(f"bad SPARQL: {exc}") from exc
        return {"rows": _jsonable(rows)}

    def _request_summary(self, request: AnalysisRequest) -> dict:
        summary = {
            "id": request.uid,
            "dataset": request.dataset.name,
            "size_gb": request.dataset.size_gb,
            "n_subtasks": request.n_subtasks,
            "complete": request.is_complete,
            "advice": str(request.brokered.advice),
        }
        if request.completed_at is not None:
            summary["latency"] = request.latency()
        return summary

    # -- HTTP plumbing -----------------------------------------------------------
    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            # Silence per-request stderr logging.
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def _reply(self, status: int, payload: Any) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _dispatch(self, method: str) -> None:
                path = self.path.rstrip("/")
                body: dict = {}
                if method == "POST":
                    length = int(self.headers.get("Content-Length", 0))
                    raw = self.rfile.read(length) if length else b"{}"
                    try:
                        body = json.loads(raw or b"{}")
                    except json.JSONDecodeError as exc:
                        self._reply(400, {"error": f"bad JSON: {exc}"})
                        return
                try:
                    with server._lock:
                        result = self._route(method, path, body)
                except RpcError as exc:
                    self._reply(400, {"error": str(exc)})
                except Exception as exc:  # surface simulation errors as 500
                    self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
                else:
                    self._reply(200, result)

            def _route(self, method: str, path: str, body: dict) -> Any:
                if method == "GET":
                    if path == "/health":
                        return server._rpc_health()
                    if path == "/metrics":
                        return server._rpc_metrics()
                    if path == "/requests":
                        return server._rpc_requests()
                    if path.startswith("/requests/"):
                        tail = path.rsplit("/", 1)[1]
                        try:
                            uid = int(tail)
                        except ValueError:
                            raise RpcError(f"bad request id {tail!r}") from None
                        return server._rpc_request_detail(uid)
                    if path == "/workers":
                        return server._rpc_workers()
                if method == "POST":
                    if path == "/submit":
                        return server._rpc_submit(body)
                    if path == "/advance":
                        return server._rpc_advance(body)
                    if path == "/kb/query":
                        return server._rpc_kb_query(body)
                raise RpcError(f"no route for {method} {path}")

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                self._dispatch("GET")

            def do_POST(self) -> None:  # noqa: N802
                self._dispatch("POST")

        return Handler
