"""The SCANPlatform facade: Data Broker + Scheduler + Workers in one box.

This is the integrated platform of the paper's Figure 2: an analysis
request arrives with a dataset, the Data Broker consults the knowledge
base and shards the input, the Scheduler runs one pipeline per shard over
the elastic cloud, task logs flow back into the knowledge base, and the
shard outputs are merged into the final result.

The facade runs in-process over the simulation kernel (the prototype's
CherryPy HTTP RPC layer is an interface detail the evaluation never
exercises); the API surface -- submit / advance / poll / metrics -- mirrors
the prototype's RPC verbs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.registry import ApplicationRegistry, default_registry
from repro.broker.broker import BrokeredJob, DataBroker
from repro.broker.staging import DataStager
from repro.cloud.celar import CelarManager
from repro.cloud.faults import FaultInjector, FaultPlan
from repro.cloud.infrastructure import Infrastructure
from repro.cloud.storage import ReplicatedKVStore, SharedFilesystem
from repro.core.config import AllocationAlgorithm, PlatformConfig
from repro.core.errors import SCANError
from repro.core.events import EventLog
from repro.desim.engine import Environment
from repro.desim.rng import RandomStreams
from repro.genomics.datasets import DatasetDescriptor
from repro.core.bus import EventBus
from repro.knowledge.kb import SCANKnowledgeBase
from repro.knowledge.log_ingest import KnowledgeIngestor
from repro.knowledge.plane import (
    KnowledgePlane,
    OnlineRefitter,
    make_estimate_provider,
)
from repro.scheduler.allocation import (
    find_best_constant_plan,
    make_allocation_policy,
)
from repro.scheduler.rewards import RewardFunction, make_reward
from repro.scheduler.scaling import make_scaling_policy
from repro.scheduler.scheduler import SCANScheduler
from repro.scheduler.tasks import Job

__all__ = ["SCANPlatform", "AnalysisRequest"]

_request_ids = itertools.count(1)


@dataclass
class AnalysisRequest:
    """A user's whole-analysis request and its live status."""

    uid: int
    dataset: DatasetDescriptor
    brokered: BrokeredJob
    jobs: list[Job]
    submit_time: float
    merged_output: Optional[DatasetDescriptor] = None
    completed_at: Optional[float] = None

    @property
    def n_subtasks(self) -> int:
        return len(self.jobs)

    @property
    def is_complete(self) -> bool:
        return all(job.is_complete for job in self.jobs)

    def latency(self) -> float:
        """Submission to completion of the last shard's last stage."""
        if self.completed_at is None:
            raise SCANError(f"request {self.uid} has not completed")
        return self.completed_at - self.submit_time


class SCANPlatform:
    """An in-process SCAN deployment over the simulated cloud.

    Typical use::

        platform = SCANPlatform(PlatformConfig.paper_defaults())
        platform.bootstrap_knowledge()          # offline GATK profiling
        request = platform.submit_analysis(dataset)
        platform.run(until=200.0)
        print(request.is_complete, platform.metrics())
    """

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        registry: Optional[ApplicationRegistry] = None,
        capture_events: bool = True,
        kb_sample_every: int = 1,
    ) -> None:
        self.config = (config or PlatformConfig()).validate()
        self.registry = registry if registry is not None else default_registry()
        self.app = self.registry.get(self.config.application)

        self.env = Environment()
        self.log = EventLog(capture=capture_events)
        # Telemetry is opt-in; the import stays lazy so a telemetry-disabled
        # platform never even loads the repro.telemetry package.
        self.telemetry = None
        if self.config.telemetry.enabled:
            from repro.telemetry.hub import TelemetryHub

            self.telemetry = TelemetryHub.from_config(self.config.telemetry)
        _tracer = self.telemetry.tracer if self.telemetry is not None else None
        self.infrastructure = Infrastructure(
            self.env,
            private_cores=self.config.cloud.private_cores,
            private_cost=self.config.cloud.private_core_cost,
            public_cores=self.config.cloud.public_cores,
            public_cost=self.config.cloud.public_core_cost,
        )
        # The chaos layer, seeded from the platform's configured seed.
        plan = FaultPlan.from_config(self.config.faults, self.config.cloud)
        self.injector: Optional[FaultInjector] = None
        if plan.any_active:
            self.injector = FaultInjector(
                plan, RandomStreams(self.config.simulation.seed)
            )
        self.celar = CelarManager(
            self.env,
            self.infrastructure,
            startup_penalty_tu=self.config.cloud.startup_penalty_tu,
            allowed_sizes=self.config.cloud.instance_sizes,
            injector=self.injector,
            tracer=_tracer,
        )
        self.filesystem = SharedFilesystem(self.env)
        self.kv_store = ReplicatedKVStore(self.env)
        self.stager = DataStager(self.env, self.filesystem)

        self.kb = SCANKnowledgeBase()
        self.ingestor = KnowledgeIngestor(
            self.kb, self.log, sample_every=kb_sample_every
        )
        # One knowledge plane serves every estimate consumer: the broker's
        # shard advisor, the scheduler's pipeline estimator, and (via the
        # allocation context) the learned policy's cold-start priors.
        self.bus = EventBus()
        self.plane = KnowledgePlane()
        self.estimates = make_estimate_provider(
            self.config.knowledge.provider, app=self.app, plane=self.plane
        )
        self.refitter: Optional[OnlineRefitter] = None
        if self.config.knowledge.provider != "static":
            self.refitter = OnlineRefitter(
                self.plane,
                refit_every=self.config.knowledge.refit_every,
                min_samples=self.config.knowledge.min_samples,
                max_observations=self.config.knowledge.max_observations,
                metrics=(
                    self.telemetry.metrics
                    if self.telemetry is not None
                    else None
                ),
                clock=lambda: self.env.now,
            )
            self.refitter.attach(self.bus)
        self.broker = DataBroker(
            self.kb,
            config=self.config.broker,
            event_log=self.log,
            clock=lambda: self.env.now,
            tracer=_tracer,
            plane=self.plane,
        )

        self.reward: RewardFunction = make_reward(self.config.reward)
        constant_plan = None
        if self.config.scheduler.allocation is AllocationAlgorithm.BEST_CONSTANT:
            constant_plan = find_best_constant_plan(
                self.app,
                self.reward,
                core_cost=self.config.cloud.private_core_cost,
                job_size=self.config.workload.job_size_mean,
                thread_choices=self.config.scheduler.thread_choices,
                input_gb=self.config.workload.job_size_mean
                * self.config.workload.size_unit_gb,
            )
        self.scheduler = SCANScheduler(
            self.env,
            self.app,
            self.infrastructure,
            self.celar,
            self.reward,
            make_allocation_policy(
                self.config.scheduler.allocation, constant_plan=constant_plan
            ),
            make_scaling_policy(
                self.config.scheduler.scaling,
                horizon_tu=self.config.scheduler.predictive_horizon,
            ),
            config=self.config.scheduler,
            event_log=self.log,
            faults=self.injector,
            resilience=self.config.resilience,
            telemetry=self.telemetry,
            bus=self.bus,
            estimates=self.estimates,
        )
        if self.telemetry is not None:
            self.telemetry.bind(self.env)
        self.scheduler.start()
        self.requests: list[AnalysisRequest] = []
        self._job_counter = itertools.count(1)

    # -- knowledge bootstrap -------------------------------------------------
    def bootstrap_knowledge(self, **kwargs) -> int:
        """Profile the configured application offline into the KB.

        This is the paper's initial knowledge-base creation (profiling runs
        of 1-9 GB inputs across thread counts).  Returns the number of
        observations recorded.
        """
        return self.kb.bootstrap_from_model(self.app, **kwargs)

    # -- analysis submission ----------------------------------------------------
    def submit_analysis(self, dataset: DatasetDescriptor) -> AnalysisRequest:
        """Broker, shard and schedule one whole-analysis request."""
        brokered = self.broker.prepare(
            app=self.app.name,
            dataset=dataset,
            parallel_workers=max(
                self.config.cloud.private_cores
                // max(self.config.cloud.instance_sizes[0], 1),
                1,
            ),
            core_cost_per_tu=self.config.cloud.private_core_cost,
            reward_fn=self.reward,
        )
        jobs: list[Job] = []
        for shard in brokered.plan:
            # Job size stays in reward units; the shard's GB drive the
            # stage-time models.
            size_units = max(
                shard.size_gb / max(self.config.workload.size_unit_gb, 1e-9),
                1e-6,
            )
            job = Job(
                app=self.app,
                size=size_units,
                submit_time=self.env.now,
                name=f"req{len(self.requests) + 1}-{shard.name}",
                input_gb=shard.size_gb,
            )
            jobs.append(job)
        request = AnalysisRequest(
            uid=next(_request_ids),
            dataset=dataset,
            brokered=brokered,
            jobs=jobs,
            submit_time=self.env.now,
        )
        self.requests.append(request)
        for shard, job in zip(brokered.plan, jobs):
            self.stager.prefetch(shard)
            self.scheduler.submit(job)
        return request

    # -- running ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulated deployment (to *until*, or to quiescence)."""
        self.env.run(until=until)
        self._finalize_requests()

    def run_until_complete(self, request: AnalysisRequest, limit: float = 1e7) -> None:
        """Advance time until *request* completes (bounded by *limit*)."""
        while not request.is_complete:
            if self.env.peek() == float("inf") or self.env.now > limit:
                raise SCANError(
                    f"request {request.uid} cannot make progress "
                    f"(now={self.env.now})"
                )
            self.env.step()
        self._finalize_requests()

    def _finalize_requests(self) -> None:
        for request in self.requests:
            if request.completed_at is None and request.is_complete:
                request.completed_at = max(
                    job.completed_at for job in request.jobs  # type: ignore[arg-type]
                )
                outputs = [
                    shard.derive(self.app.output_format, "out", size_ratio=0.01)
                    for shard in request.brokered.plan
                ]
                if len(outputs) > 1:
                    request.merged_output = self.broker.merge_outputs(
                        outputs, name=f"{request.dataset.name}.result"
                    )
                else:
                    request.merged_output = outputs[0]

    # -- reporting ------------------------------------------------------------------
    def request_reward(self, request: AnalysisRequest) -> float:
        """Whole-request reward: R(request latency, total input size).

        The paper's users "offer a reward ... for completion of their whole
        analysis pipeline", so the request level (not the per-shard level)
        is where the user-visible reward lives.
        """
        size_units = request.dataset.size_gb / max(
            self.config.workload.size_unit_gb, 1e-9
        )
        return self.reward(request.latency(), size_units)

    def metrics(self) -> dict[str, float]:
        """A snapshot of platform-level metrics."""
        sched = self.scheduler
        return {
            "now": self.env.now,
            "requests": float(len(self.requests)),
            "requests_complete": float(
                sum(1 for r in self.requests if r.is_complete)
            ),
            "jobs_completed": float(len(sched.completed_jobs)),
            "total_reward": sched.total_reward,
            "total_cost": sched.total_cost(),
            "profit": sched.profit(),
            "kb_instances": float(self.kb.instance_count()),
            "private_utilization": self.infrastructure.base.utilization(),
            "staged_files": float(self.stager.staged_count),
        }
