"""Exception hierarchy for the SCAN platform."""

from __future__ import annotations

__all__ = [
    "SCANError",
    "ConfigurationError",
    "SchedulingError",
    "BrokerError",
    "KnowledgeBaseError",
    "CloudError",
    "WorkloadError",
]


class SCANError(Exception):
    """Base class for all SCAN platform errors."""


class ConfigurationError(SCANError):
    """An invalid or inconsistent platform/simulation configuration."""


class SchedulingError(SCANError):
    """Scheduler invariant violation or invalid scheduling request."""


class BrokerError(SCANError):
    """Data Broker failure (unshardale format, bad shard plan, ...)."""


class KnowledgeBaseError(SCANError):
    """Knowledge-base failure (missing profile, malformed query, ...)."""


class CloudError(SCANError):
    """Simulated-cloud failure (tier exhausted, invalid instance size)."""


class WorkloadError(SCANError):
    """Workload generation/trace failure."""
