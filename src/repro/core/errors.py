"""Exception hierarchy for the SCAN platform."""

from __future__ import annotations

__all__ = [
    "SCANError",
    "ConfigurationError",
    "SchedulingError",
    "BrokerError",
    "KnowledgeBaseError",
    "CloudError",
    "TransientDeployError",
    "WorkloadError",
]


class SCANError(Exception):
    """Base class for all SCAN platform errors."""


class ConfigurationError(SCANError):
    """An invalid or inconsistent platform/simulation configuration."""


class SchedulingError(SCANError):
    """Scheduler invariant violation or invalid scheduling request."""


class BrokerError(SCANError):
    """Data Broker failure (unshardale format, bad shard plan, ...)."""


class KnowledgeBaseError(SCANError):
    """Knowledge-base failure (missing profile, malformed query, ...)."""


class CloudError(SCANError):
    """Simulated-cloud failure (tier exhausted, invalid instance size)."""


class TransientDeployError(CloudError):
    """A CELAR deploy request failed transiently (provisioning error).

    Retryable: the capacity check passed but the provider bounced the
    request; the scheduler re-dispatches after a short delay instead of
    treating it as a scheduling invariant violation.
    """


class WorkloadError(SCANError):
    """Workload generation/trace failure."""
