"""Ready-made workflows matching the paper's named analyses.

The SCAN ontology declares "over 10 different genome analysis workflows";
this module makes the headline ones executable:

- :func:`variation_detection_workflow` -- the paper's main chain:
  BWA alignment then the 7-stage GATK variant discovery (Figure 1's
  "Gene alignment -> Gene variation detection").
- :func:`mirna_fusion_workflow` -- alignment, somatic calling against a
  matched normal, integrative interpretation.
- :func:`integrative_figure1_workflow` -- the full Figure 1 fan-in: the
  NGS branch (BWA -> GATK), the proteomics branch (MaxQuant) and the
  imaging branch (CellProfiler) converging on Cytoscape
  ("Genotype2phenotype").
- :func:`gatk_chain_workflow` -- the seed platform's 7-stage GATK
  pipeline expressed as a single-step spec; compiled, it is a plain
  chain, so running it through the DAG scheduler reproduces the legacy
  linear pipeline byte for byte (the `dag-equivalence` CI job pins this).
- :func:`star_fanout_workflow` -- a diamond: one STAR alignment fans out
  to two independent callers whose outputs fan back into an integrative
  step.  The estimator's critical-path ETT and per-branch knowledge
  refitting are exercised (and unit-tested) on exactly this shape.

Scheduler-runnable specs also register in the :data:`WORKFLOWS` plugin
registry (``scan-sim run --workflow NAME``, ``scan-sim workflows``);
out-of-tree DAGs register the same way::

    from repro.workflows.library import WORKFLOWS

    @WORKFLOWS.register("mylab_flow")
    def _mylab_flow():
        return WorkflowSpec(...)
"""

from __future__ import annotations

from typing import Optional

from repro.apps.registry import ApplicationRegistry
from repro.core.plugins import Registry
from repro.workflows.spec import WorkflowSpec, WorkflowStep

__all__ = [
    "WORKFLOWS",
    "make_workflow",
    "workflow_names",
    "variation_detection_workflow",
    "mirna_fusion_workflow",
    "integrative_figure1_workflow",
    "gatk_chain_workflow",
    "star_fanout_workflow",
]

#: Plugin registry of workflow specs (``() -> WorkflowSpec``).
WORKFLOWS: "Registry[WorkflowSpec]" = Registry("workflow")


def make_workflow(name: str) -> WorkflowSpec:
    """The registered spec called *name* (ConfigurationError if unknown)."""
    return WORKFLOWS.create(name)


def workflow_names() -> list[str]:
    """Registered workflow names, sorted."""
    return WORKFLOWS.names()


@WORKFLOWS.register("variation_detection")
def variation_detection_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """FASTQ reads -> aligned BAM -> VCF of suspected mutations."""
    return WorkflowSpec(
        name="VariationDetection",
        steps=[
            # Alignment roughly preserves data volume (SAM ~ FASTQ); the
            # caller reduces it drastically.
            WorkflowStep("align", "bwa", output_ratio=1.0),
            WorkflowStep("call", "gatk", output_ratio=0.01),
        ],
        edges=[("align", "call")],
        registry=registry,
    )


@WORKFLOWS.register("mirna_fusion")
def mirna_fusion_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """Tumour/normal fusion detection: align both, somatic call, integrate."""
    return WorkflowSpec(
        name="MiRNAFusionDetection",
        steps=[
            WorkflowStep("align_tumour", "bwa", output_ratio=1.0),
            WorkflowStep("align_normal", "bwa", output_ratio=1.0),
            WorkflowStep("somatic", "mutect", output_ratio=0.005),
            WorkflowStep("interpret", "cytoscape", output_ratio=0.5),
        ],
        edges=[
            ("align_tumour", "somatic"),
            ("align_normal", "somatic"),
            ("somatic", "interpret"),
        ],
        registry=registry,
    )


@WORKFLOWS.register("integrative_figure1")
def integrative_figure1_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """The full Figure 1 data flow: three omics branches -> integration.

    NGS (Illumina HiSeq) -> BWA -> GATK; mass spectrometry -> MaxQuant;
    microscopy -> CellProfiler; everything -> Cytoscape.
    """
    return WorkflowSpec(
        name="IntegrativeNetworkAnalysis",
        steps=[
            WorkflowStep("align", "bwa", output_ratio=1.0),
            WorkflowStep("variants", "gatk", output_ratio=0.01),
            WorkflowStep("peptides", "maxquant", output_ratio=0.05),
            WorkflowStep("phenotypes", "cellprofiler", output_ratio=0.002),
            WorkflowStep("integrate", "cytoscape", output_ratio=0.1),
        ],
        edges=[
            ("align", "variants"),
            ("variants", "integrate"),
            ("peptides", "integrate"),
            ("phenotypes", "integrate"),
        ],
        registry=registry,
    )


@WORKFLOWS.register("gatk_chain")
def gatk_chain_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """The seed 7-stage GATK pipeline as a single-step (chain) spec.

    Compiling this spec yields one node per GATK stage with unscaled
    input -- structurally identical to the implicit chain every legacy job
    carries, so the DAG scheduler runs it through the exact legacy fast
    paths and sweep reports stay byte-identical to the pre-refactor
    fixtures.
    """
    return WorkflowSpec(
        name="gatk_chain",
        steps=[WorkflowStep("call", "gatk", output_ratio=0.01)],
        edges=[],
        registry=registry,
    )


@WORKFLOWS.register("star_fanout")
def star_fanout_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """A diamond DAG: STAR alignment fans out to two callers, fans back in.

    One alignment-heavy entry (STAR) feeds two independent variant
    callers -- germline (GATK) and somatic (MuTect) -- whose call sets
    converge on a Cytoscape integration step.  The two caller branches
    run concurrently once alignment lands, so makespan follows the
    *longest* branch, not the sum: the critical-path ETT showcase.
    """
    return WorkflowSpec(
        name="star_fanout",
        steps=[
            WorkflowStep("align", "star", output_ratio=0.9),
            WorkflowStep("germline", "gatk", output_ratio=0.01),
            WorkflowStep("somatic", "mutect", output_ratio=0.005),
            WorkflowStep("integrate", "cytoscape", output_ratio=0.1),
        ],
        edges=[
            ("align", "germline"),
            ("align", "somatic"),
            ("germline", "integrate"),
            ("somatic", "integrate"),
        ],
        registry=registry,
    )
