"""Ready-made workflows matching the paper's named analyses.

The SCAN ontology declares "over 10 different genome analysis workflows";
this module makes the headline ones executable:

- :func:`variation_detection_workflow` -- the paper's main chain:
  BWA alignment then the 7-stage GATK variant discovery (Figure 1's
  "Gene alignment -> Gene variation detection").
- :func:`mirna_fusion_workflow` -- alignment, somatic calling against a
  matched normal, integrative interpretation.
- :func:`integrative_figure1_workflow` -- the full Figure 1 fan-in: the
  NGS branch (BWA -> GATK), the proteomics branch (MaxQuant) and the
  imaging branch (CellProfiler) converging on Cytoscape
  ("Genotype2phenotype").
"""

from __future__ import annotations

from typing import Optional

from repro.apps.registry import ApplicationRegistry
from repro.workflows.spec import WorkflowSpec, WorkflowStep

__all__ = [
    "variation_detection_workflow",
    "mirna_fusion_workflow",
    "integrative_figure1_workflow",
]


def variation_detection_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """FASTQ reads -> aligned BAM -> VCF of suspected mutations."""
    return WorkflowSpec(
        name="VariationDetection",
        steps=[
            # Alignment roughly preserves data volume (SAM ~ FASTQ); the
            # caller reduces it drastically.
            WorkflowStep("align", "bwa", output_ratio=1.0),
            WorkflowStep("call", "gatk", output_ratio=0.01),
        ],
        edges=[("align", "call")],
        registry=registry,
    )


def mirna_fusion_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """Tumour/normal fusion detection: align both, somatic call, integrate."""
    return WorkflowSpec(
        name="MiRNAFusionDetection",
        steps=[
            WorkflowStep("align_tumour", "bwa", output_ratio=1.0),
            WorkflowStep("align_normal", "bwa", output_ratio=1.0),
            WorkflowStep("somatic", "mutect", output_ratio=0.005),
            WorkflowStep("interpret", "cytoscape", output_ratio=0.5),
        ],
        edges=[
            ("align_tumour", "somatic"),
            ("align_normal", "somatic"),
            ("somatic", "interpret"),
        ],
        registry=registry,
    )


def integrative_figure1_workflow(
    registry: Optional[ApplicationRegistry] = None,
) -> WorkflowSpec:
    """The full Figure 1 data flow: three omics branches -> integration.

    NGS (Illumina HiSeq) -> BWA -> GATK; mass spectrometry -> MaxQuant;
    microscopy -> CellProfiler; everything -> Cytoscape.
    """
    return WorkflowSpec(
        name="IntegrativeNetworkAnalysis",
        steps=[
            WorkflowStep("align", "bwa", output_ratio=1.0),
            WorkflowStep("variants", "gatk", output_ratio=0.01),
            WorkflowStep("peptides", "maxquant", output_ratio=0.05),
            WorkflowStep("phenotypes", "cellprofiler", output_ratio=0.002),
            WorkflowStep("integrate", "cytoscape", output_ratio=0.1),
        ],
        edges=[
            ("align", "variants"),
            ("variants", "integrate"),
            ("peptides", "integrate"),
            ("phenotypes", "integrate"),
        ],
        registry=registry,
    )
