"""Execute workflow DAGs on the simulated cloud.

One :class:`~repro.scheduler.scheduler.SCANScheduler` per application class
("each worker has a software stack suitable for a particular application"),
all sharing the same infrastructure, CELAR manager and event log -- so a
busy GATK fleet and a MaxQuant fleet compete for the same 624 private
cores exactly as they would on the real platform.

A step's job is submitted the instant its last upstream job completes; the
engine watches completions via a per-job callback process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cloud.celar import CelarManager
from repro.cloud.infrastructure import Infrastructure
from repro.core.config import SchedulerConfig
from repro.core.errors import SCANError
from repro.core.events import EventKind, EventLog
from repro.desim.engine import Environment
from repro.scheduler.allocation import make_allocation_policy
from repro.scheduler.rewards import RewardFunction
from repro.scheduler.scaling import make_scaling_policy
from repro.scheduler.scheduler import SCANScheduler
from repro.scheduler.tasks import Job
from repro.workflows.spec import WorkflowError, WorkflowSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.knowledge.advisor import ShardAdvisor

__all__ = ["WorkflowEngine", "WorkflowRun"]


@dataclass
class WorkflowRun:
    """One live execution of a workflow spec.

    Each step maps to the list of jobs it spawned -- one job normally,
    several when the engine sharded a large shardable input (the Data
    Broker's parallelisation applied at the workflow level).
    """

    uid: int
    spec: WorkflowSpec
    entry_sizes: dict[str, float]
    submit_time: float
    jobs: dict[str, list[Job]] = field(default_factory=dict)
    completed_at: Optional[float] = None

    @property
    def is_complete(self) -> bool:
        return self.completed_at is not None

    def latency(self) -> float:
        """Submission to last-step completion (TU)."""
        if self.completed_at is None:
            raise SCANError(f"workflow run {self.uid} has not completed")
        return self.completed_at - self.submit_time

    def step_jobs(self, step: str) -> list[Job]:
        """The step's jobs (several when sharded)."""
        return list(self.jobs.get(step, ()))

    def step_complete(self, step: str) -> bool:
        """Whether every job of the step finished."""
        jobs = self.jobs.get(step)
        return bool(jobs) and all(j.is_complete for j in jobs)

    def step_completed_at(self, step: str) -> float:
        """When the step's last job finished."""
        if not self.step_complete(step):
            raise SCANError(f"step {step!r} has not completed")
        return max(j.completed_at for j in self.jobs[step])  # type: ignore[arg-type]

    def step_state(self) -> dict[str, str]:
        """Each step's status: pending | running | completed."""
        out = {}
        for name in self.spec.topological_order:
            jobs = self.jobs.get(name)
            if not jobs:
                out[name] = "pending"
            elif all(j.is_complete for j in jobs):
                out[name] = "completed"
            else:
                out[name] = "running"
        return out

    def total_input_gb(self) -> float:
        """Sum of the entry-step input sizes."""
        return sum(self.entry_sizes.values())


class WorkflowEngine:
    """Runs workflow DAGs over shared cloud resources."""

    def __init__(
        self,
        env: Environment,
        infrastructure: Infrastructure,
        celar: CelarManager,
        reward: RewardFunction,
        scheduler_config: Optional[SchedulerConfig] = None,
        event_log: Optional[EventLog] = None,
        size_unit_gb: float = 1.0,
        shard_gb: Optional[float] = None,
        shard_advisor: "Optional[ShardAdvisor]" = None,
    ) -> None:
        """``shard_gb``: when set, a step whose input exceeds it (and whose
        application consumes a shardable format) is split into parallel
        jobs of at most that size -- the Data Broker's parallelisation
        applied per workflow step.

        ``shard_advisor``: when set, each shardable branch asks the
        knowledge-backed :class:`~repro.knowledge.advisor.ShardAdvisor`
        for a profit-optimal shard count for *its own* application and
        input size, instead of the one fixed ``shard_gb`` -- two branches
        of a fan-out can shard differently.  ``shard_gb`` remains the
        fallback for apps the advisor has no profile for.
        """
        if size_unit_gb <= 0:
            raise WorkflowError("size_unit_gb must be positive")
        if shard_gb is not None and shard_gb <= 0:
            raise WorkflowError("shard_gb must be positive")
        self.env = env
        self.infrastructure = infrastructure
        self.celar = celar
        self.reward = reward
        self.scheduler_config = (
            scheduler_config if scheduler_config is not None else SchedulerConfig()
        )
        self.log = event_log if event_log is not None else EventLog()
        self.size_unit_gb = size_unit_gb
        self.shard_gb = shard_gb
        self.shard_advisor = shard_advisor
        #: Per-(step, run) shard advice actually used, for reporting.
        self.shard_decisions: list[dict] = []
        self._schedulers: dict[str, SCANScheduler] = {}
        self.runs: list[WorkflowRun] = []

    # -- schedulers -----------------------------------------------------------
    def scheduler_for(self, spec: WorkflowSpec, step: str) -> SCANScheduler:
        """The (shared, lazily created) scheduler for a step's application."""
        app = spec.app_of(step)
        scheduler = self._schedulers.get(app.name)
        if scheduler is None:
            scheduler = SCANScheduler(
                self.env,
                app,
                self.infrastructure,
                self.celar,
                self.reward,
                make_allocation_policy(self.scheduler_config.allocation)
                if self.scheduler_config.allocation.value != "best_constant"
                else self._best_constant_policy(app),
                make_scaling_policy(
                    self.scheduler_config.scaling,
                    horizon_tu=self.scheduler_config.predictive_horizon,
                ),
                config=self.scheduler_config,
                event_log=self.log,
            )
            scheduler.start()
            self._schedulers[app.name] = scheduler
        return scheduler

    def _best_constant_policy(self, app):
        from repro.scheduler.allocation import (
            BestConstantAllocation,
            find_best_constant_plan,
        )

        plan = find_best_constant_plan(
            app,
            self.reward,
            core_cost=self.infrastructure.base.core_cost_per_tu,
            job_size=5.0,
            thread_choices=self.scheduler_config.thread_choices,
        )
        return BestConstantAllocation(plan)

    @property
    def schedulers(self) -> dict[str, SCANScheduler]:
        return dict(self._schedulers)

    # -- execution --------------------------------------------------------------
    def submit(
        self, spec: WorkflowSpec, entry_sizes: dict[str, float]
    ) -> WorkflowRun:
        """Start a workflow: entry steps are submitted immediately.

        ``entry_sizes`` maps each entry step to its input size in GB.
        """
        missing = [s for s in spec.entry_steps if s not in entry_sizes]
        if missing:
            raise WorkflowError(f"entry sizes missing for {missing}")
        unknown = [s for s in entry_sizes if s not in spec.steps]
        if unknown:
            raise WorkflowError(f"entry sizes given for unknown steps {unknown}")
        for step, size in entry_sizes.items():
            if spec.parents(step):
                raise WorkflowError(f"{step!r} is not an entry step")
            if size <= 0:
                raise WorkflowError(f"entry size for {step!r} must be positive")

        run = WorkflowRun(
            uid=len(self.runs) + 1,
            spec=spec,
            entry_sizes=dict(entry_sizes),
            submit_time=self.env.now,
        )
        self.runs.append(run)
        for step in spec.entry_steps:
            self._submit_step(run, step)
        return run

    def _shard_count(self, spec: WorkflowSpec, step: str, input_gb: float) -> int:
        app = spec.app_of(step)
        if not app.input_format.shardable:
            return 1
        if self.shard_advisor is not None:
            # Per-branch advice: each step's own application and input
            # size drive the split, so parallel branches shard unequally.
            advice = self.shard_advisor.advise(
                app.name,
                input_gb,
                parallel_workers=max(
                    self.infrastructure.base.capacity_cores
                    // max(self.scheduler_config.thread_choices), 1
                ),
                core_cost_per_tu=(
                    self.infrastructure.base.core_cost_per_tu
                ),
                reward_fn=self.reward,
            )
            self.shard_decisions.append(
                {"step": step, "app": app.name, "input_gb": input_gb,
                 "n_shards": advice.n_shards, "shard_gb": advice.shard_gb,
                 "source": advice.source}
            )
            return advice.n_shards
        if self.shard_gb is None:
            return 1
        import math

        return max(math.ceil(input_gb / self.shard_gb - 1e-9), 1)

    def _submit_step(self, run: WorkflowRun, step: str) -> None:
        spec = run.spec
        input_gb = spec.input_size_gb(step, run.entry_sizes)
        scheduler = self.scheduler_for(spec, step)
        n_shards = self._shard_count(spec, step, input_gb)
        shard_gb = input_gb / n_shards
        jobs = []
        for i in range(n_shards):
            suffix = f"-p{i:03d}" if n_shards > 1 else ""
            job = Job(
                app=scheduler.app,
                size=max(shard_gb / self.size_unit_gb, 1e-6),
                submit_time=self.env.now,
                name=f"wf{run.uid}-{spec.name}-{step}{suffix}",
                input_gb=max(shard_gb, 1e-6),
            )
            jobs.append(job)
        run.jobs[step] = jobs
        for job in jobs:
            scheduler.submit(job)
        self.env.process(self._watch_step(run, step, jobs))

    def _watch_step(self, run: WorkflowRun, step: str, jobs: list[Job]):
        """Process: wait for every shard job, then release downstream steps."""
        while not all(j.is_complete for j in jobs):
            # Jobs complete inside scheduler processes; poll cheaply at the
            # granularity of stage completions via a short timeout.  Event
            # ordering stays deterministic (FIFO at equal times).
            yield self.env.timeout(0.25)
        spec = run.spec
        for child in spec.children(step):
            parents = spec.parents(child)
            if all(run.step_complete(p) for p in parents) and (
                child not in run.jobs
            ):
                self._submit_step(run, child)
        if all(run.step_complete(name) for name in spec.steps) and (
            run.completed_at is None
        ):
            run.completed_at = self.env.now
            self.log.emit(
                self.env.now,
                EventKind.JOB_COMPLETED,
                workflow=spec.name,
                run=run.uid,
                latency=run.latency(),
            )

    # -- reporting --------------------------------------------------------------
    def workflow_reward(self, run: WorkflowRun) -> float:
        """Reward for the whole workflow at its end-to-end latency."""
        size_units = run.total_input_gb() / self.size_unit_gb
        return self.reward(run.latency(), size_units)

    def total_cost(self) -> float:
        """Core-time spend across every fleet (CU)."""
        return self.infrastructure.accumulated_cost()
