"""Multi-application analysis workflows (the paper's Figure 1).

"Genome analysis normally encompasses a chain of various biological
applications" (Section I); SCAN is "an integrative application platform
which supports four types of data processes" (Section III) whose data flow
(Figure 1) fans NGS, proteomics and imaging branches into an integrative
network analysis.

- :mod:`repro.workflows.spec` -- workflow DAGs over registered
  applications, with format-compatibility and acyclicity validation.
- :mod:`repro.workflows.compiled` -- specs lowered into topologically
  indexed node graphs the scheduler/estimator/knowledge plane execute
  natively (chains are the degenerate case, kept byte-identical).
- :mod:`repro.workflows.engine` -- executes a workflow on the simulated
  cloud: one SCAN scheduler per application class, all sharing the
  infrastructure; a step is submitted the moment its upstream outputs
  exist.
- :mod:`repro.workflows.library` -- ready-made workflows: the Figure 1
  integrative flow, variant-detection and miRNA-fusion chains (the
  ontology's workflow individuals, made executable), plus the
  :data:`~repro.workflows.library.WORKFLOWS` registry of
  scheduler-runnable specs.
"""

from repro.workflows.compiled import CompiledWorkflow, WorkflowNode, chain_of, compile_spec
from repro.workflows.library import (
    WORKFLOWS,
    gatk_chain_workflow,
    integrative_figure1_workflow,
    make_workflow,
    mirna_fusion_workflow,
    star_fanout_workflow,
    variation_detection_workflow,
    workflow_names,
)
from repro.workflows.spec import WorkflowError, WorkflowSpec, WorkflowStep

__all__ = [
    "WorkflowSpec",
    "WorkflowStep",
    "WorkflowError",
    "CompiledWorkflow",
    "WorkflowNode",
    "chain_of",
    "compile_spec",
    "WorkflowEngine",
    "WorkflowRun",
    "WORKFLOWS",
    "make_workflow",
    "workflow_names",
    "variation_detection_workflow",
    "mirna_fusion_workflow",
    "integrative_figure1_workflow",
    "gatk_chain_workflow",
    "star_fanout_workflow",
]


def __getattr__(name: str):
    # The engine pulls in the scheduler stack; importing it lazily keeps
    # `repro.workflows.compiled` importable from inside that stack
    # (tasks/estimator) without a circular import.
    if name in ("WorkflowEngine", "WorkflowRun"):
        from repro.workflows import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
