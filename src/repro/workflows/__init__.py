"""Multi-application analysis workflows (the paper's Figure 1).

"Genome analysis normally encompasses a chain of various biological
applications" (Section I); SCAN is "an integrative application platform
which supports four types of data processes" (Section III) whose data flow
(Figure 1) fans NGS, proteomics and imaging branches into an integrative
network analysis.

- :mod:`repro.workflows.spec` -- workflow DAGs over registered
  applications, with format-compatibility and acyclicity validation.
- :mod:`repro.workflows.engine` -- executes a workflow on the simulated
  cloud: one SCAN scheduler per application class, all sharing the
  infrastructure; a step is submitted the moment its upstream outputs
  exist.
- :mod:`repro.workflows.library` -- ready-made workflows: the Figure 1
  integrative flow, variant-detection and miRNA-fusion chains (the
  ontology's workflow individuals, made executable).
"""

from repro.workflows.spec import WorkflowSpec, WorkflowStep, WorkflowError
from repro.workflows.engine import WorkflowEngine, WorkflowRun
from repro.workflows.library import (
    variation_detection_workflow,
    mirna_fusion_workflow,
    integrative_figure1_workflow,
)

__all__ = [
    "WorkflowSpec",
    "WorkflowStep",
    "WorkflowError",
    "WorkflowEngine",
    "WorkflowRun",
    "variation_detection_workflow",
    "mirna_fusion_workflow",
    "integrative_figure1_workflow",
]
