"""Compiled workflows: the scheduler's executable DAG form.

A :class:`~repro.workflows.spec.WorkflowSpec` is a *declarative* DAG of
named steps over registered applications.  The scheduler, estimator, and
knowledge plane need something lower-level: a flat, topologically indexed
graph of *schedulable stage executions* -- one node per (step, app-stage)
pair -- with believed and ground-truth performance models, parent/child
dependency lists, and per-node input sizing resolved ahead of time.

:class:`CompiledWorkflow` is that form.  Two constructors produce it:

- :func:`chain_of` lowers a plain :class:`ApplicationModel` into a linear
  chain -- node ``i`` is stage ``i`` of the app, scoped under the app's
  own name.  This is the seed platform's 7-stage GATK pipeline expressed
  in DAG terms, and it is the byte-equivalence anchor: every fast path in
  the scheduler/estimator keys off :attr:`CompiledWorkflow.is_chain` and
  reuses the exact legacy arithmetic (same ``StageModel`` objects, same
  input sizes), so fault-free chain runs stay bit-identical.
- :func:`compile_spec` lowers a multi-step spec: each step's application
  expands into an intra-chain of its stages (a 7-stage app contributes 7
  nodes), stitched together by the spec's edges (last node of the parent
  step feeds the first node of each child step).

Per-node **fact scope**: knowledge-plane facts for DAG nodes are keyed
``("{workflow}/{step}", app_stage)`` rather than ``(app, stage)``, so two
branches running the same tool refit independently (ISSUE 9 tentpole #4).
Chains keep the legacy ``(app.name, stage)`` key.

Per-node **input scale**: the paper's timing model feeds every stage of an
application the *first* stage's input ``d``, so all nodes of one step
share the step's input scale.  Entry steps see the job's input unscaled;
a downstream step's scale is the sum over its parents of
``parent_scale * parent_output_ratio`` -- the compiled mirror of
:meth:`WorkflowSpec.input_size_gb`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, Optional

from repro.apps.base import ApplicationModel, StageModel
from repro.workflows.spec import WorkflowError, WorkflowSpec

__all__ = [
    "WorkflowNode",
    "CompiledWorkflow",
    "chain_of",
    "compile_spec",
]


@dataclass(frozen=True)
class WorkflowNode:
    """One schedulable stage execution inside a compiled workflow."""

    #: Topological index in the compiled graph (queue/plan/EQT slot).
    index: int
    #: Human-readable identity, e.g. ``"call:haplotype_caller"``.
    name: str
    #: Knowledge-plane fact scope (chains: the app name; spec workflows:
    #: ``"{workflow}/{step}"`` so branches refit independently).
    scope: str
    #: Application this node belongs to, and the stage index within it.
    app_name: str
    app_stage: int
    #: Believed (profiled) performance model -- what planning uses.
    model: StageModel
    #: Ground-truth model -- what execution draws durations from.
    actual: StageModel
    parents: tuple[int, ...]
    children: tuple[int, ...]
    #: Node input GB = job input GB x this scale (1.0 on every chain node).
    input_scale: float
    worker_class: str


class CompiledWorkflow:
    """A topologically indexed DAG of stage executions.

    Nodes are ordered so that every edge points from a lower to a higher
    index -- reverse iteration is a valid reverse-topological sweep, which
    the estimator's critical-path DP relies on.
    """

    def __init__(
        self,
        name: str,
        nodes: tuple[WorkflowNode, ...],
        spec: Optional[WorkflowSpec] = None,
    ) -> None:
        if not nodes:
            raise WorkflowError(f"workflow {name!r} compiled to zero nodes")
        for i, node in enumerate(nodes):
            if node.index != i:
                raise WorkflowError(
                    f"workflow {name!r}: node {node.name} has index "
                    f"{node.index}, expected {i}"
                )
            if any(p >= i for p in node.parents):
                raise WorkflowError(
                    f"workflow {name!r}: node {node.name} has a parent at "
                    f"or after its own index (not topologically sorted)"
                )
        self.name = name
        self.nodes = nodes
        self.spec = spec
        self.entries: tuple[int, ...] = tuple(
            n.index for n in nodes if not n.parents
        )
        self.terminals: tuple[int, ...] = tuple(
            n.index for n in nodes if not n.children
        )
        #: True when the graph is a plain pipeline with unscaled input --
        #: the legacy fast paths (forward-sum ETT, single-child release)
        #: apply and keep chain runs byte-identical to the pre-DAG code.
        self.is_chain = all(
            n.parents == ((i - 1,) if i else ())
            and n.input_scale == 1.0
            for i, n in enumerate(nodes)
        )

    # -- structure -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> WorkflowNode:
        return self.nodes[index]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node_input_gb(self, index: int, job_input_gb: float) -> float:
        """The input GB node *index* sees for a job-level input size.

        Chain nodes pass the job input through untouched (same float
        object -- the EET memo keys and Amdahl arithmetic stay identical
        to the pre-DAG scheduler).
        """
        scale = self.nodes[index].input_scale
        if scale == 1.0:
            return job_input_gb
        return job_input_gb * scale

    def max_ram_gb(self) -> float:
        return max(n.model.ram_gb for n in self.nodes)

    # -- derived views --------------------------------------------------------
    def as_app(self) -> ApplicationModel:
        """The workflow flattened into a pseudo-application.

        Used where legacy planning code wants an ``ApplicationModel``
        (e.g. best-constant plan search): stage ``i`` of the pseudo-app is
        node ``i``'s believed model, reindexed.  Formats come from the
        first entry node's app input and the last terminal node's output.
        """
        stages = tuple(
            replace(n.model, index=i, name=n.name)
            for i, n in enumerate(self.nodes)
        )
        first = self.nodes[self.entries[0]]
        last = self.nodes[self.terminals[-1]]
        from repro.apps.registry import default_registry

        registry = default_registry()
        return ApplicationModel(
            name=self.name,
            stages=stages,
            input_format=registry.get(first.app_name).input_format,
            output_format=registry.get(last.app_name).output_format,
            worker_class=first.worker_class,
            description=f"compiled workflow {self.name}",
        )

    def describe(self) -> dict:
        """A JSON-friendly summary (the ``scan-sim workflows`` listing)."""
        return {
            "name": self.name,
            "nodes": self.n_nodes,
            "entries": [self.nodes[i].name for i in self.entries],
            "terminals": [self.nodes[i].name for i in self.terminals],
            "chain": self.is_chain,
            "steps": [
                {
                    "node": n.index,
                    "name": n.name,
                    "app": n.app_name,
                    "scope": n.scope,
                    "parents": list(n.parents),
                    "input_scale": n.input_scale,
                }
                for n in self.nodes
            ],
        }

    def __repr__(self) -> str:
        shape = "chain" if self.is_chain else "dag"
        return f"<CompiledWorkflow {self.name}: {self.n_nodes} nodes, {shape}>"


@lru_cache(maxsize=128)
def chain_of(
    app: ApplicationModel, actual_app: Optional[ApplicationModel] = None
) -> "CompiledWorkflow":
    """The linear chain workflow equivalent to running *app* end to end.

    Node ``i`` wraps ``app.stage(i)`` (and ``actual_app.stage(i)`` as
    ground truth, for model-drift scenarios), scoped under the app's own
    name so knowledge facts keep their legacy ``(app, stage)`` keys.
    Cached: every job of the same app shares one compiled object.
    """
    actual = actual_app if actual_app is not None else app
    if actual.n_stages != app.n_stages:
        raise WorkflowError(
            f"actual app has {actual.n_stages} stages, believed has "
            f"{app.n_stages}"
        )
    n = app.n_stages
    nodes = tuple(
        WorkflowNode(
            index=i,
            name=app.stage(i).name,
            scope=app.name,
            app_name=app.name,
            app_stage=i,
            model=app.stage(i),
            actual=actual.stage(i),
            parents=(i - 1,) if i else (),
            children=(i + 1,) if i < n - 1 else (),
            input_scale=1.0,
            worker_class=app.worker_class,
        )
        for i in range(n)
    )
    return CompiledWorkflow(app.name, nodes)


def compile_spec(
    spec: WorkflowSpec,
    resolve: Optional[
        Callable[[str], tuple[ApplicationModel, ApplicationModel]]
    ] = None,
) -> CompiledWorkflow:
    """Lower a declarative spec into a scheduler-ready node graph.

    *resolve* maps an application name to a ``(believed, actual)`` model
    pair -- the builder passes a drift-aware resolver; the default reads
    the spec's own registry with believed == actual.

    Expansion: each step contributes one node per stage of its
    application, chained internally; the spec's step edges connect the
    last node of the parent step to the first node of each child step.
    All nodes of one step share the step's input scale (the paper feeds
    every stage of an application the first stage's input ``d``).
    """
    if resolve is None:
        def resolve(app_name: str):  # noqa: ANN001 - local default
            model = spec.registry.get(app_name)
            return model, model

    # Step input scales, in spec topological order (compiled mirror of
    # WorkflowSpec.input_size_gb with every entry sized at 1.0).
    scales: dict[str, float] = {}
    for step_name in spec.topological_order:
        parents = spec.parents(step_name)
        if not parents:
            scales[step_name] = 1.0
        else:
            scales[step_name] = sum(
                scales[p] * spec.steps[p].output_ratio for p in parents
            )

    nodes: list[WorkflowNode] = []
    first_node: dict[str, int] = {}
    last_node: dict[str, int] = {}
    for step_name in spec.topological_order:
        step = spec.steps[step_name]
        believed, actual = resolve(step.app)
        if actual.n_stages != believed.n_stages:
            raise WorkflowError(
                f"step {step_name!r}: actual app has {actual.n_stages} "
                f"stages, believed has {believed.n_stages}"
            )
        scope = f"{spec.name}/{step_name}"
        first_node[step_name] = len(nodes)
        for s in range(believed.n_stages):
            index = len(nodes)
            intra_parents = (index - 1,) if s else ()
            nodes.append(
                WorkflowNode(
                    index=index,
                    name=f"{step_name}:{believed.stage(s).name}",
                    scope=scope,
                    app_name=step.app,
                    app_stage=s,
                    model=believed.stage(s),
                    actual=actual.stage(s),
                    parents=intra_parents,
                    children=(),
                    input_scale=scales[step_name],
                    worker_class=believed.worker_class,
                )
            )
        last_node[step_name] = len(nodes) - 1

    # Stitch step edges, then derive children from the final parent sets.
    parents: dict[int, list[int]] = {n.index: list(n.parents) for n in nodes}
    for step_name in spec.topological_order:
        for parent in spec.parents(step_name):
            parents[first_node[step_name]].append(last_node[parent])
    children: dict[int, list[int]] = {n.index: [] for n in nodes}
    for idx, ps in parents.items():
        for p in sorted(ps):
            children[p].append(idx)
    nodes = [
        replace(
            n,
            parents=tuple(sorted(parents[n.index])),
            children=tuple(sorted(children[n.index])),
        )
        for n in nodes
    ]
    return CompiledWorkflow(spec.name, tuple(nodes), spec=spec)
