"""Workflow DAG specifications.

A workflow is a DAG of named steps, each bound to a registered application.
Edges carry data: a step's input size is the sum of its parents' output
sizes (each parent's output = its input x the application's output ratio).
Validation enforces acyclicity and input/output format compatibility along
every edge ("we design the SCAN to work with standard formats to enable
interoperability", Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.apps.registry import ApplicationRegistry, default_registry
from repro.core.errors import SCANError
from repro.genomics.datasets import DataFormat

__all__ = ["WorkflowError", "WorkflowStep", "WorkflowSpec"]


class WorkflowError(SCANError):
    """Invalid workflow structure or execution request."""


@dataclass(frozen=True)
class WorkflowStep:
    """One step: a named application invocation.

    ``output_ratio`` scales input GB to output GB (e.g. a variant caller
    reduces 10 GB of BAM to ~0.1 GB of VCF with ratio 0.01).
    """

    name: str
    app: str
    output_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("step name must be non-empty")
        if self.output_ratio <= 0:
            raise WorkflowError(f"step {self.name}: output_ratio must be positive")


class WorkflowSpec:
    """A validated DAG of workflow steps."""

    def __init__(
        self,
        name: str,
        steps: Iterable[WorkflowStep],
        edges: Iterable[tuple[str, str]],
        registry: Optional[ApplicationRegistry] = None,
    ) -> None:
        if not name:
            raise WorkflowError("workflow name must be non-empty")
        self.name = name
        self.registry = registry if registry is not None else default_registry()
        self.steps: dict[str, WorkflowStep] = {}
        for step in steps:
            if step.name in self.steps:
                raise WorkflowError(f"duplicate step {step.name!r}")
            if step.app not in self.registry:
                raise WorkflowError(
                    f"step {step.name!r} uses unregistered app {step.app!r}"
                )
            self.steps[step.name] = step
        if not self.steps:
            raise WorkflowError("a workflow needs at least one step")

        self._parents: dict[str, list[str]] = {n: [] for n in self.steps}
        self._children: dict[str, list[str]] = {n: [] for n in self.steps}
        for src, dst in edges:
            if src not in self.steps or dst not in self.steps:
                raise WorkflowError(f"edge ({src!r}, {dst!r}) references unknown step")
            if dst in self._children[src]:
                raise WorkflowError(f"duplicate edge ({src!r}, {dst!r})")
            self._children[src].append(dst)
            self._parents[dst].append(src)

        self._order = self._toposort()
        self._check_formats()

    # -- structure -----------------------------------------------------------
    def parents(self, step: str) -> list[str]:
        """Upstream step names of *step*."""
        return list(self._parents[step])

    def children(self, step: str) -> list[str]:
        """Downstream step names of *step*."""
        return list(self._children[step])

    @property
    def entry_steps(self) -> list[str]:
        """Steps with no parents: they consume the user's input datasets."""
        return [n for n in self._order if not self._parents[n]]

    @property
    def terminal_steps(self) -> list[str]:
        return [n for n in self._order if not self._children[n]]

    @property
    def topological_order(self) -> list[str]:
        return list(self._order)

    def app_of(self, step: str):
        """The ApplicationModel a step runs."""
        return self.registry.get(self.steps[step].app)

    def __len__(self) -> int:
        return len(self.steps)

    # -- validation -----------------------------------------------------------
    def _toposort(self) -> list[str]:
        in_degree = {n: len(p) for n, p in self._parents.items()}
        ready = sorted(n for n, d in in_degree.items() if d == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in sorted(self._children[node]):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.steps):
            cyclic = sorted(set(self.steps) - set(order))
            raise WorkflowError(f"workflow has a cycle involving {cyclic}")
        return order

    def _check_formats(self) -> None:
        """Every edge must connect compatible formats.

        CSV is the interchange lingua franca: any producer may feed a
        CSV-consuming step (tabular summaries travel anywhere), matching
        how Cytoscape ingests arbitrary omics tables in Figure 1.  SAM and
        BAM are the same records in two encodings (the broker converts
        freely), so they inter-operate.
        """
        sam_bam = {DataFormat.SAM, DataFormat.BAM}
        for src, children in self._children.items():
            out_fmt = self.app_of(src).output_format
            for dst in children:
                in_fmt = self.app_of(dst).input_format
                if in_fmt is DataFormat.CSV:
                    continue
                if out_fmt in sam_bam and in_fmt in sam_bam:
                    continue
                if out_fmt is not in_fmt:
                    raise WorkflowError(
                        f"edge {src!r} -> {dst!r}: {self.steps[src].app} "
                        f"produces {out_fmt.value} but {self.steps[dst].app} "
                        f"consumes {in_fmt.value}"
                    )

    # -- data propagation -----------------------------------------------------
    def input_size_gb(
        self, step: str, entry_sizes: dict[str, float]
    ) -> float:
        """The GB arriving at *step* given per-entry-step input sizes."""
        if not self._parents[step]:
            try:
                return float(entry_sizes[step])
            except KeyError:
                raise WorkflowError(
                    f"entry step {step!r} needs an input size"
                ) from None
        return sum(
            self.output_size_gb(parent, entry_sizes)
            for parent in self._parents[step]
        )

    def output_size_gb(
        self, step: str, entry_sizes: dict[str, float]
    ) -> float:
        """The step's output GB given entry sizes."""
        return self.input_size_gb(step, entry_sizes) * self.steps[step].output_ratio

    def __repr__(self) -> str:
        return (
            f"<WorkflowSpec {self.name}: "
            f"{' -> '.join(self._order)}>"
        )
