"""Version of the SCAN reproduction package."""

__version__ = "1.0.0"
