"""Ablation: the chaos layer vs the resilience suite.

Two experiments:

1. An MTBF x fault-mix grid with the resilience suite ON, showing graceful
   degradation as the injected chaos intensifies (completion stays high,
   retries/speculation absorb the damage).
2. The headline A/B cell -- crashes at MTBF 50 TU + 20 % deploy bounces +
   10 % stragglers -- run with the full resilience suite against the
   no-safety-net baseline (``ResilienceConfig(enabled=False)``: a failed
   execution immediately dead-letters its job).  Resilience must keep
   completion >= 0.9 while the baseline ends measurably worse.

These sessions are long (900 TU for the A/B cell so the in-flight tail is
small); the module is opt-in via ``-m chaos``.
"""

from __future__ import annotations

import pytest

from repro.core.config import PlatformConfig, ResilienceConfig
from repro.sim.report import render_resilience_summary, render_table
from repro.sim.session import SimulationSession

pytestmark = pytest.mark.chaos

#: The acceptance cell's fault mix.
CHAOS_MIX = dict(mtbf_tu=50.0, p_deploy_fail=0.2, p_straggler=0.1)

GRID = (
    ("none", {}),
    ("crashes", dict(mtbf_tu=50.0)),
    ("deploy+boot", dict(p_deploy_fail=0.2, p_boot_fail=0.1)),
    ("stragglers", dict(p_straggler=0.1)),
    ("full mix", dict(CHAOS_MIX, p_boot_fail=0.05, p_corrupt=0.02)),
)


def run_cell(fault_kwargs, resilience, duration, seed=3):
    config = PlatformConfig.paper_defaults().with_overrides(
        simulation={"duration": duration},
        faults=dict(fault_kwargs),
        resilience={
            "enabled": resilience.enabled,
            "max_attempts": resilience.max_attempts,
        },
    )
    return SimulationSession(config).run(seed=seed)


def test_chaos_grid_degrades_gracefully(print_header):
    resilient = ResilienceConfig(max_attempts=5)
    rows = []
    results = {}
    for name, mix in GRID:
        r = run_cell(mix, resilient, duration=300.0)
        results[name] = r
        rows.append(
            [name, f"{r.completion_fraction:.2f}", r.failed_runs,
             r.task_retries, r.worker_failures, r.deploy_failures,
             r.stragglers, r.speculative_won]
        )
    print_header("Ablation -- chaos grid, resilience suite ON")
    print(
        render_table(
            ["fault mix", "completion", "failed", "retries", "crashes",
             "bounces", "stragglers", "spec won"],
            rows,
        )
    )
    # The fault-free row really is fault-free ...
    clean = results["none"]
    assert clean.worker_failures == 0
    assert clean.task_retries == 0
    assert clean.failed_runs == 0
    # ... and every chaotic mix still completes the bulk of its workload.
    for name, _ in GRID[1:]:
        assert results[name].completion_fraction > 0.6, name


def test_resilience_beats_no_safety_net(print_header):
    """The headline A/B: same chaos, with and without the safety net."""
    on = run_cell(CHAOS_MIX, ResilienceConfig(max_attempts=5), duration=900.0)
    off = run_cell(CHAOS_MIX, ResilienceConfig(enabled=False), duration=900.0)

    print_header(
        "Ablation -- chaos A/B (MTBF 50, 20% deploy bounce, 10% stragglers)"
    )
    print(render_resilience_summary(on, title="resilience ON"))
    print()
    print(render_resilience_summary(off, title="resilience OFF"))

    # The acceptance bar: the suite holds completion >= 0.9 under the
    # chaos mix, while the no-safety-net baseline is measurably worse.
    assert on.completion_fraction >= 0.9
    assert off.completion_fraction < on.completion_fraction - 0.1
    # The baseline bleeds jobs to first-failure dead-lettering; the suite
    # retries them to completion.
    assert off.failed_runs > on.failed_runs
    assert on.task_retries > 0
