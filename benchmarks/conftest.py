"""Shared helpers for the benchmark harness.

Every table and figure of the paper's evaluation has one benchmark module
here.  Benchmarks run scaled-down sessions (shorter duration, fewer
repetitions than the paper's 10 000 TU x 10) so the whole harness finishes
in minutes; the *shape* assertions are on relative behaviour, which is what
the reproduction targets.

The Figure 4 benchmark uses ``size_unit_gb = 2.0``: the paper gives job
sizes in unspecified "arbitrary units", and 2 GB/unit calibrates offered
load so the paper's own regime description holds (interval 2.0 saturates
the 624-core private tier, 3.0 leaves it mostly free) -- see DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro.core.config import PlatformConfig

#: Session length for benchmark sweeps (TU).  The paper uses 10 000; this
#: is enough for steady-state ordering to emerge.
BENCH_DURATION = 600.0
#: Repetitions per cell (the paper uses 10).
BENCH_REPS = 3
#: The calibrated unit mapping for load-sensitive figures.
FIG4_UNIT_GB = 4.0


def bench_config(**overrides) -> PlatformConfig:
    """Paper defaults with benchmark-scale duration."""
    config = PlatformConfig.paper_defaults().with_overrides(
        simulation={"duration": BENCH_DURATION, "repetitions": BENCH_REPS},
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config


@pytest.fixture(scope="session")
def print_header():
    def _print(title: str) -> None:
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)

    return _print
