"""Ablation: the predictive scaler's delay-cost look-ahead horizon.

The horizon caps how much estimated waiting the delay-cost comparison may
assume (Eq. 1 is evaluated at min(expected wait, horizon)).  Too short a
horizon makes the scaler blind to queue pain (it degenerates toward
never-scale); the sweep shows how heavy-load profit responds.
"""

from __future__ import annotations

from repro.analysis.stats import aggregate_runs
from repro.core.config import AllocationAlgorithm, ScalingAlgorithm
from repro.sim.report import render_table
from repro.sim.session import run_repetitions

from .conftest import FIG4_UNIT_GB, bench_config

HORIZONS = (0.5, 2.0, 5.0, 20.0)


def run_ablation():
    rows = []
    for horizon in HORIZONS:
        config = bench_config(
            workload={"mean_interarrival": 2.0, "size_unit_gb": FIG4_UNIT_GB},
            scheduler={
                "allocation": AllocationAlgorithm.BEST_CONSTANT,
                "scaling": ScalingAlgorithm.PREDICTIVE,
                "predictive_horizon": horizon,
            },
        )
        results = run_repetitions(config, base_seed=5000)
        stats = aggregate_runs([r.metrics() for r in results])
        public_hires = sum(r.hires_public for r in results) / len(results)
        rows.append((horizon, stats, public_hires))
    return rows


def test_predictive_horizon_ablation(print_header, benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print_header(
        "Ablation -- predictive horizon at heavy load (interval 2.0)"
    )
    print(
        render_table(
            ["horizon (TU)", "profit/run", "latency", "public hires"],
            [
                [h, stats["mean_profit_per_run"], stats["mean_latency"], hires]
                for h, stats, hires in rows
            ],
        )
    )

    # A longer horizon authorises more public hiring under pressure.
    hires = [h for _hz, _s, h in rows]
    assert hires[-1] >= hires[0]

    # The blind scaler (0.5 TU horizon) must not beat the tuned one by a
    # meaningful margin at heavy load -- look-ahead is worth something.
    blind = rows[0][1]["mean_profit_per_run"].mean
    tuned = max(s["mean_profit_per_run"].mean for _h, s, _n in rows[1:])
    assert tuned >= blind - 0.05 * abs(blind)
