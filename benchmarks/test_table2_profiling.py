"""Table II regeneration: per-stage scalability factors a_i, b_i, c_i.

The paper derived Table II "by linear regression of offline profiling data"
over inputs of 1-9 GB and a variety of thread counts.  This benchmark
re-runs that pipeline: simulate the profiling campaign (with measurement
noise), feed the observations through the knowledge base's regression
machinery, and print the recovered table next to the published one.
"""

from __future__ import annotations

import pytest

from repro.apps.gatk import GATK_STAGES, build_gatk_model
from repro.desim.rng import RandomStreams
from repro.knowledge.kb import SCANKnowledgeBase
from repro.sim.report import render_table


def recover_table2(noise_fraction: float = 0.03, seed: int = 0):
    kb = SCANKnowledgeBase()
    rng = RandomStreams(seed).stream("profiling-noise")
    kb.bootstrap_from_model(
        build_gatk_model(),
        input_sizes_gb=range(1, 10),  # the paper's 1-9 GByte inputs
        thread_counts=(1, 2, 4, 8, 16),
        noise_fraction=noise_fraction,
        rng=rng,
    )
    return kb.fitted_stage_models("gatk")


def test_table2_recovered_from_noisy_profiling(print_header, benchmark):
    fitted = benchmark.pedantic(recover_table2, rounds=1, iterations=1)

    print_header(
        "Table II -- per-pipeline-stage scalability factors "
        "(paper vs. re-fit from simulated profiling, 3% noise)"
    )
    rows = []
    for (name, a, b, c, _ram), fit in zip(GATK_STAGES, fitted):
        rows.append(
            [fit.index + 1, name, a, round(fit.a, 2), b, round(fit.b, 2),
             c, round(fit.c, 2)]
        )
    print(
        render_table(
            ["stage", "tool", "a_i", "a_fit", "b_i", "b_fit", "c_i", "c_fit"],
            rows,
            precision=2,
        )
    )

    for (name, a, b, c, _ram), fit in zip(GATK_STAGES, fitted):
        assert fit.a == pytest.approx(a, abs=0.1), name
        assert fit.b == pytest.approx(b, abs=0.6), name
        assert fit.c == pytest.approx(c, abs=0.08), name


def test_table2_exact_recovery_without_noise(benchmark):
    fitted = benchmark.pedantic(
        recover_table2, kwargs={"noise_fraction": 0.0}, rounds=1, iterations=1
    )
    for (name, a, b, c, _ram), fit in zip(GATK_STAGES, fitted):
        assert fit.a == pytest.approx(a, abs=1e-6), name
        assert fit.b == pytest.approx(b, abs=1e-5), name
        assert fit.c == pytest.approx(c, abs=1e-3), name
