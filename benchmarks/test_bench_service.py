"""Sustained-ingest benchmark for the multi-tenant service plane.

Pushes 10^5+ jobs through the :class:`~repro.service.plane.ServicePlane`
ingest path (admission control + priority queue + write-ahead ledger) at
several tenant counts, then drains the queue through ``pop``/``finish``,
and writes ``BENCH_service.json`` (schema ``scan-sim-bench-service/1``)
with push/pop throughput per configuration.

Two persistence legs:

- ``memory``: the queue-machinery ceiling (no I/O on the hot path);
- ``jsonl``: the append-only ledger, the cheapest durable backend.

Throughput is *recorded*, not hard-asserted beyond a generous sanity
floor -- container disks vary wildly; the CI job uploads the JSON so real
runners document real numbers.
"""

from __future__ import annotations

import json
import os
import time

from repro.service import ServiceConfig, ServicePlane

#: Where the benchmark JSON lands (overridable for CI artifact staging).
BENCH_OUT = os.environ.get("BENCH_SERVICE_OUT", "BENCH_service.json")
#: Total jobs per (tenant-count, store) cell.  The acceptance bar is
#: 10^5+ *queued* jobs; the default pushes 100k per cell.
BENCH_JOBS = int(os.environ.get("BENCH_SERVICE_JOBS", "100000"))
#: Tenant counts to sweep (the multi-tenancy axis).
TENANT_COUNTS = (1, 4, 16, 64)
#: Fraction of each cell's jobs drained through pop/finish (draining all
#: 100k through the ledger would dominate the run without changing the
#: jobs/sec shape).
DRAIN_FRACTION = float(os.environ.get("BENCH_SERVICE_DRAIN", "0.2"))


def _run_cell(n_tenants: int, store_spec: str, n_jobs: int) -> dict:
    plane = ServicePlane(
        config=ServiceConfig(
            tenant_capacity=n_jobs,  # pure-ingest: nothing rejected
            priority_strategy="fifo",
            admission="reject",
            store=store_spec,
        ),
    )
    tenants = [f"tenant-{i:03d}" for i in range(n_tenants)]

    t0 = time.perf_counter()
    for i in range(n_jobs):
        decision, _job = plane.submit(
            tenants[i % n_tenants],
            name=f"job-{i}",
            size_gb=1.0 + (i % 7),
        )
        assert decision.accepted
    push_s = time.perf_counter() - t0

    depth = plane.queue.depth()
    assert depth == n_jobs, f"queued {depth} != pushed {n_jobs}"

    n_drain = int(n_jobs * DRAIN_FRACTION)
    t0 = time.perf_counter()
    for _ in range(n_drain):
        job = plane.pop()
        plane.finish(job.uid, "completed")
    drain_s = time.perf_counter() - t0

    stats = plane.queue.stats()
    assert stats["accepted"] == stats["queued"] + stats["finished"]
    plane.store.close()
    return {
        "tenants": n_tenants,
        "store": store_spec.split(":", 1)[0] if ":" in store_spec
        else ("jsonl" if store_spec.endswith(".jsonl") else store_spec),
        "jobs_queued": depth,
        "push_wall_s": round(push_s, 3),
        "push_jobs_per_s": round(n_jobs / push_s, 1) if push_s > 0 else None,
        "jobs_drained": n_drain,
        "drain_wall_s": round(drain_s, 3),
        "drain_jobs_per_s": (
            round(n_drain / drain_s, 1) if drain_s > 0 else None
        ),
    }


def test_sustained_ingest_throughput(tmp_path, print_header):
    cells = []
    for n_tenants in TENANT_COUNTS:
        cells.append(_run_cell(n_tenants, "memory", BENCH_JOBS))
    # One durable leg at the middle tenant count: the ledger cost.
    ledger = str(tmp_path / "bench-ledger.jsonl")
    cells.append(_run_cell(4, ledger, BENCH_JOBS))

    peak = max(c["push_jobs_per_s"] for c in cells)
    payload = {
        "schema": "scan-sim-bench-service/1",
        "jobs_per_cell": BENCH_JOBS,
        "tenant_counts": list(TENANT_COUNTS),
        "drain_fraction": DRAIN_FRACTION,
        "cpu_count": os.cpu_count(),
        "peak_push_jobs_per_s": peak,
        "cells": cells,
    }
    with open(BENCH_OUT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print_header("Service plane: sustained multi-tenant ingest")
    print(json.dumps(payload, indent=2, sort_keys=True))

    assert all(c["jobs_queued"] >= 100_000 for c in cells[:1]) or (
        BENCH_JOBS < 100_000  # smoke runs may shrink via env
    )
    # Sanity floor only: even a slow container pushes >1k jobs/sec into
    # the in-memory queue.
    assert peak > 1_000
