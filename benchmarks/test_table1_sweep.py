"""Table I regeneration: the variable-parameter grid.

Validates that the sweep engine covers exactly the published grid (4
resource-allocation algorithms x 3 horizontal-scaling algorithms x 11
inter-arrival intervals x 2 reward schemes x 4 public-tier costs = 1056
cells) and spot-runs a stratified sample of cells to show every parameter
combination actually executes.
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    AllocationAlgorithm,
    RewardScheme,
    ScalingAlgorithm,
)
from repro.sim.report import render_table
from repro.sim.sweep import TABLE1_FULL, SweepSpec, run_sweep

from .conftest import FIG4_UNIT_GB, bench_config


def test_table1_grid_is_exactly_the_paper(print_header, benchmark):
    benchmark.pedantic(lambda: TABLE1_FULL.size(), rounds=1, iterations=1)
    print_header("Table I -- variable simulation parameters (the full grid)")
    rows = [
        ["Resource allocation algorithm",
         ", ".join(a.value for a in TABLE1_FULL.allocation)],
        ["Horizontal scaling algorithm",
         ", ".join(s.value for s in TABLE1_FULL.scaling)],
        ["Mean job inter-arrival interval (TUs)",
         ", ".join(str(i) for i in TABLE1_FULL.mean_interarrival)],
        ["Task completion reward function",
         ", ".join(r.value for r in TABLE1_FULL.reward_scheme)],
        ["Public tier core cost (CUs/TU)",
         ", ".join(str(int(c)) for c in TABLE1_FULL.public_core_cost)],
        ["Total cells", str(TABLE1_FULL.size())],
    ]
    print(render_table(["parameter", "values"], rows))
    assert TABLE1_FULL.size() == 1056
    assert len(TABLE1_FULL.allocation) == 4
    assert len(TABLE1_FULL.scaling) == 3
    assert len(TABLE1_FULL.mean_interarrival) == 11
    assert len(TABLE1_FULL.reward_scheme) == 2
    assert len(TABLE1_FULL.public_core_cost) == 4


def run_stratified_sample():
    """One cell per allocation algorithm (the paper's four plus the
    'learned' extension), spanning the other axes."""
    spec = SweepSpec(
        allocation=tuple(AllocationAlgorithm),
        scaling=(ScalingAlgorithm.PREDICTIVE,),
        mean_interarrival=(2.5,),
        reward_scheme=(RewardScheme.TIME,),
        public_core_cost=(50.0,),
    )
    base = bench_config(workload={"size_unit_gb": FIG4_UNIT_GB})
    return run_sweep(base, spec, repetitions=2, base_seed=3000)


def test_table1_stratified_sample_runs(print_header, benchmark):
    rows = benchmark.pedantic(run_stratified_sample, rounds=1, iterations=1)

    print_header(
        "Table I sample -- one cell per allocation algorithm "
        "(predictive scaling, interval 2.5, time reward, public cost 50)"
    )
    table = [
        [
            row.param("allocation"),
            row["mean_profit_per_run"],
            row["mean_latency"],
            row["completed_runs"],
        ]
        for row in rows
    ]
    print(
        render_table(
            ["allocation", "profit/run", "latency", "completed"], table
        )
    )
    assert len(rows) == len(AllocationAlgorithm)
    for row in rows:
        assert row["completed_runs"].mean > 0


def test_public_cost_axis_changes_outcomes(benchmark):
    """Sweeping Table I's public-cost axis must move the economics."""

    def run():
        spec = SweepSpec(
            scaling=(ScalingAlgorithm.ALWAYS,),
            mean_interarrival=(2.0,),
            public_core_cost=(20.0, 110.0),
        )
        base = bench_config(workload={"size_unit_gb": FIG4_UNIT_GB})
        return run_sweep(base, spec, repetitions=2, base_seed=3100)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    cheap, pricey = rows
    assert cheap.param("public_core_cost") == 20.0
    # Always-scale at heavy load buys public cores: dearer cores, lower profit.
    assert (
        cheap["mean_profit_per_run"].mean > pricey["mean_profit_per_run"].mean
    )
