"""Table III regeneration: the fixed simulation attributes.

Validates that every library default equals the published constant, prints
the table, and benchmarks the best-constant offline plan search that those
constants parameterise.
"""

from __future__ import annotations

from repro.apps.gatk import build_gatk_model
from repro.core.config import PlatformConfig
from repro.scheduler.allocation import find_best_constant_plan
from repro.scheduler.rewards import TimeReward
from repro.sim.report import render_table


def test_table3_fixed_attributes(print_header, benchmark):
    config = benchmark.pedantic(
        PlatformConfig.paper_defaults, rounds=1, iterations=1
    )

    rows = [
        ["Simulation time (TUs)", 10_000, config.simulation.duration],
        ["Private tier core cost (CUs/TU)", 5, config.cloud.private_core_cost],
        ["Rmax (CUs)", 400, config.reward.rmax],
        ["Rpenalty (CUs)", 15, config.reward.rpenalty],
        ["Rscale (CUs/TU)", 15_000, config.reward.rscale],
        ["Instance sizes (cores)", "1,2,4,8,16",
         ",".join(str(s) for s in config.cloud.instance_sizes)],
        ["Mean jobs per arrival event", 3, config.workload.jobs_per_arrival_mean],
        ["Jobs per arrival variance", 2, config.workload.jobs_per_arrival_var],
        ["Mean job size (arbitrary units)", 5, config.workload.job_size_mean],
        ["Job size variance", 1, config.workload.job_size_var],
        ["Private tier cores (Section IV-A)", 624, config.cloud.private_cores],
        ["Repetitions per measurement", 10, config.simulation.repetitions],
    ]
    print_header("Table III -- fixed simulation attributes (paper vs. defaults)")
    print(render_table(["parameter", "paper", "library default"], rows))

    for _name, paper, default in rows:
        assert str(paper) == str(default) or float(paper) == float(default)


def test_best_constant_plan_search_speed(benchmark):
    """The 5^7-plan exhaustive search Table III parameterises."""
    gatk = build_gatk_model()
    reward = TimeReward()
    plan = benchmark(
        find_best_constant_plan, gatk, reward, 5.0, 5.0
    )
    assert len(plan.threads) == 7
