"""Ablation: the Data Broker's shard-size policy.

Compares, on the full platform facade, three ways of preparing a large
WGS input (paper Section III-A.1):

- **kb-advised**: the knowledge-base-driven advisor picks the shard size;
- **fixed-2gb**: the evaluation's constant ("the inputs will be 2GB for
  each task");
- **no-sharding**: one monolithic pipeline run.

Reported: request latency, shard count, platform cost.  Sharding must cut
request latency massively (that is the platform's reason to exist); the
KB-advised plan must be no worse than the fixed plan on the advisor's own
profit objective.
"""

from __future__ import annotations

import pytest

from repro.core.config import BrokerConfig, PlatformConfig, RewardScheme
from repro.core.platform import SCANPlatform
from repro.genomics.datasets import DataFormat
from repro.genomics.synth import synthesize_dataset
from repro.sim.report import render_table

INPUT_GB = 60.0


def run_policy(broker_config: BrokerConfig):
    config = PlatformConfig.paper_defaults().with_overrides(
        broker=broker_config,
        reward={"scheme": RewardScheme.THROUGHPUT},
    )
    platform = SCANPlatform(config, capture_events=False, kb_sample_every=10)
    platform.bootstrap_knowledge()
    request = platform.submit_analysis(
        synthesize_dataset("wgs-ablation", INPUT_GB, DataFormat.FASTQ)
    )
    platform.run_until_complete(request, limit=1e6)
    return {
        "n_shards": request.n_subtasks,
        "latency": request.latency(),
        "cost": platform.scheduler.total_cost(),
        "reward": platform.request_reward(request),
    }


POLICIES = (
    ("kb-advised", BrokerConfig(use_knowledge_base=True)),
    ("fixed-2gb", BrokerConfig(use_knowledge_base=False, default_shard_gb=2.0)),
    ("no-sharding", BrokerConfig(use_knowledge_base=False, default_shard_gb=INPUT_GB)),
)


def run_ablation():
    return [(name, run_policy(config)) for name, config in POLICIES]


def test_shard_policy_ablation(print_header, benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    results = dict(rows)

    print_header(
        f"Ablation -- shard-size policy for one {INPUT_GB:.0f} GB WGS request"
    )
    print(
        render_table(
            ["policy", "shards", "latency (TU)", "cost (CU)", "reward (CU)"],
            [
                [name, r["n_shards"], round(r["latency"], 1),
                 round(r["cost"], 0), round(r["reward"], 0)]
                for name, r in rows
            ],
        )
    )

    # Sharding exists to parallelise: both sharded policies crush the
    # monolithic latency.
    assert results["fixed-2gb"]["latency"] < 0.25 * results["no-sharding"]["latency"]
    assert results["kb-advised"]["latency"] < 0.5 * results["no-sharding"]["latency"]

    # The paper's example arithmetic: 60 GB at 2 GB per task = 30 subtasks.
    assert results["fixed-2gb"]["n_shards"] == 30
    assert results["no-sharding"]["n_shards"] == 1

    # The KB-advised plan optimises reward - cost; it must not lose to the
    # fixed heuristic on that objective by more than noise.
    def profit(r):
        return r["reward"] - r["cost"]

    assert profit(results["kb-advised"]) >= profit(results["fixed-2gb"]) - 0.1 * abs(
        profit(results["fixed-2gb"])
    )
