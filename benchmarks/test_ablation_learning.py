"""Ablation: learning-guided allocation under profiling drift.

The paper's future work ("we plan to adopt learning algorithms to guide
the Scheduler", Section VI) pays off when the knowledge base's profiled
model no longer matches reality.  We simulate drift: planning still
believes Table II, but execution follows a drifted model in which the two
most parallel stages (1 and 5, c = 0.89/0.91) have lost almost all
scalability (c = 0.10) -- e.g. the storage layer became the bottleneck.

- the model-based greedy allocator keeps buying 8-16 threads for those
  stages and burns core-hours for no speedup;
- the learned allocator observes realised durations and stops paying.

Also checked: with NO drift, learning matches model-based greedy within
noise (the exploration tax is small).
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import aggregate_runs
from repro.apps.base import ApplicationModel, StageModel
from repro.apps.gatk import build_gatk_model
from repro.core.config import AllocationAlgorithm, ScalingAlgorithm
from repro.scheduler.learning import LearnedAllocation
from repro.sim.report import render_table
from repro.sim.session import SimulationSession

from .conftest import BENCH_REPS, bench_config

#: Stages whose real scalability collapsed.
DRIFTED_STAGES = (0, 4)
DRIFTED_C = 0.10


def drifted_gatk() -> ApplicationModel:
    base = build_gatk_model()
    stages = tuple(
        StageModel(
            index=s.index, name=s.name, a=s.a, b=s.b,
            c=DRIFTED_C if s.index in DRIFTED_STAGES else s.c,
            ram_gb=s.ram_gb,
        )
        for s in base.stages
    )
    return ApplicationModel(
        name=base.name, stages=stages,
        input_format=base.input_format, output_format=base.output_format,
        worker_class=base.worker_class,
    )


def _config(allocation: AllocationAlgorithm):
    return bench_config(
        simulation={"duration": 900.0},
        workload={"mean_interarrival": 2.5},
        scheduler={
            "allocation": allocation,
            "scaling": ScalingAlgorithm.PREDICTIVE,
        },
    )


def run_comparison(actual_app):
    out = {}
    for allocation in (AllocationAlgorithm.GREEDY, AllocationAlgorithm.LEARNED):
        runs = []
        for k in range(BENCH_REPS):
            session = SimulationSession(
                _config(allocation), actual_app=actual_app
            )
            runs.append(session.run(seed=6000 + k))
        out[allocation.value] = aggregate_runs([r.metrics() for r in runs])
    return out


def test_learning_beats_model_based_under_drift(print_header, benchmark):
    results = benchmark.pedantic(
        run_comparison, args=(drifted_gatk(),), rounds=1, iterations=1
    )

    print_header(
        "Ablation -- learned vs. model-based allocation under profiling "
        f"drift (stages {DRIFTED_STAGES} degraded to c={DRIFTED_C})"
    )
    print(
        render_table(
            ["allocation", "profit/run", "core-stages/run", "latency"],
            [
                [name, stats["mean_profit_per_run"],
                 stats["mean_core_stages"], stats["mean_latency"]]
                for name, stats in results.items()
            ],
        )
    )

    greedy = results["greedy"]
    learned = results["learned"]
    # The learner must spend fewer cores per run (it stops buying threads
    # the drifted stages cannot use) ...
    assert learned["mean_core_stages"].mean < greedy["mean_core_stages"].mean
    # ... and turn that into better profit.
    assert learned["mean_profit_per_run"].mean > greedy["mean_profit_per_run"].mean


def test_learning_matches_model_when_model_is_right(print_header, benchmark):
    results = benchmark.pedantic(
        run_comparison, args=(None,), rounds=1, iterations=1
    )
    print_header("Ablation -- learned vs. model-based with a correct model")
    print(
        render_table(
            ["allocation", "profit/run", "core-stages/run"],
            [
                [name, stats["mean_profit_per_run"], stats["mean_core_stages"]]
                for name, stats in results.items()
            ],
        )
    )
    greedy = results["greedy"]["mean_profit_per_run"]
    learned = results["learned"]["mean_profit_per_run"]
    # Exploration costs a little; it must not cost much.
    tolerance = 0.12 * abs(greedy.mean) + 2 * max(greedy.std, learned.std)
    assert learned.mean >= greedy.mean - tolerance
