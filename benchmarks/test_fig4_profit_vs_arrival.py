"""Figure 4 regeneration: profit vs. mean arrival interval per scaler.

Paper configuration: time-based reward, public-tier hire cost 50 CU/TU,
best-constant resource allocation; x = mean inter-arrival interval (2.0 ->
3.0 TU), y = mean profit per pipeline run, one series per horizontal
scaling function, error bars = 1 sigma over repetitions.

Shape assertions (the reproduction target):

1. Heavy load (2.0): never-scale collapses (queues grow "out of control")
   and always-scale wins; predictive "mimics the always-scale baseline".
2. Light load (3.0): never-scale wins (no public premium to pay);
   predictive "mimics the never-scale baseline".
3. Every curve improves as the system gets quieter.
4. Predictive stays within ~1 sigma of the better baseline at the ends.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import aggregate_runs
from repro.core.config import AllocationAlgorithm, RewardScheme, ScalingAlgorithm
from repro.sim.report import render_series
from repro.sim.session import run_repetitions

from .conftest import FIG4_UNIT_GB, bench_config

INTERVALS = (2.0, 2.25, 2.5, 2.75, 3.0)
SCALERS = (
    ScalingAlgorithm.PREDICTIVE,
    ScalingAlgorithm.ALWAYS,
    ScalingAlgorithm.NEVER,
)


def run_figure4():
    series = {}
    for scaler in SCALERS:
        points = []
        for interval in INTERVALS:
            config = bench_config(
                workload={
                    "mean_interarrival": interval,
                    "size_unit_gb": FIG4_UNIT_GB,
                },
                reward={"scheme": RewardScheme.TIME},
                cloud={"public_core_cost": 50.0},
                scheduler={
                    "allocation": AllocationAlgorithm.BEST_CONSTANT,
                    "scaling": scaler,
                },
            )
            results = run_repetitions(config, base_seed=1000)
            stats = aggregate_runs([r.metrics() for r in results])
            points.append(stats["mean_profit_per_run"])
        series[scaler.value] = points
    return series


def test_figure4_profit_vs_arrival_interval(print_header, benchmark):
    series = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    print_header(
        "Figure 4 -- profit vs. mean arrival interval per scaling function\n"
        "(time reward, public cost 50 CU/TU, best-constant allocation)"
    )
    print(
        render_series(
            "interval (TU)",
            [f"{x:.2f}" for x in INTERVALS],
            series,
            precision=0,
        )
    )

    predictive = [s.mean for s in series["predictive"]]
    always = [s.mean for s in series["always"]]
    never = [s.mean for s in series["never"]]
    sigma = {
        name: [s.std for s in series[name]]
        for name in ("predictive", "always", "never")
    }

    def pair_sigma(name_a: str, name_b: str, idx: int) -> float:
        """The paper's tolerance: 'within a standard deviation of either'."""
        return max(sigma[name_a][idx], sigma[name_b][idx], 1.0)

    # (1) Heavy load: always-scale beats never-scale decisively, and
    # predictive tracks always-scale.
    assert always[0] > never[0]
    assert predictive[0] >= never[0]
    assert predictive[0] >= always[0] - 1.5 * pair_sigma("predictive", "always", 0)

    # (2) Light load: never-scale beats always-scale, predictive tracks it.
    assert never[-1] > always[-1]
    assert predictive[-1] >= always[-1] - 1.5 * pair_sigma("predictive", "always", -1)
    assert predictive[-1] >= never[-1] - 1.5 * pair_sigma("predictive", "never", -1)

    # (3) Quieter systems are more profitable per run for the baselines'
    # better ends: never-scale must recover from its heavy-load collapse.
    assert never[-1] > never[0]

    # (4) There is a crossover: always wins on the left, never on the right.
    diffs = [a - n for a, n in zip(always, never)]
    assert diffs[0] > 0 > diffs[-1]
