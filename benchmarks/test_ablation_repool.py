"""Ablation: worker re-pooling and the 30-second restart penalty.

The paper's best configuration "support[s] multithreaded pipeline stages
without the rigidity of statically assigning workers to phases" by letting
CELAR resize workers, "pay[ing] the 30 second startup penalty whenever a
worker was previously assigned to a pool that uses a different number of
threads".  Two sweeps:

1. re-pooling allowed vs. forbidden, under a tight private tier where the
   flexibility matters;
2. sensitivity of the dynamic configuration to the penalty itself
   (0 / 0.5 / 2.0 TU).
"""

from __future__ import annotations

from repro.analysis.stats import aggregate_runs
from repro.core.config import AllocationAlgorithm, RewardScheme, ScalingAlgorithm
from repro.sim.report import render_table
from repro.sim.session import run_repetitions

from .conftest import FIG4_UNIT_GB, bench_config


def _base(repool: bool, penalty: float):
    # Best-constant allocation yields a mixed-shape plan (different stages
    # want different vCPU counts), which is exactly the heterogeneous-pool
    # situation whose re-pooling the paper's Figure 5 configuration pays
    # the restart penalty for.
    return bench_config(
        workload={"mean_interarrival": 2.0, "size_unit_gb": FIG4_UNIT_GB},
        reward={"scheme": RewardScheme.TIME},
        cloud={"startup_penalty_tu": penalty},
        scheduler={
            "allocation": AllocationAlgorithm.BEST_CONSTANT,
            "scaling": ScalingAlgorithm.PREDICTIVE,
            "repool_allowed": repool,
        },
    )


def run_repool_ablation():
    rows = []
    for repool in (True, False):
        results = run_repetitions(_base(repool, 0.5), base_seed=5200)
        stats = aggregate_runs([r.metrics() for r in results])
        repools = sum(r.repools for r in results) / len(results)
        rows.append((repool, stats, repools))
    return rows


def run_penalty_sweep():
    rows = []
    for penalty in (0.0, 0.5, 2.0):
        results = run_repetitions(_base(True, penalty), base_seed=5300)
        stats = aggregate_runs([r.metrics() for r in results])
        rows.append((penalty, stats))
    return rows


def test_repool_ablation(print_header, benchmark):
    rows = benchmark.pedantic(run_repool_ablation, rounds=1, iterations=1)

    print_header("Ablation -- worker re-pooling on/off (interval 2.0)")
    print(
        render_table(
            ["repool", "profit/run", "latency", "repools/session"],
            [
                [str(repool), stats["mean_profit_per_run"],
                 stats["mean_latency"], round(n, 1)]
                for repool, stats, n in rows
            ],
        )
    )
    on, off = rows[0], rows[1]
    assert off[2] == 0.0  # forbidden means zero repools
    # Under heavy load the flexible configuration actually re-pools.
    assert on[2] > 0.0
    # Both configurations do comparable work.
    assert on[1]["completed_runs"].mean > 0
    assert off[1]["completed_runs"].mean > 0


def test_restart_penalty_sensitivity(print_header, benchmark):
    rows = benchmark.pedantic(run_penalty_sweep, rounds=1, iterations=1)

    print_header("Ablation -- VM start/restart penalty sensitivity")
    print(
        render_table(
            ["penalty (TU)", "profit/run", "latency", "completed"],
            [
                [penalty, stats["mean_profit_per_run"], stats["mean_latency"],
                 stats["completed_runs"]]
                for penalty, stats in rows
            ],
        )
    )
    # Boot time is pure overhead on the latency axis.
    latencies = [stats["mean_latency"].mean for _p, stats in rows]
    assert latencies[0] <= latencies[-1] + 1.0
    # All penalty settings must complete comparable work; the economics
    # shift but the system stays functional.
    completed = [stats["completed_runs"].mean for _p, stats in rows]
    assert min(completed) > 0.8 * max(completed)
