"""Parallel sweep benchmark: wall-clock speedup and cache hit rates.

Runs the same scaled-down Table I grid through the serial executor and the
process pool, checks they agree bit-for-bit, and writes ``BENCH_sweep.json``
(schema ``scan-sim-bench-sweep/1``) with the wall times, the speedup and
the worker hot-path cache hit rates exported through telemetry.

The speedup is *recorded*, not hard-asserted: single-core containers
legitimately see ~1x (pool overhead included), so the assertion here is
equivalence plus a sanity floor, and the CI smoke job uploads the JSON so
multi-core runners document the actual scaling.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.config import RewardScheme, ScalingAlgorithm
from repro.sim.parallel import collect_cache_stats, run_sweep_parallel
from repro.sim.sweep import SweepSpec, run_sweep
from repro.telemetry.metrics import MetricsRegistry

from .conftest import bench_config

#: Where the benchmark JSON lands (overridable for CI artifact staging).
BENCH_OUT = os.environ.get("BENCH_SWEEP_OUT", "BENCH_sweep.json")
#: Worker count for the parallel leg (0 = one per core).
BENCH_JOBS = int(os.environ.get("BENCH_SWEEP_JOBS", "0"))

SPEC = SweepSpec(
    scaling=(ScalingAlgorithm.ALWAYS, ScalingAlgorithm.PREDICTIVE),
    mean_interarrival=(2.2, 2.8),
    reward_scheme=(RewardScheme.TIME,),
)


def rows_as_bytes(rows) -> bytes:
    return json.dumps([r.as_flat_dict() for r in rows], sort_keys=True).encode()


def test_parallel_sweep_speedup_and_equivalence(print_header):
    base = bench_config()
    registry = MetricsRegistry()

    t0 = time.perf_counter()
    serial_rows = run_sweep(base, SPEC, base_seed=42)
    serial_s = time.perf_counter() - t0
    serial_cache = collect_cache_stats()

    t0 = time.perf_counter()
    parallel_rows = run_sweep_parallel(
        base, SPEC, base_seed=42, jobs=BENCH_JOBS, metrics=registry
    )
    parallel_s = time.perf_counter() - t0

    assert rows_as_bytes(parallel_rows) == rows_as_bytes(serial_rows)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    hit_rates = {}
    for cache in ("sparql_plan", "sparql_result", "estimator_eet"):
        gauge = registry.gauge(
            "sweep_cache_hit_rate", "worker hot-path cache hit rate",
            labelnames=("cache",),
        )
        hit_rates[cache] = gauge.value(cache=cache)

    payload = {
        "schema": "scan-sim-bench-sweep/1",
        "grid_cells": SPEC.size(),
        "repetitions": base.simulation.repetitions,
        "jobs": BENCH_JOBS,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "rows_identical": True,
        "cache_hit_rate": hit_rates,
        "serial_driver_cache_stats": serial_cache,
    }
    with open(BENCH_OUT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print_header("Parallel sweep: serial vs process pool")
    print(json.dumps(payload, indent=2, sort_keys=True))

    # Sanity floor only -- pool overhead on a 1-core box can eat the win.
    assert speedup > 0.2
