"""Parallel sweep benchmark: wall-clock speedup, cache hit rates, memory.

Runs the same scaled-down Table I grid through the serial executor and the
process pool, checks they agree bit-for-bit, and writes ``BENCH_sweep.json``
(schema ``scan-sim-bench-sweep/1``) with the wall times, the speedup and
the worker hot-path cache hit rates exported through telemetry.  A second
benchmark pins the streaming result layer's memory claim: folding a large
grid through :class:`~repro.sim.results.SweepAggregator` with
``retain_rows=False`` must peak far below buffering the grid in memory
(the aggregator holds per-run metrics only for *incomplete* cells).

The speedup is *recorded*, not hard-asserted: single-core containers
legitimately see ~1x (pool overhead included), so the assertion here is
equivalence plus a sanity floor, and the CI smoke job uploads the JSON so
multi-core runners document the actual scaling.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

from repro.core.config import RewardScheme, ScalingAlgorithm
from repro.sim.parallel import collect_cache_stats, run_sweep_parallel
from repro.sim.results import ResultRecord, SweepAggregator, make_result_store
from repro.sim.sweep import SweepSpec, row_from_runs, run_sweep
from repro.telemetry.metrics import MetricsRegistry

from .conftest import bench_config

#: Where the benchmark JSON lands (overridable for CI artifact staging).
BENCH_OUT = os.environ.get("BENCH_SWEEP_OUT", "BENCH_sweep.json")
#: Worker count for the parallel leg (0 = one per core).
BENCH_JOBS = int(os.environ.get("BENCH_SWEEP_JOBS", "0"))

SPEC = SweepSpec(
    scaling=(ScalingAlgorithm.ALWAYS, ScalingAlgorithm.PREDICTIVE),
    mean_interarrival=(2.2, 2.8),
    reward_scheme=(RewardScheme.TIME,),
)


def rows_as_bytes(rows) -> bytes:
    return json.dumps([r.as_flat_dict() for r in rows], sort_keys=True).encode()


def merge_bench(updates: dict) -> dict:
    """Read-update-write ``BENCH_OUT`` so both benchmarks share one file.

    The speedup benchmark runs first (file order) and writes the payload
    wholesale; this merges later keys into it, or starts a fresh payload
    when the memory benchmark runs standalone.
    """
    payload = {"schema": "scan-sim-bench-sweep/1"}
    if os.path.exists(BENCH_OUT):
        with open(BENCH_OUT) as fh:
            payload = json.load(fh)
    payload.update(updates)
    with open(BENCH_OUT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def test_parallel_sweep_speedup_and_equivalence(print_header):
    base = bench_config()
    registry = MetricsRegistry()

    t0 = time.perf_counter()
    serial_rows = run_sweep(base, SPEC, base_seed=42)
    serial_s = time.perf_counter() - t0
    serial_cache = collect_cache_stats()

    t0 = time.perf_counter()
    parallel_rows = run_sweep_parallel(
        base, SPEC, base_seed=42, jobs=BENCH_JOBS, metrics=registry
    )
    parallel_s = time.perf_counter() - t0

    assert rows_as_bytes(parallel_rows) == rows_as_bytes(serial_rows)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    hit_rates = {}
    for cache in ("sparql_plan", "sparql_result", "estimator_eet"):
        gauge = registry.gauge(
            "sweep_cache_hit_rate", "worker hot-path cache hit rate",
            labelnames=("cache",),
        )
        hit_rates[cache] = gauge.value(cache=cache)

    payload = merge_bench({
        "grid_cells": SPEC.size(),
        "repetitions": base.simulation.repetitions,
        "jobs": BENCH_JOBS,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "rows_identical": True,
        "cache_hit_rate": hit_rates,
        "serial_driver_cache_stats": serial_cache,
    })

    print_header("Parallel sweep: serial vs process pool")
    print(json.dumps(payload, indent=2, sort_keys=True))

    # Sanity floor only -- pool overhead on a 1-core box can eat the win.
    assert speedup > 0.2


def test_streaming_sink_equivalence_and_overhead(tmp_path, print_header):
    """Streaming the bench grid through a JSONL ledger changes nothing
    but durability: rows byte-identical, overhead recorded."""
    base = bench_config()

    t0 = time.perf_counter()
    reference = run_sweep(base, SPEC, base_seed=42)
    plain_s = time.perf_counter() - t0

    store = make_result_store(str(tmp_path / "bench_results.jsonl"))
    t0 = time.perf_counter()
    try:
        streamed = run_sweep(base, SPEC, base_seed=42, results=store)
    finally:
        store.close()
    streamed_s = time.perf_counter() - t0

    assert rows_as_bytes(streamed) == rows_as_bytes(reference)
    overhead = streamed_s / plain_s if plain_s > 0 else float("inf")
    payload = merge_bench({
        "streaming_rows_identical": True,
        "streaming_wall_s": round(streamed_s, 3),
        "streaming_overhead_x": round(overhead, 3),
    })
    print_header("Streaming sink: in-memory vs JSONL ledger")
    print(json.dumps(
        {k: payload[k] for k in (
            "streaming_rows_identical", "streaming_wall_s",
            "streaming_overhead_x",
        )},
        indent=2, sort_keys=True,
    ))


#: Synthetic grid for the memory ceiling: large enough that buffering it
#: dominates the interpreter's baseline noise.
_MEM_CELLS = 3000
_MEM_REPS = 3
_MEM_METRICS = [f"metric_{i}" for i in range(8)]


def _mem_cells() -> list[dict]:
    return [{"cell": i} for i in range(_MEM_CELLS)]


def _mem_run(cell_index: int, rep: int) -> dict[str, float]:
    return {
        name: float(cell_index * _MEM_REPS + rep + j)
        for j, name in enumerate(_MEM_METRICS)
    }


def test_streaming_aggregator_memory_ceiling(print_header):
    """The resumable path's memory claim, measured: folding a 3000-cell
    grid with ``retain_rows=False`` peaks at a small fraction of
    buffering every run and row in memory, because the aggregator only
    holds per-run metrics for cells that are still incomplete."""
    cells = _mem_cells()

    # Baseline: what the pre-streaming executor did -- keep every run,
    # then materialize every row, all resident at once.
    tracemalloc.start()
    tracemalloc.reset_peak()
    buffered_runs = {
        ci: [_mem_run(ci, k) for k in range(_MEM_REPS)]
        for ci in range(_MEM_CELLS)
    }
    buffered_rows = [
        row_from_runs(cells[ci], runs) for ci, runs in buffered_runs.items()
    ]
    _, buffered_peak = tracemalloc.get_traced_memory()
    assert len(buffered_rows) == _MEM_CELLS
    del buffered_rows, buffered_runs

    # Streaming: records arrive in grid order, finalized rows leave
    # through on_cell immediately, nothing is retained.
    drained = 0

    def drain(cell_index, row) -> None:
        nonlocal drained
        drained += 1

    tracemalloc.reset_peak()
    agg = SweepAggregator(
        cells, _MEM_REPS, on_cell=drain, retain_rows=False
    )
    for ci in range(_MEM_CELLS):
        for k in range(_MEM_REPS):
            agg.add(ResultRecord(
                cell_index=ci, rep_index=k, seed=k,
                status="completed", metrics=_mem_run(ci, k),
            ))
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert drained == _MEM_CELLS
    assert agg.done_cells == _MEM_CELLS
    ratio = streaming_peak / buffered_peak if buffered_peak else float("inf")
    payload = merge_bench({
        "memory_grid_cells": _MEM_CELLS,
        "memory_repetitions": _MEM_REPS,
        "buffered_peak_kb": round(buffered_peak / 1024, 1),
        "streaming_peak_kb": round(streaming_peak / 1024, 1),
        "streaming_memory_ratio": round(ratio, 4),
    })
    print_header("Streaming aggregator: peak memory vs buffering the grid")
    print(json.dumps(
        {k: payload[k] for k in (
            "memory_grid_cells", "buffered_peak_kb", "streaming_peak_kb",
            "streaming_memory_ratio",
        )},
        indent=2, sort_keys=True,
    ))
    # The bound that makes grids bigger than RAM feasible: streaming must
    # stay an order of magnitude under the buffered grid.
    assert streaming_peak < buffered_peak * 0.1, (
        streaming_peak, buffered_peak,
    )
