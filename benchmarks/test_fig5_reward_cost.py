"""Figure 5 regeneration: reward-to-cost ratio vs. total core-stages.

The paper's Figure 5 plots, for the horizontally-scaled heterogeneous
configuration, the reward-to-cost ratio achieved against the number of
cores employed per pipeline run (6-24 core-stages), peaking at 3.11 for
the dynamic configuration.

We regenerate the curve by sweeping constant execution plans of increasing
total core-stages (each point = one plan run with dynamic scaling and
heterogeneous, re-poolable workers paying the 30 s restart penalty), plus
the fully dynamic (greedy) configuration the paper crowns.

Shape assertions: the ratio rises from the serial plan to a peak at
moderate core-stages, then falls as extra cores stop paying for
themselves; the peak lies in the paper's ballpark (>= 2, ideally ~3).
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import aggregate_runs
from repro.apps.base import ExecutionPlan
from repro.core.config import AllocationAlgorithm, RewardScheme, ScalingAlgorithm
from repro.sim.report import render_table
from repro.sim.session import SimulationSession

from .conftest import BENCH_REPS, bench_config

#: Constant plans spanning Figure 5's 6-24 core-stages range.
PLANS = (
    ExecutionPlan((1, 1, 1, 1, 1, 1, 1)),      # 7
    ExecutionPlan((2, 1, 1, 1, 2, 1, 1)),      # 9
    ExecutionPlan((2, 1, 2, 2, 2, 1, 1)),      # 11
    ExecutionPlan((2, 1, 2, 2, 4, 1, 1)),      # 13
    ExecutionPlan((4, 1, 2, 2, 4, 1, 1)),      # 15
    ExecutionPlan((4, 1, 4, 4, 4, 1, 1)),      # 19
    ExecutionPlan((4, 1, 4, 4, 8, 1, 1)),      # 23
    ExecutionPlan((8, 1, 4, 4, 8, 1, 1)),      # 27
)


def _config(**scheduler):
    return bench_config(
        reward={"scheme": RewardScheme.THROUGHPUT},
        workload={"mean_interarrival": 2.5, "size_unit_gb": 1.0},
        scheduler={
            "scaling": ScalingAlgorithm.PREDICTIVE,
            "repool_allowed": True,
            **scheduler,
        },
    )


def run_figure5():
    points = []
    for plan in PLANS:
        config = _config(allocation=AllocationAlgorithm.BEST_CONSTANT)
        session = SimulationSession(config)
        session._constant_plan = plan
        runs = [session.run(seed=2000 + k) for k in range(BENCH_REPS)]
        stats = aggregate_runs([r.metrics() for r in runs])
        points.append(
            (
                plan.total_cores,
                stats["reward_to_cost"],
                stats["mean_latency"],
            )
        )
    # The fully dynamic configuration (greedy per-stage threading +
    # heterogeneous re-poolable workers), the paper's best performer.
    dynamic_cfg = _config(allocation=AllocationAlgorithm.GREEDY)
    session = SimulationSession(dynamic_cfg)
    runs = [session.run(seed=2000 + k) for k in range(BENCH_REPS)]
    dynamic = aggregate_runs([r.metrics() for r in runs])
    return points, dynamic


def test_figure5_reward_to_cost_vs_core_stages(print_header, benchmark):
    points, dynamic = benchmark.pedantic(run_figure5, rounds=1, iterations=1)

    print_header(
        "Figure 5 -- reward-to-cost ratio vs. total core-stages per run\n"
        "(throughput reward, dynamic scaling, heterogeneous workers)"
    )
    rows = [
        [cs, ratio, latency] for cs, ratio, latency in points
    ]
    rows.append(
        [
            f"dynamic ({dynamic['mean_core_stages'].mean:.1f})",
            dynamic["reward_to_cost"],
            dynamic["mean_latency"],
        ]
    )
    print(
        render_table(
            ["core-stages", "reward/cost", "latency (TU)"], rows, precision=2
        )
    )

    ratios = [ratio.mean for _cs, ratio, _lat in points]
    core_stages = [cs for cs, _r, _l in points]

    # Rise-then-fall: the peak is strictly interior (neither the serial
    # plan nor the most parallel one).
    peak_idx = ratios.index(max(ratios))
    assert 0 < peak_idx < len(ratios) - 1, (core_stages, ratios)

    # The peak lands at moderate core-stages, inside Figure 5's 6-24 range.
    assert 6 <= core_stages[peak_idx] <= 24

    # Ballpark of the paper's 3.11 peak (shape target: "roughly what
    # factor"): comfortably above 1.5.
    assert max(ratios) > 1.5

    # Latency falls monotonically-ish as core-stages grow (that is what
    # the extra cores buy).
    latencies = [lat.mean for _cs, _r, lat in points]
    assert latencies[-1] < latencies[0]
