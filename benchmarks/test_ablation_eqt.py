"""Ablation: the EQT estimator's EWMA smoothing factor.

EQT_i feeds both ETT (Eq. 2) and hence every allocation/scaling decision.
alpha -> 1 means "trust only the last observed wait" (jumpy); alpha -> 0
means "never update" (stale).  The ablation sweeps alpha at moderate load
and reports decision quality through the usual profit metric, plus a
direct measurement of EQT tracking error against realised waits.
"""

from __future__ import annotations

from repro.analysis.stats import aggregate_runs
from repro.core.config import AllocationAlgorithm, ScalingAlgorithm
from repro.core.events import EventKind
from repro.sim.report import render_table
from repro.sim.session import SimulationSession, run_repetitions

from .conftest import FIG4_UNIT_GB, bench_config

ALPHAS = (0.05, 0.3, 1.0)


def _config(alpha):
    return bench_config(
        workload={"mean_interarrival": 2.2, "size_unit_gb": FIG4_UNIT_GB},
        scheduler={
            "allocation": AllocationAlgorithm.LONG_TERM_ADAPTIVE,
            "scaling": ScalingAlgorithm.PREDICTIVE,
            "eqt_alpha": alpha,
        },
    )


def run_ablation():
    rows = []
    for alpha in ALPHAS:
        results = run_repetitions(_config(alpha), base_seed=5100)
        stats = aggregate_runs([r.metrics() for r in results])
        rows.append((alpha, stats))
    return rows


def measure_tracking_error(alpha: float) -> float:
    """Mean |EQT prediction - realised wait| over one session's tasks."""
    session = SimulationSession(_config(alpha), capture_events=True)
    session.run(seed=5150)
    estimator_alpha = alpha
    # Replay the observed waits through a fresh EWMA and score one-step
    # prediction error per stage.
    waits_by_stage: dict[int, list[float]] = {}
    for event in session.event_log.of_kind(EventKind.TASK_STARTED):
        waits_by_stage.setdefault(event["stage"], []).append(event["wait"])
    total_error = 0.0
    count = 0
    for waits in waits_by_stage.values():
        estimate = 0.0
        seen = 0
        for wait in waits:
            total_error += abs(estimate - wait)
            count += 1
            estimate = (
                wait
                if seen == 0
                else estimator_alpha * wait + (1 - estimator_alpha) * estimate
            )
            seen += 1
    return total_error / max(count, 1)


def test_eqt_alpha_ablation(print_header, benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    errors = {alpha: measure_tracking_error(alpha) for alpha in ALPHAS}
    print_header("Ablation -- EQT EWMA smoothing factor (interval 2.2)")
    print(
        render_table(
            ["alpha", "profit/run", "latency", "EQT tracking error (TU)"],
            [
                [alpha, stats["mean_profit_per_run"], stats["mean_latency"],
                 round(errors[alpha], 3)]
                for alpha, stats in rows
            ],
        )
    )

    # All settings must complete comparable work: EQT is a tuning knob,
    # not a correctness switch.
    completed = [stats["completed_runs"].mean for _a, stats in rows]
    assert max(completed) - min(completed) <= 0.15 * max(completed)
    assert all(err >= 0.0 for err in errors.values())
