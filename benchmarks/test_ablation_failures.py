"""Ablation: scheduler resilience to VM failures.

Sweeps the VM mean-time-between-failures from "reliable" (no failures,
the paper's setting) down to hostile churn and reports throughput, retry
overhead and profit.  The platform must degrade gracefully: completion
stays high because failed stage tasks are retried, while latency and cost
absorb the damage.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import aggregate_runs
from repro.core.config import AllocationAlgorithm, ScalingAlgorithm
from repro.sim.report import render_table
from repro.sim.session import run_repetitions

from .conftest import bench_config

MTBFS = (None, 200.0, 50.0, 15.0)


def run_ablation():
    rows = []
    for mtbf in MTBFS:
        config = bench_config(
            workload={"mean_interarrival": 2.5},
            cloud={"vm_mtbf_tu": mtbf},
            scheduler={
                "allocation": AllocationAlgorithm.GREEDY,
                "scaling": ScalingAlgorithm.PREDICTIVE,
            },
        )
        results = run_repetitions(config, base_seed=5400)
        stats = aggregate_runs([r.metrics() for r in results])
        failures = sum(r.worker_failures for r in results) / len(results)
        retries = sum(r.task_retries for r in results) / len(results)
        completion = sum(r.completion_fraction for r in results) / len(results)
        rows.append((mtbf, stats, failures, retries, completion))
    return rows


def test_failure_resilience(print_header, benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print_header("Ablation -- VM failure injection (MTBF sweep)")
    print(
        render_table(
            ["MTBF (TU)", "profit/run", "latency", "failures", "retries",
             "completion"],
            [
                ["inf" if mtbf is None else mtbf,
                 stats["mean_profit_per_run"], stats["mean_latency"],
                 round(failures, 1), round(retries, 1),
                 f"{completion:.2f}"]
                for mtbf, stats, failures, retries, completion in rows
            ],
        )
    )

    reliable = rows[0]
    hostile = rows[-1]

    # No-failure baseline really has none.
    assert reliable[2] == 0.0 and reliable[3] == 0.0

    # Failures and retries grow as MTBF shrinks.
    failures = [r[2] for r in rows]
    assert failures == sorted(failures)

    # Graceful degradation: even at MTBF 15 TU the platform completes the
    # bulk of what it was asked to do within the session ...
    assert hostile[4] > 0.6
    # ... while latency honestly reflects the retry overhead.
    assert hostile[1]["mean_latency"].mean > reliable[1]["mean_latency"].mean
