"""Section IV-B claims over the (coarsened) full permutation grid.

"We explored all permutations of resource allocation algorithm, horizontal
scaling algorithm, reward scheme and workload, and found that our proposed
algorithms are often able to improve performance above their respective
baselines ... the SCAN outperforms the best-constant baseline algorithm in
many circumstances, and ... the SCAN's predictive horizontal scaling
represents a useful compromise between the two baseline schemes."

This benchmark runs a coarsened version of the full grid (all allocators x
all scalers x {heavy, medium, light} load x both reward schemes) and
verifies the two headline claims.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import (
    AllocationAlgorithm,
    RewardScheme,
    ScalingAlgorithm,
)
from repro.sim.report import render_table
from repro.sim.results import MemoryResultStore, make_result_store
from repro.sim.sweep import SweepSpec, run_sweep

from .conftest import FIG4_UNIT_GB, bench_config

SPEC = SweepSpec(
    allocation=tuple(AllocationAlgorithm),
    scaling=tuple(ScalingAlgorithm),
    mean_interarrival=(2.0, 2.5, 3.0),
    reward_scheme=(RewardScheme.TIME, RewardScheme.THROUGHPUT),
    public_core_cost=(50.0,),
)


def run_grid():
    base = bench_config(
        simulation={"duration": 400.0, "repetitions": 2},
        workload={"size_unit_gb": FIG4_UNIT_GB},
    )
    # The grid always flows through the streaming result layer (rows are
    # byte-identical either way -- the golden suite pins that); set
    # FULLGRID_RESULTS_OUT to a ledger path to keep a durable, resumable
    # record of this long run instead of the in-memory sink.
    spec = os.environ.get("FULLGRID_RESULTS_OUT")
    store = make_result_store(spec) if spec else MemoryResultStore()
    try:
        # resume is a no-op on a fresh ledger; on an interrupted one it
        # picks up the remaining cells instead of refusing to start.
        return run_sweep(
            base, SPEC, base_seed=4000, results=store, resume=bool(spec)
        )
    finally:
        store.close()


@pytest.fixture(scope="module")
def grid():
    return run_grid()


def test_full_grid_completes_everywhere(print_header, benchmark, grid):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # timing anchor
    print_header(
        "Section IV-B -- coarsened full permutation grid "
        f"({SPEC.size()} cells x 2 repetitions)"
    )
    table = [
        [
            row.param("allocation"),
            row.param("scaling"),
            row.param("mean_interarrival"),
            row.param("reward_scheme"),
            row["mean_profit_per_run"],
        ]
        for row in grid
    ]
    print(
        render_table(
            ["allocation", "scaling", "interval", "reward", "profit/run"],
            table,
            precision=0,
        )
    )
    assert len(grid) == SPEC.size()
    for row in grid:
        assert row["completed_runs"].mean > 0, row.params


def _profit(grid, **match):
    for row in grid:
        if all(row.param(k) == v for k, v in match.items()):
            return row["mean_profit_per_run"].mean
    raise KeyError(match)


def test_smart_allocation_beats_best_constant_in_many_cells(grid, benchmark):
    """Count (scaling, interval, reward) cells where some SCAN allocator
    beats the best-constant baseline; the paper claims 'many'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # timing anchor
    smart = (
        AllocationAlgorithm.GREEDY,
        AllocationAlgorithm.LONG_TERM,
        AllocationAlgorithm.LONG_TERM_ADAPTIVE,
    )
    wins = total = 0
    for scaling in ScalingAlgorithm:
        for interval in (2.0, 2.5, 3.0):
            for scheme in (RewardScheme.TIME, RewardScheme.THROUGHPUT):
                baseline = _profit(
                    grid,
                    allocation=AllocationAlgorithm.BEST_CONSTANT,
                    scaling=scaling,
                    mean_interarrival=interval,
                    reward_scheme=scheme,
                )
                best_smart = max(
                    _profit(
                        grid,
                        allocation=a,
                        scaling=scaling,
                        mean_interarrival=interval,
                        reward_scheme=scheme,
                    )
                    for a in smart
                )
                total += 1
                if best_smart > baseline:
                    wins += 1
    # "in many circumstances": at least a third of the grid.
    assert wins >= total / 3, f"smart allocation won only {wins}/{total} cells"


def test_predictive_is_a_useful_compromise(grid, benchmark):
    """Predictive never loses badly to BOTH baselines simultaneously."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # timing anchor
    for allocation in AllocationAlgorithm:
        for interval in (2.0, 2.5, 3.0):
            for scheme in (RewardScheme.TIME, RewardScheme.THROUGHPUT):
                predictive = _profit(
                    grid,
                    allocation=allocation,
                    scaling=ScalingAlgorithm.PREDICTIVE,
                    mean_interarrival=interval,
                    reward_scheme=scheme,
                )
                always = _profit(
                    grid,
                    allocation=allocation,
                    scaling=ScalingAlgorithm.ALWAYS,
                    mean_interarrival=interval,
                    reward_scheme=scheme,
                )
                never = _profit(
                    grid,
                    allocation=allocation,
                    scaling=ScalingAlgorithm.NEVER,
                    mean_interarrival=interval,
                    reward_scheme=scheme,
                )
                worst = min(always, never)
                span = max(abs(always), abs(never), 1.0)
                assert predictive >= worst - 0.35 * span, (
                    allocation, interval, scheme, predictive, always, never,
                )
